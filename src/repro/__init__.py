"""repro — reproduction of Zhuang & Lee, *A Hardware-based Cache Pollution
Filtering Mechanism for Aggressive Prefetches* (ICPP 2003).

A trace-driven out-of-order processor + cache hierarchy simulator with the
paper's three prefetch sources (NSP, SDP, compiler software prefetches) and
its PA/PC history-table pollution filters, plus the baselines it compares
against (static profiling filter, dedicated prefetch buffer, oracle).

Quickstart::

    from repro import SimulationConfig, FilterKind, run_workload

    cfg = SimulationConfig.paper_default(FilterKind.PC)
    result = run_workload("em3d", cfg, n_insts=100_000)
    print(result.ipc, result.prefetch.good, result.prefetch.bad)
"""

from repro.analysis.sweep import (
    compare_filters,
    run_oracle,
    run_static,
    run_workload,
    sweep_history_sizes,
    sweep_l1_ports,
)
from repro.common.config import (
    CacheConfig,
    FilterConfig,
    FilterKind,
    HierarchyConfig,
    PrefetchBufferConfig,
    PrefetchConfig,
    ProcessorConfig,
    SimulationConfig,
)
from repro.core.simulator import SimulationResult, Simulator, run_simulation
from repro.mem.cache import FillSource
from repro.trace.stream import Trace, TraceBuilder
from repro.workloads import build_trace, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "FillSource",
    "FilterConfig",
    "FilterKind",
    "HierarchyConfig",
    "PrefetchBufferConfig",
    "PrefetchConfig",
    "ProcessorConfig",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "Trace",
    "TraceBuilder",
    "build_trace",
    "compare_filters",
    "get_workload",
    "run_oracle",
    "run_simulation",
    "run_static",
    "run_workload",
    "sweep_history_sizes",
    "sweep_l1_ports",
    "workload_names",
]
