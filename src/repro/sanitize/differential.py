"""Cross-engine differential oracle + golden-run corpus.

Two independent implementations of the same machine — the event-driven
``OoOPipeline`` and the batch ``VectorEngine`` — are this repo's
strongest correctness oracle: a model bug has to be made *twice, in two
different styles* to survive a comparison between them.  This module
promotes the one-off parity test (``tests/test_vector_engine.py``) into
a reusable library behind ``repro-sim verify``:

* :func:`run_parity` runs one (workload, filter) pair through both
  engines under :func:`~repro.core.vector.relaxed_config` twins and
  checks the documented parity contract — exact equality for
  trace-determined counters (instructions, L1 demand accesses), a
  rel-or-abs tolerance for classification counters whose residuals come
  from 1-cycle enqueue delay and LRU timestamp ties;
* :func:`run_kernel_parity` holds the compiled tier to a stricter
  contract: :class:`~repro.core.kernel.KernelEngine` re-implements the
  vector engine's functional model as flat-array kernels, so its full
  golden counter vector must match the vector engine **bit-for-bit** on
  the paper-default machine — no tolerance band at all;
* :func:`verify_golden` replays a corpus of locked counter vectors
  (``tests/golden/*.json``) and demands bit-identical results, gated on
  :data:`~repro.analysis.result_cache.MODEL_VERSION` so an intentional
  model change gives an actionable "regenerate" message instead of a
  wall of diffs;
* :func:`write_corpus` is the explicit regeneration path, also exposed
  as ``tests/golden/regen.py``.

The tolerances here are deliberately the same constants the tier-1 test
uses — one contract, two enforcement points (CI test and CLI command).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.result_cache import MODEL_VERSION
from repro.analysis.sweep import run_workload
from repro.common.config import FilterKind, SimulationConfig
from repro.core.vector import relaxed_config

#: Parity tolerance for classification counters under the contention-free
#: machine (mirrors ``tests/test_vector_engine.py`` — a delta passes when
#: it is small relatively OR absolutely).
REL_TOL = 0.12
ABS_TOL = 80

#: Prefetch classification counters compared under the tolerance.
COUNTER_KEYS = ("generated", "squashed", "filtered", "dropped", "issued", "good", "bad")

#: Memory-system scalars compared under the tolerance.
SCALAR_KEYS = (
    "l1_demand_misses",
    "l2_demand_accesses",
    "l2_demand_misses",
    "prefetch_line_traffic",
    "demand_line_traffic",
)

#: Trace-determined scalars that must match bit-for-bit.
EXACT_KEYS = ("instructions", "l1_demand_accesses")

DEFAULT_WORKLOADS = ("em3d", "mcf")
DEFAULT_FILTERS = ("none", "pa", "pc")
DEFAULT_INSTS = 12_000
DEFAULT_SEED = 0


# ----------------------------------------------------------------------
# Parity (pipeline vs vector under the relaxed machine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParityDelta:
    """One compared counter: both engines' values and the verdict."""

    key: str
    pipeline: int
    vector: int
    exact: bool

    @property
    def delta(self) -> int:
        return abs(self.pipeline - self.vector)

    @property
    def rel(self) -> float:
        return self.delta / max(1, self.pipeline)

    @property
    def ok(self) -> bool:
        if self.exact:
            return self.pipeline == self.vector
        return self.rel <= REL_TOL or self.delta <= ABS_TOL


@dataclass(frozen=True)
class ParityReport:
    """The outcome of one pipeline-vs-vector differential run."""

    workload: str
    filter_name: str
    n_insts: int
    seed: int
    deltas: Tuple[ParityDelta, ...]

    @property
    def ok(self) -> bool:
        return all(d.ok for d in self.deltas)

    @property
    def failures(self) -> Tuple[ParityDelta, ...]:
        return tuple(d for d in self.deltas if not d.ok)

    @property
    def worst(self) -> Optional[ParityDelta]:
        inexact = [d for d in self.deltas if not d.exact]
        if not inexact:
            return None
        return max(inexact, key=lambda d: d.rel)


def run_parity(
    workload: str,
    kind: FilterKind = FilterKind.PA,
    n_insts: int = DEFAULT_INSTS,
    seed: int = DEFAULT_SEED,
    sanitize: bool = False,
    config: Optional[SimulationConfig] = None,
) -> ParityReport:
    """Run both engines under relaxed twins and diff the parity contract."""
    cfg = config if config is not None else SimulationConfig.paper_default(kind)
    if sanitize and not cfg.sanitize:
        cfg = replace(cfg, sanitize=True)
    cfg = relaxed_config(cfg)
    p = run_workload(workload, cfg, n_insts, seed, "pipeline")
    v = run_workload(workload, cfg, n_insts, seed, "vector")
    deltas: List[ParityDelta] = []
    for key in EXACT_KEYS:
        deltas.append(ParityDelta(key, int(getattr(p, key)), int(getattr(v, key)), exact=True))
    for key in COUNTER_KEYS:
        deltas.append(
            ParityDelta(key, int(getattr(p.prefetch, key)), int(getattr(v.prefetch, key)), exact=False)
        )
    for key in SCALAR_KEYS:
        deltas.append(ParityDelta(key, int(getattr(p, key)), int(getattr(v, key)), exact=False))
    return ParityReport(workload, kind.value, n_insts, seed, tuple(deltas))


# ----------------------------------------------------------------------
# Exact parity (vector vs kernel — same functional model, zero tolerance)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExactParityReport:
    """Outcome of one vector-vs-kernel bit-identity run.

    The kernel engine is a lowering of the vector engine, not an
    independent model, so the comparison is exact over the full golden
    counter vector (scalars, cycles and every prefetch tally) on the
    *paper-default* machine — relaxation would only mask a porting bug.
    """

    workload: str
    filter_name: str
    n_insts: int
    seed: int
    kernel_mode: str
    mismatches: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_kernel_parity(
    workload: str,
    kind: FilterKind = FilterKind.PA,
    n_insts: int = DEFAULT_INSTS,
    seed: int = DEFAULT_SEED,
    sanitize: bool = False,
    config: Optional[SimulationConfig] = None,
) -> ExactParityReport:
    """Run vector and kernel on the same config and demand bit identity."""
    from repro.core.kernel import select_mode

    cfg = config if config is not None else SimulationConfig.paper_default(kind)
    if sanitize and not cfg.sanitize:
        cfg = replace(cfg, sanitize=True)
    v = run_workload(workload, cfg, n_insts, seed, "vector")
    k = run_workload(workload, cfg, n_insts, seed, "kernel")
    expected, got = golden_counters(v), golden_counters(k)
    mismatches = tuple(
        f"{key}: vector {expected[key]} != kernel {got[key]}"
        for key in expected
        if expected[key] != got[key]
    )
    return ExactParityReport(
        workload, kind.value, n_insts, seed, select_mode(), mismatches
    )


# ----------------------------------------------------------------------
# Golden-run corpus
# ----------------------------------------------------------------------
#: Counters locked by a golden record (all integers, compared exactly).
GOLDEN_KEYS = (
    "instructions",
    "cycles",
    "l1_demand_accesses",
    "l1_demand_misses",
    "l2_demand_accesses",
    "l2_demand_misses",
    "l1_prefetch_fills",
    "prefetch_line_traffic",
    "demand_line_traffic",
)


def golden_counters(result) -> Dict[str, int]:
    """The locked counter vector for one run: scalars + the full tally."""
    counters = {key: int(getattr(result, key)) for key in GOLDEN_KEYS}
    for key in COUNTER_KEYS:
        counters[f"prefetch.{key}"] = int(getattr(result.prefetch, key))
    return counters


def default_corpus() -> Tuple[Tuple[str, str, str], ...]:
    """(workload, filter, engine) specs regenerated by ``regen.py``."""
    return tuple(
        (workload, filter_name, engine)
        for workload in DEFAULT_WORKLOADS
        for filter_name in DEFAULT_FILTERS
        for engine in ("pipeline", "vector", "kernel")
    )


def _golden_record(
    workload: str, filter_name: str, engine: str, n_insts: int, seed: int
) -> Dict[str, object]:
    kind = FilterKind.from_name(filter_name)
    cfg = SimulationConfig.paper_default(kind)
    result = run_workload(workload, cfg, n_insts, seed, engine)
    return {
        "model_version": MODEL_VERSION,
        "workload": workload,
        "filter": filter_name,
        "engine": engine,
        "n_insts": n_insts,
        "seed": seed,
        "counters": golden_counters(result),
    }


def write_corpus(
    directory, specs: Optional[Iterable[Tuple[str, str, str]]] = None,
    n_insts: int = DEFAULT_INSTS, seed: int = DEFAULT_SEED,
) -> List[Path]:
    """(Re)generate the golden corpus; one JSON file per spec."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for workload, filter_name, engine in specs or default_corpus():
        record = _golden_record(workload, filter_name, engine, n_insts, seed)
        path = directory / f"{workload}-{filter_name}-{engine}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


@dataclass(frozen=True)
class GoldenOutcome:
    """The verdict for one golden record replay."""

    path: Path
    ok: bool
    stale: bool
    mismatches: Tuple[str, ...]
    message: str


def default_golden_dir() -> Optional[Path]:
    """``tests/golden`` relative to the repo root, when it exists."""
    candidate = Path(__file__).resolve().parents[3] / "tests" / "golden"
    return candidate if candidate.is_dir() else None


def verify_golden(directory) -> List[GoldenOutcome]:
    """Replay every golden record in ``directory`` and diff exactly.

    A record whose ``model_version`` does not match the current
    :data:`MODEL_VERSION` is reported as *stale* (not a failure of the
    model — the corpus needs ``python tests/golden/regen.py``).
    """
    outcomes: List[GoldenOutcome] = []
    for path in sorted(Path(directory).glob("*.json")):
        try:
            record = json.loads(path.read_text())
            version = record["model_version"]
            counters = record["counters"]
            workload = record["workload"]
            filter_name = record["filter"]
            engine = record["engine"]
            n_insts = int(record["n_insts"])
            seed = int(record["seed"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            outcomes.append(
                GoldenOutcome(path, False, False, (), f"unreadable golden record: {exc}")
            )
            continue
        if version != MODEL_VERSION:
            outcomes.append(
                GoldenOutcome(
                    path, False, True, (),
                    f"locked under MODEL_VERSION={version!r}, current is "
                    f"{MODEL_VERSION!r}: regenerate with `python tests/golden/regen.py`",
                )
            )
            continue
        fresh = _golden_record(workload, filter_name, engine, n_insts, seed)["counters"]
        mismatches = tuple(
            f"{key}: locked {counters.get(key)} != fresh {fresh.get(key)}"
            for key in sorted(set(counters) | set(fresh))
            if counters.get(key) != fresh.get(key)
        )
        if mismatches:
            outcomes.append(
                GoldenOutcome(
                    path, False, False, mismatches,
                    f"{len(mismatches)} counter(s) diverged from locked values "
                    "(if the model change is intentional, bump MODEL_VERSION and "
                    "run `python tests/golden/regen.py`)",
                )
            )
        else:
            outcomes.append(GoldenOutcome(path, True, False, (), "bit-identical"))
    return outcomes
