"""Runtime invariant sanitizer: machine-checked model state.

The simulator's whole output rests on a handful of structural invariants
(paper Section 4's PIB/RIB lineage, bounded structures, 2-bit counters):
a silent violation produces plausible-looking but wrong numbers that no
retry or resume machinery can catch.  This package is the opt-in layer
that turns those invariants into *checked assertions*:

* every hardware model grows a ``validate()`` method that audits its own
  state (tag/frame consistency, PIB => prefetched lineage, RIB => PIB,
  occupancy <= capacity, saturating counters in range, age-ordered
  windows);
* the engines call :class:`Sanitizer` periodically (every
  ``interval`` instructions) and the simulator calls :meth:`Sanitizer
  .final` once at end of run, which adds the expensive checks (full L2
  audit, stat-flush conservation, cross-counter conservation);
* a failed check raises :class:`SanitizerViolation` carrying the cycle,
  the site, and a state snapshot — enough to reproduce the corruption.

Enabling it (any of):

* ``REPRO_SANITIZE=1`` in the environment (inherited by pool workers),
* ``SimulationConfig(sanitize=True)`` / ``config.with_sanitize()``,
* ``repro-sim <cmd> --sanitize`` on the CLI.

Checks are read-only: a sanitized run produces bit-identical counters
to an unsanitized run of the same config, at a small (<25% at default
interval) time cost.  The checker itself is chaos-tested: the
``invariant-trip`` fault kind (:mod:`repro.common.faults`) deliberately
corrupts model state at a check point and demands the very next sweep
detect it.

The cross-engine differential oracle lives in
:mod:`repro.sanitize.differential`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.common.faults import fault_point

SANITIZE_ENV = "REPRO_SANITIZE"
INTERVAL_ENV = "REPRO_SANITIZE_INTERVAL"

#: Instructions between periodic invariant sweeps (override with
#: ``REPRO_SANITIZE_INTERVAL``).  Chosen so a sweep of the small
#: structures (L1, MSHR, queue, ROB/LSQ, table) amortises to well under
#: 25% of the uninstrumented run time.
DEFAULT_INTERVAL = 4096

#: The sanitizer coverage manifest: every class in the tree that defines
#: a ``validate()`` invariant audit, mapped to the module whose check
#: walk actually invokes it.  A class that grows ``validate()`` without
#: an entry here is a dead invariant — the sanitizer never reaches it —
#: and lint rule RL006 fails the tree until it is wired in (or the
#: entry goes stale because the class lost its audit).
CHECK_WALK = {
    "repro.common.config.SimulationConfig": "repro.cli",
    "repro.common.saturating.SaturatingCounterArray": "repro.filters.history_table",
    "repro.core.kernel.KernelState": "repro.core.kernel",
    "repro.core.rob.RetirementWindow": "repro.sanitize",
    "repro.filters.history_table.HistoryTable": "repro.sanitize",
    "repro.mem.cache.Cache": "repro.mem.hierarchy",
    "repro.mem.hierarchy.MemoryHierarchy": "repro.sanitize",
    "repro.mem.mshr.MSHRFile": "repro.mem.hierarchy",
    "repro.mem.ports.PortArbiter": "repro.mem.hierarchy",
    "repro.prefetch.queue.PrefetchQueue": "repro.sanitize",
    "repro.trace.stream.Trace": "repro.trace.store",
}

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class SanitizerViolation(AssertionError):
    """A model-state invariant failed.

    Carries everything needed to reproduce and triage the violation:
    ``site`` (which structure), ``cycle`` (when), ``message`` (what),
    and ``snapshot`` (a small dict of the offending state).
    """

    def __init__(
        self,
        site: str,
        message: str,
        cycle: Optional[int] = None,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.site = site
        self.message = message
        self.cycle = cycle
        self.snapshot = dict(snapshot or {})
        super().__init__()

    def __str__(self) -> str:
        at = f" at cycle {self.cycle}" if self.cycle is not None else ""
        snap = f" | state: {self.snapshot}" if self.snapshot else ""
        return f"[{self.site}]{at} {self.message}{snap}"

    def __repr__(self) -> str:
        return f"SanitizerViolation({self.site!r}, {self.message!r}, cycle={self.cycle})"


def env_enabled() -> bool:
    """Is the sanitizer forced on through ``REPRO_SANITIZE``?"""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


def sanitize_enabled(config=None) -> bool:
    """Should this run be sanitized?  (config flag OR environment)."""
    if config is not None and getattr(config, "sanitize", False):
        return True
    return env_enabled()


def sanitize_interval() -> int:
    """Periodic-check spacing in instructions (env-tunable, >= 1)."""
    raw = os.environ.get(INTERVAL_ENV, "")
    try:
        value = int(raw) if raw else DEFAULT_INTERVAL
    except ValueError:
        value = DEFAULT_INTERVAL
    return max(1, value)


def check_flush_idempotent(group, site: str) -> None:
    """Stat-group flush conservation: two consecutive reads must agree.

    Every hot-path model batches its event counts in integer attributes
    and folds them into the stats dict through a flush hook that must be
    idempotent (add pending deltas, zero them).  A hook that double-folds
    or forgets to zero makes consecutive reads disagree — exactly what
    this check detects.
    """
    first = group.flat()
    second = group.flat()
    if first != second:
        diff = {
            key: (first.get(key), second.get(key))
            for key in set(first) | set(second)
            if first.get(key) != second.get(key)
        }
        raise SanitizerViolation(
            site,
            "stat flush hook is not idempotent: consecutive reads disagree "
            "(batched counters were folded twice or not zeroed)",
            snapshot=diff,
        )


class Sanitizer:
    """Periodic + end-of-run invariant checker for one simulation run.

    The engine owns one instance and calls :meth:`periodic` every
    ``interval`` instructions; the simulator calls :meth:`final` once
    after the run.  The vector engine keeps its own compact state and
    drives :meth:`fire_trip` + its local checks instead of
    :meth:`periodic` — see :meth:`repro.core.vector.VectorEngine.run`.
    """

    __slots__ = ("interval", "checks")

    def __init__(self, config=None, interval: Optional[int] = None) -> None:
        self.interval = interval if interval is not None else sanitize_interval()
        self.checks = 0

    # ------------------------------------------------------------------
    # Chaos hook
    # ------------------------------------------------------------------
    def fire_trip(self) -> bool:
        """Consult the fault plan: should this check point corrupt state?

        Returns True when an ``invariant-trip`` fault fires; the caller
        then deliberately corrupts its model state *before* running the
        checks, and raises if the corruption goes undetected — the
        sanitizer's own detection logic is what is under test.
        """
        self.checks += 1
        spec = fault_point("sanitizer", key=f"check-{self.checks}")
        return spec is not None and spec.kind == "invariant-trip"

    def _trip_hierarchy(self, engine) -> None:
        """Deliberately violate RIB => PIB lineage in the live L1."""
        line = engine.hierarchy.l1.sets[0][0]
        if not line.valid:
            line.valid = True
            line.tag = 0  # maps to set 0 under any power-of-two mask
            engine.hierarchy.l1._occupancy += 1
        line.pib = False
        line.rib = True
        line.source = 0

    # ------------------------------------------------------------------
    # Check drivers
    # ------------------------------------------------------------------
    def periodic(self, engine, cycle: int) -> None:
        """The cheap sweep: every bounded structure the hot loop touches."""
        tripped = self.fire_trip()
        if tripped:
            self._trip_hierarchy(engine)
        try:
            self._check_engine(engine, cycle, deep=False)
        except SanitizerViolation as violation:
            if violation.cycle is None:
                violation.cycle = cycle
            raise
        if tripped:  # pragma: no cover - reachable only if a check rots
            raise SanitizerViolation(
                "sanitizer", "injected invariant trip went undetected", cycle
            )

    def final(self, engine, cycle: int) -> None:
        """End-of-run audit: periodic checks plus the expensive ones."""
        try:
            self._check_engine(engine, cycle, deep=True)
        except SanitizerViolation as violation:
            if violation.cycle is None:
                violation.cycle = cycle
            raise

    def _check_engine(self, engine, cycle: int, deep: bool) -> None:
        # The hierarchy audits its own members (L1, MSHR, ports; L2 when
        # deep) — one aggregate entry point keeps the CHECK_WALK honest.
        engine.hierarchy.validate(cycle, deep=deep)
        engine.queue.validate()
        engine.rob.validate("rob")
        engine.lsq.validate("lsq")
        table = getattr(engine.filter, "table", None)
        if table is not None:
            table.validate()
        if deep:
            check_flush_idempotent(engine.hierarchy.stats, "mem.stats")
            check_flush_idempotent(engine.stats, "pipeline.stats")
            self._check_access_conservation(engine)

    def _check_access_conservation(self, engine) -> None:
        """Cross-counter conservation: port grants == L1 demand events.

        Every demand access acquires exactly one port and probes the L1
        exactly once, so two independently-maintained counters must
        agree.  Only meaningful for engines that arbitrate ports (the
        vector engine never touches the arbiter: grants stay 0) and
        without the prefetch buffer (promotion re-probes the L1).
        """
        if engine.hierarchy.buffer is not None:
            return
        ports = engine.hierarchy.ports.stats
        grants = ports.get("demand_grants")
        if not grants:
            return
        l1 = engine.hierarchy.l1.stats
        accesses = (
            l1.get("demand_read_hit")
            + l1.get("demand_read_miss")
            + l1.get("demand_write_hit")
            + l1.get("demand_write_miss")
        )
        if grants != accesses:
            raise SanitizerViolation(
                "mem.conservation",
                f"L1 port demand grants ({int(grants)}) != L1 demand accesses "
                f"({int(accesses)}): batched counters desynced from per-event truth",
                snapshot={"demand_grants": int(grants), "l1_demand_accesses": int(accesses)},
            )
