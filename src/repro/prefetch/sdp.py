"""Shadow Directory Prefetching (SDP).

From the paper (Section 3):

    "the SDP maintains a shadow line address in each L2 cache line for
    prefetching purposes along with its resident address.  The shadow line
    is the next line missed after the currently resident line was last
    accessed.  A confirmation bit is added to each L2 cache line indicating
    if the prefetched line was ever used since it was prefetched last time."

Implementation: a directory keyed by resident L2 line address holding
``(shadow, confirmation)``.  On every L2 access to line X the directory may
issue a prefetch for ``shadow[X]`` — but only while X's confirmation bit
says the last such prefetch proved useful (this is SDP's built-in throttle,
why the paper measures a much better good/bad ratio for SDP than NSP).
Learning: when an L2 miss to M follows an access to X, ``shadow[X] = M``.
Confirmation feedback arrives via :meth:`confirm_use`, wired by the
simulator to demand references of prefetched lines.  Directory entries die
with their L2 line (``on_l2_eviction``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.stats import StatGroup
from repro.mem.cache import FillSource
from repro.mem.hierarchy import AccessResult
from repro.prefetch.base import HardwarePrefetcher, PrefetchRequest


@dataclass(slots=True)
class _ShadowEntry:
    shadow: int
    confirmed: bool = True  # optimistic: a fresh shadow gets one chance


class ShadowDirectoryPrefetcher(HardwarePrefetcher):
    source = FillSource.SDP

    def __init__(self, stats: StatGroup | None = None) -> None:
        self.stats = stats if stats is not None else StatGroup("sdp")
        self._directory: Dict[int, _ShadowEntry] = {}
        #: line whose shadow should be updated by the next L2 miss
        self._last_l2_line: Optional[int] = None
        #: prefetched line -> parent line whose confirmation it proves
        self._awaiting_confirm: Dict[int, int] = {}
        self._n_issued = 0
        self._n_suppressed = 0
        self._n_learned = 0
        self._n_confirmed = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        for key, attr in (
            ("shadow_issued", "_n_issued"),
            ("shadow_suppressed", "_n_suppressed"),
            ("shadow_learned", "_n_learned"),
            ("confirmed", "_n_confirmed"),
        ):
            pending = getattr(self, attr)
            if pending:
                c[key] = c.get(key, 0) + pending
                setattr(self, attr, 0)

    # ------------------------------------------------------------------
    def observe(self, pc: int, result: AccessResult) -> List[PrefetchRequest]:
        # SDP is triggered by L2 accesses, i.e. demand references that
        # missed the L1 (result.l2_hit is None on an L1 hit).
        if result.l2_hit is None:
            return []
        line = result.line_addr
        requests: List[PrefetchRequest] = []

        entry = self._directory.get(line)
        if entry is not None and entry.shadow != line:
            if entry.confirmed:
                # Re-arm: the prefetch must be used again to stay confirmed.
                entry.confirmed = False
                self._awaiting_confirm[entry.shadow] = line
                self._n_issued += 1
                requests.append(PrefetchRequest(entry.shadow, pc, FillSource.SDP))
            else:
                self._n_suppressed += 1

        # Learn: every reference reaching the L2 is a miss from the L1's
        # point of view, so this line is the "next line missed" after the
        # previously referenced L2 line — record it as that line's shadow.
        prev = self._last_l2_line
        if prev is not None and prev != line:
            old = self._directory.get(prev)
            if old is None or old.shadow != line:
                self._directory[prev] = _ShadowEntry(shadow=line, confirmed=True)
                self._n_learned += 1
        self._last_l2_line = line
        return requests

    # ------------------------------------------------------------------
    def confirm_use(self, line_addr: int) -> None:
        """A prefetched line was demand-referenced: set its parent's bit."""
        parent = self._awaiting_confirm.pop(line_addr, None)
        if parent is None:
            return
        entry = self._directory.get(parent)
        if entry is not None and entry.shadow == line_addr:
            entry.confirmed = True
            self._n_confirmed += 1

    def on_l2_eviction(self, line_addr: int) -> None:
        self._directory.pop(line_addr, None)

    def reset(self) -> None:
        self._directory.clear()
        self._awaiting_confirm.clear()
        self._last_l2_line = None

    @property
    def directory_size(self) -> int:
        return len(self._directory)
