"""Correlation-based (Markov) prefetcher — Charney & Reeves [2].

An extension beyond the paper's NSP/SDP pair, included because the paper's
related-work section names it as the other major hardware-prefetch family
("keeps prior L1 cache miss addresses and triggers prefetches by
correlating subsequent misses to the history") and because it exercises
the pollution filter very differently: correlation prefetchers are
effective on repeating pointer-chase sequences where sequential prefetch
only pollutes — the ablation benches compare the two under filtering.

Implementation: a bounded correlation table mapping a miss line address to
its most-recent successor miss lines (MRU-ordered, ``ways`` deep).  On an
L1 miss to X the entry for X is consulted and up to ``degree`` successors
are prefetched; the entry for the *previous* miss is updated with X.
Capacity is bounded with LRU replacement over entries, as a real
correlation table (typically SRAM/DRAM resident) would be.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.common.stats import StatGroup
from repro.mem.cache import FillSource
from repro.mem.hierarchy import AccessResult
from repro.prefetch.base import HardwarePrefetcher, PrefetchRequest


class MarkovPrefetcher(HardwarePrefetcher):
    source = FillSource.STRIDE  # shares the "extension" accounting slot

    def __init__(
        self,
        entries: int = 4096,
        ways: int = 2,
        degree: int = 1,
        stats: StatGroup | None = None,
    ) -> None:
        if entries < 1:
            raise ValueError("correlation table needs at least one entry")
        if ways < 1:
            raise ValueError("need at least one successor slot per entry")
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self.capacity = entries
        self.ways = ways
        self.degree = degree
        self.stats = stats if stats is not None else StatGroup("markov")
        self._table: "OrderedDict[int, List[int]]" = OrderedDict()
        self._last_miss: Optional[int] = None

    def observe(self, pc: int, result: AccessResult) -> List[PrefetchRequest]:
        if result.l1_hit:
            return []
        line = result.line_addr

        # Learn: the previous miss is followed by this one.
        prev = self._last_miss
        if prev is not None and prev != line:
            successors = self._table.get(prev)
            if successors is None:
                if len(self._table) >= self.capacity:
                    self._table.popitem(last=False)
                    self.stats.bump("entry_evicted")
                successors = []
                self._table[prev] = successors
                self.stats.bump("entry_allocated")
            else:
                self._table.move_to_end(prev)
            if line in successors:
                successors.remove(line)
            successors.insert(0, line)
            del successors[self.ways :]
        self._last_miss = line

        # Predict: prefetch this miss's known successors.
        successors = self._table.get(line)
        if not successors:
            return []
        self._table.move_to_end(line)
        self.stats.bump("predictions")
        return [
            PrefetchRequest(succ, pc, self.source)
            for succ in successors[: self.degree]
        ]

    def reset(self) -> None:
        self._table.clear()
        self._last_miss = None

    @property
    def table_size(self) -> int:
        return len(self._table)
