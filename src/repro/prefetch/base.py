"""Prefetcher interface and the request record.

A prefetcher observes demand-access outcomes (delivered by the simulator
after each load/store resolves) and returns zero or more
:class:`PrefetchRequest` objects.  Each request carries:

* the **line address** to fetch — what the PA-based filter indexes on,
* the **trigger PC** — the memory instruction (or software-prefetch
  instruction) that caused it, what the PC-based filter indexes on,
* the **source** — which prefetcher generated it, for per-source accounting
  (Section 5.2.1 evaluates NSP and SDP separately).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List

from repro.mem.cache import FillSource
from repro.mem.hierarchy import AccessResult


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """One candidate prefetch heading for the pollution filter."""

    line_addr: int
    trigger_pc: int
    source: FillSource

    def __post_init__(self) -> None:
        if not self.source.is_prefetch:
            raise ValueError("a prefetch request cannot have a DEMAND source")
        if self.line_addr < 0:
            raise ValueError("line address must be non-negative")


class HardwarePrefetcher(abc.ABC):
    """Observes demand traffic, emits prefetch candidates."""

    #: FillSource tag stamped on lines this prefetcher brings in.
    source: FillSource

    @abc.abstractmethod
    def observe(self, pc: int, result: AccessResult) -> List[PrefetchRequest]:
        """React to one resolved demand access.

        ``result`` describes where the access hit (L1/L2/memory) plus the
        NSP tag-bit outcome; ``pc`` is the demand instruction's PC, which
        hardware prefetchers use as the trigger PC for PC-based filtering.
        """

    def on_l2_eviction(self, line_addr: int) -> None:
        """Hook for prefetchers holding per-L2-line state (SDP)."""

    def reset(self) -> None:
        """Forget all learned state (fresh run)."""
