"""Prefetch generators and the prefetch queue.

The paper drives its filter with three prefetch sources running together:

* :mod:`repro.prefetch.nsp` — Next-Sequence Prefetching (tagged sequential
  prefetch, Smith [16]),
* :mod:`repro.prefetch.sdp` — Shadow Directory Prefetching (Pomerene et
  al. [13]), triggered from the L2,
* :mod:`repro.prefetch.software` — compiler-inserted prefetch instructions
  identified in the LSQ,

plus (as an extension beyond the paper) a Chen/Baer-style stride prefetcher
in :mod:`repro.prefetch.stride`.  All requests flow through the 64-entry
:class:`~repro.prefetch.queue.PrefetchQueue`, which contends with demand
references for the L1 ports.
"""

from repro.prefetch.base import HardwarePrefetcher, PrefetchRequest
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.nsp import NextSequencePrefetcher
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.sdp import ShadowDirectoryPrefetcher
from repro.prefetch.software import SoftwarePrefetchUnit
from repro.prefetch.stride import StridePrefetcher

__all__ = [
    "HardwarePrefetcher",
    "MarkovPrefetcher",
    "NextSequencePrefetcher",
    "PrefetchQueue",
    "PrefetchRequest",
    "ShadowDirectoryPrefetcher",
    "SoftwarePrefetchUnit",
    "StridePrefetcher",
]
