"""Reference-Prediction-Table stride prefetcher (Chen & Baer [3, 4]).

An *extension* beyond the paper's two hardware prefetchers: a per-PC table
tracking (last address, stride, 2-bit state).  When a load's stride repeats,
the entry moves toward ``steady`` and prefetches ``addr + stride``.  Used by
the ablation benches to show the filter composes with a third prefetch
source, as the paper's design intends ("encompass several prefetching
techniques altogether").

State machine (classic RPT):

    initial --match--> steady        initial --mismatch--> transient
    transient --match--> steady      transient --mismatch--> no-pred
    steady --mismatch--> initial     no-pred --match--> transient
"""

from __future__ import annotations

import enum
from typing import List

import numpy as np

from repro.common.hashing import table_index
from repro.common.stats import StatGroup
from repro.mem.cache import FillSource
from repro.mem.hierarchy import AccessResult
from repro.prefetch.base import HardwarePrefetcher, PrefetchRequest


class _State(enum.IntEnum):
    INITIAL = 0
    TRANSIENT = 1
    STEADY = 2
    NO_PRED = 3


class StridePrefetcher(HardwarePrefetcher):
    source = FillSource.STRIDE

    def __init__(
        self,
        entries: int = 256,
        line_bytes: int = 32,
        degree: int = 1,
        stats: StatGroup | None = None,
    ) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("RPT entries must be a positive power of two")
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self.entries = entries
        self.line_shift = line_bytes.bit_length() - 1
        self.degree = degree
        self.stats = stats if stats is not None else StatGroup("stride")
        self._tag = np.full(entries, -1, dtype=np.int64)
        self._last = np.zeros(entries, dtype=np.int64)
        self._stride = np.zeros(entries, dtype=np.int64)
        self._state = np.zeros(entries, dtype=np.uint8)

    def observe_address(self, pc: int, byte_addr: int) -> List[PrefetchRequest]:
        """Train on the *byte* address of a demand load and maybe predict.

        Separate from :meth:`observe` because stride detection needs byte
        granularity, which ``AccessResult`` (line granularity) doesn't carry.
        """
        i = table_index(pc, self.entries, "modulo")
        if self._tag[i] != pc:
            self._tag[i] = pc
            self._last[i] = byte_addr
            self._stride[i] = 0
            self._state[i] = _State.INITIAL
            self.stats.bump("allocations")
            return []

        new_stride = byte_addr - int(self._last[i])
        match = new_stride == self._stride[i] and new_stride != 0
        state = _State(int(self._state[i]))

        if match:
            next_state = {
                _State.INITIAL: _State.STEADY,
                _State.TRANSIENT: _State.STEADY,
                _State.STEADY: _State.STEADY,
                _State.NO_PRED: _State.TRANSIENT,
            }[state]
        else:
            next_state = {
                _State.INITIAL: _State.TRANSIENT,
                _State.TRANSIENT: _State.NO_PRED,
                _State.STEADY: _State.INITIAL,
                _State.NO_PRED: _State.NO_PRED,
            }[state]
            if state != _State.STEADY:
                self._stride[i] = new_stride

        self._last[i] = byte_addr
        self._state[i] = next_state

        if next_state != _State.STEADY:
            return []
        stride = int(self._stride[i])
        self.stats.bump("predictions")
        out: List[PrefetchRequest] = []
        seen: set[int] = set()
        for d in range(1, self.degree + 1):
            line = (byte_addr + d * stride) >> self.line_shift
            if line not in seen and line != (byte_addr >> self.line_shift):
                seen.add(line)
                out.append(PrefetchRequest(line, pc, FillSource.STRIDE))
        return out

    def observe(self, pc: int, result: AccessResult) -> List[PrefetchRequest]:
        # Line-granular fallback: train as if the access touched line bases.
        return self.observe_address(pc, result.line_addr << self.line_shift)

    def reset(self) -> None:
        self._tag.fill(-1)
        self._state.fill(_State.INITIAL)
        self._stride.fill(0)
