"""Next-Sequence Prefetching (NSP).

Tagged sequential prefetching as the paper describes it (Section 3):

    "the NSP employs a tag bit associated with each cache line.  When a
    cache line is prefetched, its corresponding tag bit is set.  The next
    adjacent cache line is automatically prefetched when a memory access
    either misses the L1 or hits a tagged cache line."

The tag bit itself lives in the L1 (``Cache.nsp_tag``); the hierarchy's
``AccessResult.nsp_tag_hit`` reports a read-and-clear of that bit, so this
class is nearly stateless — it just turns trigger conditions into next-line
requests.  ``degree`` > 1 prefetches several adjacent lines per trigger
(a more aggressive variant used in ablations; the paper's default is 1).
"""

from __future__ import annotations

from typing import List

from repro.common.stats import StatGroup
from repro.mem.cache import FillSource
from repro.mem.hierarchy import AccessResult
from repro.prefetch.base import HardwarePrefetcher, PrefetchRequest


class NextSequencePrefetcher(HardwarePrefetcher):
    source = FillSource.NSP

    def __init__(self, degree: int = 1, stats: StatGroup | None = None) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be at least 1")
        self.degree = degree
        self.stats = stats if stats is not None else StatGroup("nsp")

    def observe(self, pc: int, result: AccessResult) -> List[PrefetchRequest]:
        triggered = (not result.l1_hit) or result.nsp_tag_hit
        if not triggered:
            return []
        self.stats.bump("trigger_miss" if not result.l1_hit else "trigger_tag_hit")
        return [
            PrefetchRequest(result.line_addr + d, pc, FillSource.NSP)
            for d in range(1, self.degree + 1)
        ]

    def reset(self) -> None:
        pass  # learned state lives in the L1 tag bits
