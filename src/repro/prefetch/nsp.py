"""Next-Sequence Prefetching (NSP).

Tagged sequential prefetching as the paper describes it (Section 3):

    "the NSP employs a tag bit associated with each cache line.  When a
    cache line is prefetched, its corresponding tag bit is set.  The next
    adjacent cache line is automatically prefetched when a memory access
    either misses the L1 or hits a tagged cache line."

The tag bit itself lives in the L1 (``Cache.nsp_tag``); the hierarchy's
``AccessResult.nsp_tag_hit`` reports a read-and-clear of that bit, so this
class is nearly stateless — it just turns trigger conditions into next-line
requests.  ``degree`` > 1 prefetches several adjacent lines per trigger
(a more aggressive variant used in ablations; the paper's default is 1).
"""

from __future__ import annotations

from typing import List

from repro.common.stats import StatGroup
from repro.mem.cache import FillSource
from repro.mem.hierarchy import AccessResult
from repro.prefetch.base import HardwarePrefetcher, PrefetchRequest


class NextSequencePrefetcher(HardwarePrefetcher):
    source = FillSource.NSP

    def __init__(self, degree: int = 1, stats: StatGroup | None = None) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be at least 1")
        self.degree = degree
        self.stats = stats if stats is not None else StatGroup("nsp")
        self._n_trigger_miss = 0
        self._n_trigger_tag = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        if self._n_trigger_miss:
            c["trigger_miss"] = c.get("trigger_miss", 0) + self._n_trigger_miss
            self._n_trigger_miss = 0
        if self._n_trigger_tag:
            c["trigger_tag_hit"] = c.get("trigger_tag_hit", 0) + self._n_trigger_tag
            self._n_trigger_tag = 0

    def observe(self, pc: int, result: AccessResult) -> List[PrefetchRequest]:
        if not result.l1_hit:
            self._n_trigger_miss += 1
        elif result.nsp_tag_hit:
            self._n_trigger_tag += 1
        else:
            return []
        line = result.line_addr
        return [
            PrefetchRequest(line + d, pc, FillSource.NSP)
            for d in range(1, self.degree + 1)
        ]

    def reset(self) -> None:
        pass  # learned state lives in the L1 tag bits
