"""Software-prefetch execution path.

Compiler-inserted prefetch instructions (the Alpha ``ldq $r31`` idiom) are
identified in the LSQ and sent to the pollution filter directly (paper,
Figure 3 discussion).  This unit converts a trace's SW_PREFETCH record into
a :class:`~repro.prefetch.base.PrefetchRequest` whose trigger PC is the
prefetch instruction's own PC — which makes the PC-based filter exact for
software prefetches.
"""

from __future__ import annotations

from repro.common.stats import StatGroup
from repro.mem.cache import FillSource
from repro.prefetch.base import PrefetchRequest


class SoftwarePrefetchUnit:
    source = FillSource.SOFTWARE

    def __init__(self, line_bytes: int = 32, stats: StatGroup | None = None) -> None:
        self.line_shift = line_bytes.bit_length() - 1
        self.stats = stats if stats is not None else StatGroup("sw_prefetch")
        self._n_executed = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        if self._n_executed:
            c = self.stats.counters
            c["executed"] = c.get("executed", 0) + self._n_executed
            self._n_executed = 0

    def request(self, pc: int, byte_addr: int) -> PrefetchRequest:
        """Turn one executed software-prefetch instruction into a request."""
        self._n_executed += 1
        return PrefetchRequest(byte_addr >> self.line_shift, pc, FillSource.SOFTWARE)
