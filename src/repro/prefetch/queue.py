"""The prefetch queue (Table 1: 64 entries).

Prefetches that survive the pollution filter wait here for a free L1 port
(Figure 3: "the prefetch queue contends the L1 cache ports with normal L1
memory references").  Because demand accesses have strict port priority, a
port-saturated phase backs the queue up; queued prefetches then issue late —
or are dropped when the queue overflows — which is the mechanism behind the
Section 5.4 observation that fewer ports turn good prefetches into bad ones.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.common.stats import StatGroup
from repro.prefetch.base import PrefetchRequest


class PrefetchQueue:
    """Bounded FIFO of (request, enqueue-cycle) pairs."""

    def __init__(self, capacity: int, stats: StatGroup | None = None) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._q: Deque[Tuple[PrefetchRequest, int]] = deque()
        self.stats = stats if stats is not None else StatGroup("prefetch_queue")
        self._n_dropped_full = 0
        self._n_enqueued = 0
        self._n_issued = 0
        self._n_delay = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        for key, attr in (
            ("dropped_full", "_n_dropped_full"),
            ("enqueued", "_n_enqueued"),
            ("issued", "_n_issued"),
            ("queue_delay_cycles", "_n_delay"),
        ):
            pending = getattr(self, attr)
            if pending:
                c[key] = c.get(key, 0) + pending
                setattr(self, attr, 0)

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.capacity

    def push(self, request: PrefetchRequest, now: int) -> bool:
        """Enqueue; returns False (and counts a drop) when full.

        A full queue drops the *incoming* request: the queued ones are older
        and closer to issue, and hardware cannot renege an allocated slot.
        """
        if len(self._q) >= self.capacity:
            self._n_dropped_full += 1
            return False
        self._q.append((request, now))
        self._n_enqueued += 1
        return True

    def peek(self) -> Optional[Tuple[PrefetchRequest, int]]:
        return self._q[0] if self._q else None

    def pop(self, issue_cycle: int) -> PrefetchRequest:
        """Dequeue the head for issue at ``issue_cycle`` (records queue delay)."""
        request, enqueued = self._q.popleft()
        self._n_issued += 1
        if issue_cycle > enqueued:
            self._n_delay += issue_cycle - enqueued
        return request

    def pending_requests(self) -> list[PrefetchRequest]:
        """Requests still waiting (end-of-run accounting)."""
        return [request for request, _ in self._q]

    def validate(self) -> None:
        """Sanitizer audit: occupancy <= capacity, FIFO age order.

        Enqueue stamps must be non-decreasing head-to-tail — the queue
        only ever appends at the tail and pops at the head, so an
        out-of-order stamp means an entry was teleported or overwritten.
        """
        from repro.sanitize import SanitizerViolation

        if len(self._q) > self.capacity:
            raise SanitizerViolation(
                "prefetch_queue",
                f"{len(self._q)} queued requests exceed the "
                f"{self.capacity}-entry queue",
                snapshot={"occupancy": len(self._q), "capacity": self.capacity},
            )
        previous = None
        for position, (_, enqueued) in enumerate(self._q):
            if previous is not None and enqueued < previous:
                raise SanitizerViolation(
                    "prefetch_queue",
                    f"entry {position} enqueued at {enqueued}, after an "
                    f"entry enqueued at {previous}: FIFO age order broken",
                    snapshot={"position": position, "stamps": [t for _, t in self._q]},
                )
            previous = enqueued

    def clear(self) -> int:
        """Drop everything still queued (end of run); returns the count."""
        n = len(self._q)
        if n:
            self.stats.bump("dropped_at_drain", n)
        self._q.clear()
        return n
