"""``gcc`` — SPEC95 C compiler (cp-decl.i input).

Compilers are the canonical irregular integer workload: RTL nodes, symbol
tables and hash chains are scattered across a megabyte-plus heap, accessed
with Zipf-like popularity (a few tree roots and common symbols dominate)
and connected by branchy, hard-to-predict control flow.  No prefetcher
reads this pattern well: the paper singles ``gcc`` out as the program
whose prefetches are so unpredictable that the filters end up removing
most of them, good and bad alike (Section 5.2.1), making it the stress
test for over-filtering.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import linked_list_addresses, zipf_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_HEAP_BASE = 0x1500_0000
_N_OBJECTS = 10_000
_OBJECT_BYTES = 32  # RTL node / symbol record, 320 KB heap
_CHAIN_BASE = 0x2500_0000
_CHAIN_BYTES = 96 * 1024


@register_workload
class Gcc(Workload):
    info = WorkloadInfo(
        name="gcc",
        suite="spec95",
        input_set="cp-decl.i",
        paper_l1_miss=0.0551,
        paper_l2_miss=0.0221,
        description="zipf symbol-table probes + hash-chain walks, branchy",
    )

    def init_regions(self):
        return [("heap", _HEAP_BASE, _N_OBJECTS * _OBJECT_BYTES), ("chains", _CHAIN_BASE, _CHAIN_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        n_chain_nodes = _CHAIN_BYTES // _OBJECT_BYTES
        while len(builder) < n_insts:
            # Symbol/RTL lookups: zipf-popular objects over a 768 KB heap,
            # surrounded by the tree-walker's own locals.
            probes = zipf_addresses(rng, _HEAP_BASE, _N_OBJECTS, _OBJECT_BYTES, 128, s=1.3)
            emit_access_block(
                builder, rng, "symtab", mix_local_accesses(rng, probes, 0.91),
                store_fraction=0.1, ops_per_access=2,
                branch_every=2, branch_taken_rate=0.82, n_static_sites=6,
            )
            # Hash-chain walks: short random chases through the chain arena.
            chains = linked_list_addresses(rng, _CHAIN_BASE, n_chain_nodes, _OBJECT_BYTES, 48)
            emit_access_block(
                builder, rng, "hashchain", mix_local_accesses(rng, chains, 0.92),
                ops_per_access=1, branch_every=3, branch_taken_rate=0.75, n_static_sites=3,
            )
