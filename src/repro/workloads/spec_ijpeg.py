"""``ijpeg`` — SPEC95 JPEG compression (penguin.ppm).

Image compression sweeps 8×8 pixel blocks: within a block the rows are
contiguous, consecutive blocks advance along the scanline, and the whole
image (~750 KB for the penguin input) streams through the hierarchy once
per pass.  This is the friendliest code in the suite for sequential
prefetching — which is why the paper measures ``ijpeg`` as having the
*highest* prefetch-to-normal traffic ratio (0.57 in Figure 2): NSP fires
on nearly every block boundary, and most of those prefetches are good.
L1/L2 miss rates are moderate (5.7% / 2.4%).
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import strided_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_IMG_BASE = 0x1300_0000
_OUT_BASE = 0x2300_0000
_ROW_BYTES = 768  # 256 px * 3 bytes
_IMG_ROWS = 128  # ~96 KB image: streams through the L1, lives in the L2
_OUT_BYTES = 48 * 1024
_BLOCK = 8


@register_workload
class IJpeg(Workload):
    info = WorkloadInfo(
        name="ijpeg",
        suite="spec95",
        input_set="penguin.ppm",
        paper_l1_miss=0.0565,
        paper_l2_miss=0.0235,
        description="blocked 8x8 image sweep, prefetch-friendly streaming",
    )

    def init_regions(self):
        return [("image", _IMG_BASE, _ROW_BYTES * _IMG_ROWS), ("out", _OUT_BASE, _OUT_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        block_row = 0
        blocks_per_row = _ROW_BYTES // (_BLOCK * 3)
        while len(builder) < n_insts:
            r0 = (block_row * _BLOCK) % (_IMG_ROWS - _BLOCK)
            for bc in range(blocks_per_row):
                base = _IMG_BASE + r0 * _ROW_BYTES + bc * _BLOCK * 3
                # Read the block: 8 rows of 24 bytes (3 touches per row),
                # interleaved with the DCT's working registers/locals.
                reads = np.concatenate(
                    [strided_addresses(base + r * _ROW_BYTES, 3, 8) for r in range(_BLOCK)]
                )
                emit_access_block(
                    builder, rng, "blockread", mix_local_accesses(rng, reads, 0.84),
                    ops_per_access=3, fp_ops=True, branch_every=6, branch_taken_rate=0.97,
                )
                # DCT + quantise, then write coefficients to the output stream.
                out_off = ((block_row * blocks_per_row + bc) * 128) % _OUT_BYTES
                out = strided_addresses(_OUT_BASE + out_off, 16, 8)
                emit_access_block(
                    builder, rng, "coefwrite", mix_local_accesses(rng, out, 0.6),
                    store_fraction=0.8, ops_per_access=2, fp_ops=True,
                    branch_every=8, branch_taken_rate=0.98,
                )
                if len(builder) >= n_insts:
                    return
            block_row += 1
