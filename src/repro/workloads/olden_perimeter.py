"""``perimeter`` — Olden quadtree perimeter computation (12 levels).

A recursive traversal over a large quadtree computing region perimeters.
Two behaviours dominate: deep pointer chasing over the node heap — a
12-level tree spans megabytes, well past the 512 KB L2, so leaf-ward
visits miss all the way to memory — and a hot recursion spine (stack
frames, upper-level nodes) that stays cache resident.  That mix yields the
paper's inverted profile: a *low* L1 miss rate (4.8%) but the highest L2
miss rate of the Olden trio (27.1%).  Prefetchers gain little on the cold
heap and mostly pollute the small L1.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import linked_list_addresses, strided_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_HEAP_BASE = 0x1200_0000
_STACK_BASE = 0x7F00_0400  # sets 32+: clear of the locals region (sets 0-23)
_HEAP_BYTES = 768 * 1024  # cold quadtree levels, well beyond the L2
_NODE_BYTES = 48


@register_workload
class Perimeter(Workload):
    info = WorkloadInfo(
        name="perimeter",
        suite="olden",
        input_set="12 levels",
        paper_l1_miss=0.0478,
        paper_l2_miss=0.2709,
        description="cold quadtree chase + hot recursion spine",
    )

    def init_regions(self):
        return [("heap", _HEAP_BASE, _HEAP_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        n_nodes = _HEAP_BYTES // _NODE_BYTES
        stack = strided_addresses(_STACK_BASE, 16, 64)
        while len(builder) < n_insts:
            # Descend: a handful of cold node visits per recursion step,
            # buried in recursion-frame locals (the hot spine).
            chase = linked_list_addresses(rng, _HEAP_BASE, n_nodes, _NODE_BYTES, 8)
            emit_access_block(
                builder, rng, "descend", mix_local_accesses(rng, chase, 0.95),
                ops_per_access=2, branch_every=2, branch_taken_rate=0.80, n_static_sites=2,
            )
            # ...plus explicit frame pushes/pops on the recursion stack.
            emit_access_block(
                builder, rng, "frame", np.tile(stack, 2),
                store_fraction=0.3, ops_per_access=2, branch_every=8, branch_taken_rate=0.96,
            )
