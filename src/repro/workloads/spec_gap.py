"""``gap`` — SPEC2000 computational group theory (ref input).

GAP's interpreter manipulates *bags* — variable-size objects in a large
garbage-collected arena (the reference workspace runs to many megabytes).
Accesses follow object popularity (workspace roots and small integers are
touched constantly; most bags rarely) over an arena far larger than the
L2, which produces the paper's profile: a low L1 miss rate (4.1%, the hot
objects fit) but a *high* L2 miss rate (22.5%, the cold arena doesn't).
History-table filtering is nearly size-insensitive here (Figure 10's
``gap`` outlier) because the hot set is small and stable.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import strided_addresses, zipf_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_ARENA_BASE = 0x1700_0000
_N_BAGS = 24_576
_BAG_BYTES = 32  # 768 KB arena, past the L2
_HANDLE_BASE = 0x2700_0C00  # sets 96+: clear of the locals region


@register_workload
class Gap(Workload):
    info = WorkloadInfo(
        name="gap",
        suite="spec2000",
        input_set="ref.in",
        paper_l1_miss=0.0409,
        paper_l2_miss=0.2247,
        description="zipf bag accesses over a >L2 arena, hot handle table",
    )

    def init_regions(self):
        return [("arena", _ARENA_BASE, _N_BAGS * _BAG_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        handles = strided_addresses(_HANDLE_BASE, 64, 8)
        while len(builder) < n_insts:
            # Interpreter loop: hot handle-table reads dominate...
            emit_access_block(
                builder, rng, "handles", np.tile(handles, 3),
                ops_per_access=2, branch_every=4, branch_taken_rate=0.90, n_static_sites=4,
            )
            # ...interleaved with bag bodies drawn by popularity from the arena.
            bags = zipf_addresses(rng, _ARENA_BASE, _N_BAGS, _BAG_BYTES, 96, s=1.3)
            emit_access_block(
                builder, rng, "bags", mix_local_accesses(rng, bags, 0.93),
                store_fraction=0.2, ops_per_access=2,
                branch_every=5, branch_taken_rate=0.87, n_static_sites=4,
            )
