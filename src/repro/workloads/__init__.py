"""The paper's 10 benchmarks (Table 2) as synthetic trace generators.

Importing this package registers every workload; use :func:`get_workload`
/ :func:`workload_names` for access, and :func:`build_trace` for the
standard pipeline (generate + compiler prefetch insertion).
"""

from __future__ import annotations

from functools import lru_cache

from repro.trace.stream import Trace
from repro.workloads.base import (
    REGISTRY,
    Workload,
    WorkloadInfo,
    emit_access_block,
    get_workload,
    register_workload,
    workload_names,
)
from repro.workloads.swprefetch import count_inserted, insert_software_prefetches

# Import order defines the Table 2 ordering of workload_names().
from repro.workloads import olden_bh  # noqa: E402,F401
from repro.workloads import olden_em3d  # noqa: E402,F401
from repro.workloads import olden_perimeter  # noqa: E402,F401
from repro.workloads import spec_ijpeg  # noqa: E402,F401
from repro.workloads import spec_fpppp  # noqa: E402,F401
from repro.workloads import spec_gcc  # noqa: E402,F401
from repro.workloads import spec_wave5  # noqa: E402,F401
from repro.workloads import spec_gap  # noqa: E402,F401
from repro.workloads import spec_gzip  # noqa: E402,F401
from repro.workloads import spec_mcf  # noqa: E402,F401


def build_trace(
    name: str,
    n_insts: int = 100_000,
    seed: int = 0,
    software_prefetch: bool = True,
    lookahead_lines: int = 4,
) -> Trace:
    """Generate a benchmark trace, optionally with compiler prefetches.

    This is the standard way experiments obtain inputs: it matches the
    paper's setup of Alpha binaries compiled at ``-O4`` (software prefetch
    instructions present) driving the simulator.
    """
    trace = get_workload(name).generate(n_insts, seed)
    if software_prefetch:
        trace = insert_software_prefetches(trace, lookahead_lines=lookahead_lines)
    return trace


@lru_cache(maxsize=64)
def cached_trace(
    name: str,
    n_insts: int = 100_000,
    seed: int = 0,
    software_prefetch: bool = True,
) -> Trace:
    """Memoised :func:`build_trace` — traces are immutable, so benches and
    sweeps that rerun the same workload share one copy."""
    return build_trace(name, n_insts, seed, software_prefetch)


__all__ = [
    "REGISTRY",
    "Trace",
    "Workload",
    "WorkloadInfo",
    "build_trace",
    "cached_trace",
    "count_inserted",
    "emit_access_block",
    "get_workload",
    "insert_software_prefetches",
    "register_workload",
    "workload_names",
]
