"""Compiler emulation: software-prefetch insertion (``gcc -O4`` stand-in).

The paper compiles with ``-O4``, which makes the Alpha compiler insert
non-blocking prefetch loads for array references whose addresses it can
prove — i.e. affine accesses driven by loop induction variables.  This
pass reproduces that behaviour on a finished trace, using exactly the
information a compiler has:

* per static load PC, watch the address stream; when the stride has repeated
  ``confidence`` consecutive times the access is treated
  as provably affine (a real compiler proves this statically; observing a
  stable stride at the same PC is the trace-level equivalent),
* insert a ``SW_PREFETCH`` record immediately before the load targeting
  ``addr + lookahead_lines`` cache lines down the stream (compilers
  schedule the prefetch one/more iterations ahead inside the loop body),
* emit at most one prefetch per cache line per PC (compilers strength-
  reduce duplicate prefetches to the same line out of unrolled loops).

Pointer-chasing loads never develop a stable stride and get nothing —
matching the paper's observation that software prefetches are far fewer
than hardware ones but considerably more accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.trace.record import LOAD, SW_PREFETCH
from repro.trace.stream import Trace

#: Synthetic PCs for inserted prefetch instructions live in their own page
#: so they can never collide with generator-assigned PCs.
_SW_PC_BASE = 0x0009_0000_0000


@dataclass
class _PCState:
    last_addr: int = -1
    stride: int = 0
    stable: int = 0
    last_pf_line: int = -1


def insert_software_prefetches(
    trace: Trace,
    lookahead_lines: int = 4,
    line_bytes: int = 32,
    confidence: int = 1,
) -> Trace:
    """Return a new trace with compiler-style prefetches inserted.

    ``lookahead_lines`` controls the prefetch distance in cache lines along
    the detected stride direction; ``confidence`` is how many consecutive
    constant-stride executions a PC needs before it earns prefetches.
    """
    if lookahead_lines < 1:
        raise ValueError("lookahead must be at least one line")
    if confidence < 1:
        raise ValueError("confidence must be positive")

    shift = line_bytes.bit_length() - 1
    states: Dict[int, _PCState] = {}
    pf_pc_of: Dict[int, int] = {}

    out_iclass: list[int] = []
    out_pc: list[int] = []
    out_addr: list[int] = []
    out_taken: list[bool] = []

    iclass_col = trace.iclass
    pc_col = trace.pc
    addr_col = trace.addr
    taken_col = trace.taken
    load_value = int(LOAD)
    swpf_value = int(SW_PREFETCH)

    for i in range(len(trace)):
        cls = int(iclass_col[i])
        pc = int(pc_col[i])
        addr = int(addr_col[i])
        if cls == load_value:
            st = states.get(pc)
            if st is None:
                st = states[pc] = _PCState()
            if st.last_addr >= 0:
                stride = addr - st.last_addr
                if stride == st.stride and stride != 0:
                    st.stable += 1
                else:
                    st.stride = stride
                    st.stable = 0
            st.last_addr = addr
            if st.stable >= confidence and st.stride != 0:
                # Provably affine: prefetch `lookahead_lines` lines ahead.
                direction = 1 if st.stride > 0 else -1
                target = addr + direction * lookahead_lines * line_bytes
                target_line = target >> shift
                if target > 0 and target_line != st.last_pf_line:
                    st.last_pf_line = target_line
                    sw_pc = pf_pc_of.setdefault(pc, _SW_PC_BASE + 4 * len(pf_pc_of))
                    out_iclass.append(swpf_value)
                    out_pc.append(sw_pc)
                    out_addr.append(target)
                    out_taken.append(False)
        out_iclass.append(cls)
        out_pc.append(pc)
        out_addr.append(addr)
        out_taken.append(bool(taken_col[i]))

    return Trace(
        np.asarray(out_iclass, dtype=np.uint8),
        np.asarray(out_pc, dtype=np.uint64),
        np.asarray(out_addr, dtype=np.uint64),
        np.asarray(out_taken, dtype=np.bool_),
        trace.name,
    )


def count_inserted(trace: Trace) -> int:
    """Number of software-prefetch records present in a trace."""
    return int((trace.iclass == int(SW_PREFETCH)).sum())
