"""``em3d`` — Olden electromagnetic wave propagation (bipartite graph).

The program holds two node sets (E field, H field); each iteration every
node gathers the values of ~10 neighbours *on the other side* and updates
itself.  Neighbour lists are built randomly, so the gathers have no spatial
pattern at all — every neighbour read is effectively a random probe into
the other side's region.  With both sides sized well beyond the 8 KB L1 but
tiny against the L2, the paper's signature emerges: a very high L1 miss
rate (21.6%, the worst of the ten) with an essentially zero L2 miss rate
(0.01%).  Sequential prefetchers fire constantly here and are almost always
wrong — ``em3d`` is the pollution filter's best case.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import linked_list_addresses, strided_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_E_BASE = 0x1100_0000
_H_BASE = 0x2100_0000
_SIDE_BYTES = 24 * 1024
_NODE_BYTES = 32
_ARITY = 10


@register_workload
class EM3D(Workload):
    info = WorkloadInfo(
        name="em3d",
        suite="olden",
        input_set="100 nodes 10 arity 10K iter",
        paper_l1_miss=0.2161,
        paper_l2_miss=0.0001,
        description="bipartite random gather, L1-hostile / L2-friendly",
    )

    def init_regions(self):
        return [("e", _E_BASE, _SIDE_BYTES), ("h", _H_BASE, _SIDE_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        n_nodes = _SIDE_BYTES // _NODE_BYTES
        while len(builder) < n_insts:
            for side, base, other in (("e", _E_BASE, _H_BASE), ("h", _H_BASE, _E_BASE)):
                # Walk this side's node list in layout order...
                nodes = strided_addresses(base, 48, _NODE_BYTES * (n_nodes // 48))
                for node_addr in nodes:
                    # ...gathering ARITY random neighbours from the other side.
                    gathers = linked_list_addresses(rng, other, n_nodes, _NODE_BYTES, _ARITY)
                    emit_access_block(
                        builder, rng, f"{side}.gather", mix_local_accesses(rng, gathers, 0.77),
                        ops_per_access=1, fp_ops=True, branch_every=_ARITY,
                        branch_taken_rate=0.98, n_static_sites=2,
                    )
                    builder.load(f"{side}.self", int(node_addr))
                    builder.store(f"{side}.update", int(node_addr))
                    builder.ops(f"{side}.acc", 2, fp=True)
                    if len(builder) >= n_insts:
                        return
