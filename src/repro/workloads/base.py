"""Workload framework: the benchmark stand-ins that drive the simulator.

The paper evaluates 10 programs from Olden, SPEC95 and SPEC2000 compiled to
Alpha (Table 2).  We cannot run Alpha binaries, so each benchmark is
replaced by a generator that reproduces its *memory-locality class* —
working-set size relative to the 8 KB L1 / 512 KB L2, pointer vs stride
character, branch predictability, instruction mix — which is what the
pollution filter's behaviour actually depends on.  Each generator is a pure
function of (instruction budget, seed).

``emit_access_block`` is the shared kernel every workload composes: it
turns a pre-planned address sequence into a realistic instruction stream
(loads/stores interleaved with ALU ops and loop branches).
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Type

import numpy as np

from repro.trace.stream import Trace, TraceBuilder


@dataclass(frozen=True)
class WorkloadInfo:
    """Table 2 row: provenance and the paper's measured miss rates."""

    name: str
    suite: str
    input_set: str
    paper_l1_miss: float
    paper_l2_miss: float
    description: str


class Workload(abc.ABC):
    """A benchmark stand-in producing deterministic traces."""

    info: WorkloadInfo

    @property
    def name(self) -> str:
        return self.info.name

    @abc.abstractmethod
    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        """Append at least ``n_insts`` records to ``builder``."""

    def init_regions(self) -> List[tuple]:
        """``(label, base, bytes)`` regions the program initialises at start.

        Real programs allocate and write their data structures before
        computing on them, which is what leaves an L2-resident working set
        L2-warm by the time the measured region begins.  Declared here (not
        emitted inside :meth:`_emit`) so :meth:`generate` can skip the init
        phase when the instruction budget is too small to also reach steady
        state — short unit-test traces get the kernels only.
        """
        return []

    def generate(self, n_insts: int = 100_000, seed: int = 0) -> Trace:
        """Build a trace of ~``n_insts`` dynamic instructions.

        The result may slightly exceed ``n_insts`` (generators finish their
        current kernel iteration); it is never shorter.  The data-structure
        init phase (see :meth:`init_regions`) is emitted first when it fits
        within ~45% of the budget; experiments size their warmup window to
        cover it.
        """
        if n_insts < 1:
            raise ValueError("need a positive instruction budget")
        builder = TraceBuilder(name=self.name)
        # zlib.crc32, not hash(): str hashing is salted per process, and the
        # trace must be a pure function of (name, seed) across processes.
        rng = np.random.default_rng(seed ^ zlib.crc32(self.name.encode()))
        regions = self.init_regions()
        init_cost = sum(max(1, nbytes // 32) for _, _, nbytes in regions) * 2.2
        if regions and init_cost <= 0.45 * n_insts:
            for label, base, nbytes in regions:
                emit_init_sweep(builder, rng, label, base, nbytes)
        self._emit(builder, rng, n_insts)
        if len(builder) < n_insts:
            raise AssertionError(f"{self.name} generator under-produced")
        trace = builder.build()
        # A generator finishes its current kernel block, which can overshoot a
        # small budget substantially; cap the excess (cutting a trace mid-block
        # is exactly what interrupting a real program does).
        limit = n_insts + 2048
        return trace.head(limit) if len(trace) > limit else trace


def emit_access_block(
    builder: TraceBuilder,
    rng: np.random.Generator,
    label: str,
    addresses: Iterable[int],
    *,
    store_fraction: float = 0.0,
    ops_per_access: int = 2,
    fp_ops: bool = False,
    branch_every: int = 4,
    branch_taken_rate: float = 0.95,
    n_static_sites: int = 4,
) -> None:
    """Emit one kernel: a loop body walking ``addresses``.

    Per address: a load (or store with probability ``store_fraction``) from
    one of ``n_static_sites`` rotating static PCs, ``ops_per_access`` filler
    ALU ops, and a loop branch every ``branch_every`` accesses whose outcome
    is taken with ``branch_taken_rate`` (0.95 ≈ a predictable loop; lower
    values model data-dependent control flow and feed the mispredict path).

    Local (stack) addresses — those at or above :data:`STACK_BASE`, as
    produced by :func:`mix_local_accesses` — are emitted from their own
    static sites: real code accesses locals through different instructions
    than it accesses data structures, and keeping the pools separate is what
    lets a compiler (and our software-prefetch pass) see the data sites'
    stable strides.
    """
    addresses = list(addresses)
    n = len(addresses)
    if n == 0:
        return
    store_draws = rng.random(n) < store_fraction
    taken_draws = rng.random(n) < branch_taken_rate
    cold_i = 0
    local_i = 0
    for i, addr in enumerate(addresses):
        addr = int(addr)
        if addr >= STACK_BASE:
            site_label = f"{label}.loc{local_i % 2}"
            local_i += 1
        else:
            site_label = f"{label}.d{cold_i % n_static_sites}"
            cold_i += 1
        if store_draws[i]:
            builder.store(f"{site_label}.st", addr)
        else:
            builder.load(f"{site_label}.ld", addr)
        if ops_per_access:
            builder.ops(f"{site_label}.op", ops_per_access, fp=fp_ops)
        if branch_every and i % branch_every == branch_every - 1:
            builder.branch(f"{label}.br", bool(taken_draws[i]))


#: Shared "stack" region: always-hot locals, spills, small temporaries.
STACK_BASE = 0x7F80_0000


def emit_init_sweep(
    builder: TraceBuilder,
    rng: np.random.Generator,
    label: str,
    base: int,
    region_bytes: int,
    line_bytes: int = 32,
) -> None:
    """Emit the benchmark's data-structure initialisation phase.

    Real programs allocate and write their data before computing on it, so
    by the time the measured region starts, an L2-resident structure is
    L2-warm.  One store per cache line, in layout order — the cheapest
    faithful model of ``malloc`` + initialise.  Generators call this first;
    the experiment's warmup window is expected to cover it.
    """
    if region_bytes <= 0:
        raise ValueError("region must be positive")
    lines = max(1, region_bytes // line_bytes)
    taken = rng.random(lines) < 0.98
    for i in range(lines):
        builder.store(f"{label}.init", base + i * line_bytes)
        builder.ops(f"{label}.initop", 1)
        if i % 8 == 7:
            builder.branch(f"{label}.initbr", bool(taken[i]))


def mix_local_accesses(
    rng: np.random.Generator,
    addresses: np.ndarray | list[int],
    local_fraction: float,
    stack_base: int = STACK_BASE,
    slots: int = 96,
    slot_bytes: int = 8,
) -> np.ndarray:
    """Interleave hot stack/local accesses into a cold address plan.

    Real programs spend most of their references on stack frames, spilled
    registers and small temporaries that stay L1-resident; the interesting
    (cold) data structure accesses are a minority.  This helper inserts
    local-slot accesses so that ``local_fraction`` of the resulting plan is
    hot — the knob each workload uses to land near its Table 2 L1 miss rate.
    The hot set spans ``slots * slot_bytes`` bytes (default 768 B ≈ a couple
    of stack frames), far below any L1 size.
    """
    cold = np.asarray(addresses, dtype=np.uint64)
    if not 0.0 <= local_fraction < 1.0:
        raise ValueError("local_fraction must be in [0, 1)")
    n_cold = len(cold)
    if local_fraction == 0.0 or n_cold == 0:
        return cold
    n_local = int(round(n_cold * local_fraction / (1.0 - local_fraction)))
    if n_local == 0:
        return cold
    local = (stack_base + rng.integers(0, slots, n_local) * slot_bytes).astype(np.uint64)
    total = n_cold + n_local
    out = np.empty(total, dtype=np.uint64)
    cold_positions = (np.arange(n_cold, dtype=np.int64) * total) // n_cold
    is_cold = np.zeros(total, dtype=bool)
    is_cold[cold_positions] = True
    out[is_cold] = cold
    out[~is_cold] = local
    return out


class _Registry:
    def __init__(self) -> None:
        self._classes: Dict[str, Type[Workload]] = {}
        self._order: List[str] = []

    def register(self, cls: Type[Workload]) -> Type[Workload]:
        name = cls.info.name
        if name in self._classes:
            raise ValueError(f"duplicate workload {name!r}")
        self._classes[name] = cls
        self._order.append(name)
        return cls

    def names(self) -> List[str]:
        return list(self._order)

    def create(self, name: str) -> Workload:
        try:
            return self._classes[name]()
        except KeyError:
            raise KeyError(f"unknown workload {name!r}; known: {self._order}") from None

    def infos(self) -> List[WorkloadInfo]:
        return [self._classes[n].info for n in self._order]


REGISTRY = _Registry()
register_workload = REGISTRY.register


def get_workload(name: str) -> Workload:
    return REGISTRY.create(name)


def workload_names() -> List[str]:
    """The 10 benchmarks in the paper's Table 2 order."""
    return REGISTRY.names()
