"""``gzip`` — SPEC2000 LZ77 compression (input.graphic).

Deflate reads the input strictly sequentially while probing a 32–64 KB
sliding dictionary for matches: backward jumps of random distance within
the window.  The input file streams once (pure compulsory misses — the
paper's 31.8% L2 miss rate, the highest in Table 2) while the window
enjoys strong reuse in the L2 but thrashes an 8 KB L1.  Figure 2 notes
``gzip`` has the *lowest* prefetch-to-normal traffic ratio (0.29): the
sequential scan is one lone stream, and window probes defeat sequential
prediction.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import lz_window_addresses, strided_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_INPUT_BASE = 0x1800_0000
_INPUT_BYTES = 16 * 1024 * 1024  # streams once, no reuse
_WINDOW_BASE = 0x2800_0000
_WINDOW_BYTES = 64 * 1024
_HASH_BASE = 0x3800_0000


@register_workload
class Gzip(Workload):
    info = WorkloadInfo(
        name="gzip",
        suite="spec2000",
        input_set="input.graphic",
        paper_l1_miss=0.0597,
        paper_l2_miss=0.3176,
        description="sequential input stream + sliding-window match probes",
    )

    def init_regions(self):
        return [("window", _WINDOW_BASE, _WINDOW_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        cursor = 0
        while len(builder) < n_insts:
            # Sequential literal reads from the input stream (no reuse:
            # every line is a compulsory L2 miss, gzip's Table 2 signature).
            stream = strided_addresses(_INPUT_BASE + cursor, 96, 8, wrap=_INPUT_BYTES - cursor - 512)
            emit_access_block(
                builder, rng, "instream", mix_local_accesses(rng, stream, 0.85),
                ops_per_access=2, branch_every=6, branch_taken_rate=0.92, n_static_sites=2,
            )
            cursor = (cursor + 96 * 8) % (_INPUT_BYTES // 2)
            # Dictionary probes: hash-head read then window match loop.
            heads = strided_addresses(_HASH_BASE + (cursor % 4096) * 8, 16, 128, wrap=32 * 1024)
            emit_access_block(
                builder, rng, "hashhead", mix_local_accesses(rng, heads, 0.90),
                ops_per_access=1, branch_every=4, branch_taken_rate=0.85, n_static_sites=2,
            )
            probes = lz_window_addresses(rng, _WINDOW_BASE, _WINDOW_BYTES, 32, match_probability=0.65)
            emit_access_block(
                builder, rng, "window", mix_local_accesses(rng, probes, 0.92),
                store_fraction=0.1, ops_per_access=2,
                branch_every=3, branch_taken_rate=0.78, n_static_sites=3,
            )
