"""``wave5`` — SPEC95 plasma physics (particle-in-cell on a 2-D grid).

Field solves sweep a grid with vertical-neighbour stencils (three streams a
full row apart marching in lockstep), and particle pushes gather from the
cells each particle currently occupies.  The grid is a few megabytes, so
the sweeps stream through both cache levels; the long constant row stride
makes this the heaviest *regular* memory traffic of the suite — the paper
measures the second-highest L1 miss rate (13.9%) with a modest L2 miss
rate (2.1%) since consecutive sweeps reuse the grid.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import gaussian_pointer_chase, stencil_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_GRID_BASE = 0x1600_0000
_ROWS = 96
_COLS = 64
_ELEM = 8  # 48 KB grid: streams past the L1, resident in the L2
_PART_BASE = 0x2600_0000
_PART_BYTES = 32 * 1024


@register_workload
class Wave5(Workload):
    info = WorkloadInfo(
        name="wave5",
        suite="spec95",
        input_set="wave5.in",
        paper_l1_miss=0.1387,
        paper_l2_miss=0.0209,
        description="row-stride stencil sweeps + particle gathers",
    )

    def init_regions(self):
        return [("grid", _GRID_BASE, _ROWS * _COLS * _ELEM), ("part", _PART_BASE, _PART_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        sweep_start = 0
        while len(builder) < n_insts:
            # Field solve: 3-point vertical stencil marching across the grid.
            sweep = stencil_addresses(
                _GRID_BASE + (sweep_start % 4) * _ELEM, _ROWS, _COLS, _ELEM, count=1500
            )
            emit_access_block(
                builder, rng, "fieldsolve", mix_local_accesses(rng, sweep, 0.35),
                store_fraction=0.25, ops_per_access=3, fp_ops=True,
                branch_every=12, branch_taken_rate=0.99, n_static_sites=3,
            )
            # Particle push: scattered gathers from cells particles sit in.
            gathers = gaussian_pointer_chase(
                rng, _PART_BASE, _PART_BYTES, 192, hot_fraction=0.25, hot_probability=0.5
            )
            emit_access_block(
                builder, rng, "partpush", mix_local_accesses(rng, gathers, 0.5),
                store_fraction=0.3, ops_per_access=4, fp_ops=True,
                branch_every=8, branch_taken_rate=0.93,
            )
            sweep_start += 1
