"""``bh`` — Olden Barnes-Hut n-body (2048 bodies).

The real program alternates two phases per timestep: walking an octree to
compute accelerations (pointer chasing with a hot region near the root —
upper tree levels are visited by every body) and updating the body array
(a regular strided sweep with stores).  The tree for 2048 bodies is around
100 KB — larger than the 8 KB L1, comfortably inside the 512 KB L2 — which
is why the paper measures a modest 4.6% L1 miss rate and a near-zero L2
miss rate.  Stride prefetching helps the body sweep and pollutes during
tree walks, making ``bh`` a balanced filter test.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import gaussian_pointer_chase, strided_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_TREE_BASE = 0x1000_0000
_BODY_BASE = 0x2000_0000
_TREE_BYTES = 24 * 1024
_BODY_BYTES = 32 * 1024


@register_workload
class BarnesHut(Workload):
    info = WorkloadInfo(
        name="bh",
        suite="olden",
        input_set="2048 bodies",
        paper_l1_miss=0.0464,
        paper_l2_miss=0.0026,
        description="octree force walk + strided body update",
    )

    def init_regions(self):
        return [("tree", _TREE_BASE, _TREE_BYTES), ("body", _BODY_BASE, _BODY_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        sweep_off = 0
        while len(builder) < n_insts:
            # Phase 1: tree walks — node visits hot near the root, buried in
            # locals (the real walk spends most references on its recursion
            # frames and the body being accelerated).
            walk = gaussian_pointer_chase(
                rng, _TREE_BASE, _TREE_BYTES, count=128, hot_fraction=0.10, hot_probability=0.6
            )
            emit_access_block(
                builder, rng, "treewalk", mix_local_accesses(rng, walk, 0.95),
                ops_per_access=3, fp_ops=True, branch_every=3, branch_taken_rate=0.88,
            )
            # Phase 2: body update — dense strided read/modify/write sweep.
            sweep = strided_addresses(_BODY_BASE + sweep_off, 256, 8, wrap=_BODY_BYTES)
            emit_access_block(
                builder, rng, "bodyupd", mix_local_accesses(rng, sweep, 0.65),
                store_fraction=0.3, ops_per_access=4, fp_ops=True,
                branch_every=8, branch_taken_rate=0.97,
            )
            sweep_off = (sweep_off + 256 * 8) % _BODY_BYTES
