"""``mcf`` — SPEC2000 vehicle-scheduling network simplex (inp.in).

The classic pointer-chasing memory hog: the network's node and arc arrays
span many megabytes, and the simplex iteration walks arc->node->arc
pointer webs with essentially no spatial locality, plus regular price
refresh sweeps over the arc array.  The working set dwarfs the L2
(24.3% L2 miss rate in Table 2) while a hot basis-tree region keeps the
L1 miss rate moderate (6.5%).  Like ``perimeter``, sequential prefetches
into the cold web mostly pollute; the arc sweeps are the redeeming
prefetchable phase.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import gaussian_pointer_chase, linked_list_addresses, strided_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_ARC_BASE = 0x1900_0000
_ARC_BYTES = 640 * 1024
_ARC_REC = 64
_TREE_BASE = 0x2900_0000
_TREE_BYTES = 64 * 1024


@register_workload
class Mcf(Workload):
    info = WorkloadInfo(
        name="mcf",
        suite="spec2000",
        input_set="inp.in",
        paper_l1_miss=0.0648,
        paper_l2_miss=0.2426,
        description="arc-web pointer chase + strided price sweeps",
    )

    def init_regions(self):
        return [("arcs", _ARC_BASE, _ARC_BYTES), ("tree", _TREE_BASE, _TREE_BYTES)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        n_arcs = _ARC_BYTES // _ARC_REC
        sweep_pos = 0
        while len(builder) < n_insts:
            # Basis-tree updates: hot region pointer work.
            tree = gaussian_pointer_chase(
                rng, _TREE_BASE, _TREE_BYTES, 128, hot_fraction=0.15, hot_probability=0.7
            )
            emit_access_block(
                builder, rng, "basis", mix_local_accesses(rng, tree, 0.88),
                store_fraction=0.2, ops_per_access=2,
                branch_every=4, branch_taken_rate=0.86, n_static_sites=4,
            )
            # Pricing: cold pointer chase through the arc web.
            web = linked_list_addresses(rng, _ARC_BASE, n_arcs, _ARC_REC, 96)
            emit_access_block(
                builder, rng, "arcweb", mix_local_accesses(rng, web, 0.96),
                ops_per_access=2, branch_every=3, branch_taken_rate=0.84, n_static_sites=3,
            )
            # Periodic price-refresh sweep over a slice of the arc array.
            sweep = strided_addresses(_ARC_BASE + sweep_pos, 96, _ARC_REC, wrap=_ARC_BYTES - sweep_pos)
            emit_access_block(
                builder, rng, "pricesweep", mix_local_accesses(rng, sweep, 0.75),
                store_fraction=0.5, ops_per_access=1,
                branch_every=16, branch_taken_rate=0.98, n_static_sites=2,
            )
            sweep_pos = (sweep_pos + 96 * _ARC_REC) % (_ARC_BYTES // 2)
