"""``fpppp`` — SPEC95 quantum chemistry (natoms input).

Two-electron integral evaluation: enormous straight-line basic blocks of
floating-point arithmetic over a set of dense work arrays totalling a
couple hundred kilobytes — bigger than any L1, comfortably inside the L2
(the paper's L2 miss rate is 0.03%, essentially zero).  Control flow is
minimal and perfectly predictable; the instruction mix is the most
FP-heavy of the suite.  Repeated passes over the same arrays give the
8 KB L1 its 8.1% miss rate (capacity misses on every pass) while the L2
absorbs everything.
"""

from __future__ import annotations

import numpy as np

from repro.trace.stream import TraceBuilder
from repro.trace.synth import strided_addresses
from repro.workloads.base import (
    Workload,
    WorkloadInfo,
    emit_access_block,
    mix_local_accesses,
    register_workload,
)

_ARRAY_BASE = 0x1400_0000
_N_ARRAYS = 4
_ARRAY_BYTES = 12 * 1024  # 4 x 12KB = 48KB working set, L2-resident
_ELEM = 8


@register_workload
class Fpppp(Workload):
    info = WorkloadInfo(
        name="fpppp",
        suite="spec95",
        input_set="natoms.in",
        paper_l1_miss=0.0807,
        paper_l2_miss=0.0003,
        description="dense FP sweeps over an L2-resident working set",
    )

    def init_regions(self):
        return [(f"arr{a}", _ARRAY_BASE + a * 0x0100_4000, _ARRAY_BYTES) for a in range(_N_ARRAYS)]

    def _emit(self, builder: TraceBuilder, rng: np.random.Generator, n_insts: int) -> None:
        offset = 0
        while len(builder) < n_insts:
            for a in range(_N_ARRAYS):
                base = _ARRAY_BASE + a * 0x0100_4000 + (offset % 8) * _ELEM  # staggered: arrays hit distinct L2 sets
                # Dense 8-byte-stride sweep; integral temporaries stay local.
                sweep = strided_addresses(base, 768, _ELEM, wrap=_ARRAY_BYTES)
                emit_access_block(
                    builder, rng, f"integral{a}", mix_local_accesses(rng, sweep, 0.70),
                    store_fraction=0.15, ops_per_access=4, fp_ops=True,
                    branch_every=32, branch_taken_rate=0.995, n_static_sites=8,
                )
                if len(builder) >= n_insts:
                    return
            offset += 1
