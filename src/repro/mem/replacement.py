"""Cache victim-selection policies.

A policy sees only per-set metadata (validity and the recency stamps the
cache maintains) and returns the way to evict.  The default machine is
direct-mapped L1 / LRU L2 as in the paper; FIFO and random exist for
ablations and for the fully-associative prefetch buffer.
"""

from __future__ import annotations

import abc

import numpy as np


class ReplacementPolicy(abc.ABC):
    """Chooses a victim way within one cache set."""

    name = "abstract"

    @abc.abstractmethod
    def victim(self, valid_row: np.ndarray, stamp_row: np.ndarray) -> int:
        """Return the way index to evict from a full set.

        ``valid_row``/``stamp_row`` are the set's per-way metadata; the cache
        guarantees the set is full when this is called (invalid ways are
        allocated without consulting the policy).
        """

    def on_access(self, stamp_row: np.ndarray, way: int, now: int) -> None:
        """Metadata update on a hit (default: refresh the recency stamp)."""
        stamp_row[way] = now

    def on_fill(self, stamp_row: np.ndarray, way: int, now: int) -> None:
        """Metadata update on a fill."""
        stamp_row[way] = now


class LRUPolicy(ReplacementPolicy):
    """Evict the least-recently-used way (stamps refreshed on every access)."""

    name = "lru"

    def victim(self, valid_row: np.ndarray, stamp_row: np.ndarray) -> int:
        return int(np.argmin(stamp_row))


class FIFOPolicy(ReplacementPolicy):
    """Evict the oldest fill; hits do not refresh the stamp."""

    name = "fifo"

    def victim(self, valid_row: np.ndarray, stamp_row: np.ndarray) -> int:
        return int(np.argmin(stamp_row))

    def on_access(self, stamp_row: np.ndarray, way: int, now: int) -> None:
        pass  # insertion order only


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way (deterministic given the seed)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def victim(self, valid_row: np.ndarray, stamp_row: np.ndarray) -> int:
        return int(self._rng.integers(0, len(valid_row)))

    def on_access(self, stamp_row: np.ndarray, way: int, now: int) -> None:
        pass


_POLICIES = {"lru": LRUPolicy, "fifo": FIFOPolicy, "random": RandomPolicy}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by name (``lru``, ``fifo``, ``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}") from None
    if cls is RandomPolicy:
        return RandomPolicy(seed)
    return cls()
