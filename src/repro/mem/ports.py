"""L1 cache-port arbitration.

The paper's Figure 3 shows the prefetch queue *contending with normal L1
memory references* for the L1 ports; Section 5.4 sweeps the port count.
All ports are universal (the paper's footnote 1).

The arbiter keeps a next-free timestamp per port.  A demand access takes
the earliest port even if it must wait; a prefetch is only granted a port
that is already idle at (or before) the requested cycle — demand traffic
therefore has strict priority, and a saturated L1 starves the prefetch
queue, which is exactly the "procrastinated prefetches turn good into bad"
effect of Section 5.4.
"""

from __future__ import annotations

from repro.common.stats import StatGroup


class PortArbiter:
    """Tracks per-port availability over monotone-ish timestamps."""

    def __init__(self, num_ports: int, stats: StatGroup | None = None) -> None:
        if num_ports < 1:
            raise ValueError("need at least one port")
        self.num_ports = num_ports
        self._next_free = [0] * num_ports
        self.stats = stats if stats is not None else StatGroup("ports")

    def _earliest(self) -> int:
        best, best_t = 0, self._next_free[0]
        for i in range(1, self.num_ports):
            t = self._next_free[i]
            if t < best_t:
                best, best_t = i, t
        return best

    def acquire_demand(self, when: int) -> int:
        """Grant a port to a demand access; returns the grant cycle (>= when)."""
        port = self._earliest()
        grant = max(when, self._next_free[port])
        self._next_free[port] = grant + 1
        wait = grant - when
        self.stats.bump("demand_grants")
        if wait:
            self.stats.bump("demand_wait_cycles", wait)
        return grant

    def try_acquire_prefetch(self, when: int) -> int | None:
        """Grant a port to a prefetch only if one is idle at ``when``.

        Returns the grant cycle or None when every port is busy — the
        prefetch stays queued and retries later.
        """
        port = self._earliest()
        if self._next_free[port] > when:
            self.stats.bump("prefetch_denied")
            return None
        self._next_free[port] = when + 1
        self.stats.bump("prefetch_grants")
        return when

    def earliest_free(self) -> int:
        """First cycle at which any port is idle (queue-drain scheduling)."""
        return min(self._next_free)

    def reset(self) -> None:
        self._next_free = [0] * self.num_ports
