"""L1 cache-port arbitration.

The paper's Figure 3 shows the prefetch queue *contending with normal L1
memory references* for the L1 ports; Section 5.4 sweeps the port count.
All ports are universal (the paper's footnote 1).

The arbiter keeps a next-free timestamp per port.  A demand access takes
the earliest port even if it must wait; a prefetch is only granted a port
that is already idle at (or before) the requested cycle — demand traffic
therefore has strict priority, and a saturated L1 starves the prefetch
queue, which is exactly the "procrastinated prefetches turn good into bad"
effect of Section 5.4.
"""

from __future__ import annotations

from repro.common.stats import StatGroup


class PortArbiter:
    """Tracks per-port availability over monotone-ish timestamps.

    Event counts are batched in integer attributes and folded into the
    stats dict lazily through the group's flush hook (one arbitration per
    memory instruction makes this one of the hottest counter sites).
    """

    def __init__(self, num_ports: int, stats: StatGroup | None = None) -> None:
        if num_ports < 1:
            raise ValueError("need at least one port")
        self.num_ports = num_ports
        self._next_free = [0] * num_ports
        self.stats = stats if stats is not None else StatGroup("ports")
        self._n_demand = 0
        self._n_wait = 0
        self._n_denied = 0
        self._n_prefetch = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        if self._n_demand:
            c["demand_grants"] = c.get("demand_grants", 0) + self._n_demand
            self._n_demand = 0
        if self._n_wait:
            c["demand_wait_cycles"] = c.get("demand_wait_cycles", 0) + self._n_wait
            self._n_wait = 0
        if self._n_denied:
            c["prefetch_denied"] = c.get("prefetch_denied", 0) + self._n_denied
            self._n_denied = 0
        if self._n_prefetch:
            c["prefetch_grants"] = c.get("prefetch_grants", 0) + self._n_prefetch
            self._n_prefetch = 0

    def acquire_demand(self, when: int) -> int:
        """Grant a port to a demand access; returns the grant cycle (>= when)."""
        free = self._next_free
        port, best_t = 0, free[0]
        for i in range(1, self.num_ports):
            t = free[i]
            if t < best_t:
                port, best_t = i, t
        grant = when if when >= best_t else best_t
        free[port] = grant + 1
        self._n_demand += 1
        self._n_wait += grant - when
        return grant

    def try_acquire_prefetch(self, when: int) -> int | None:
        """Grant a port to a prefetch only if one is idle at ``when``.

        Returns the grant cycle or None when every port is busy — the
        prefetch stays queued and retries later.
        """
        free = self._next_free
        port, best_t = 0, free[0]
        for i in range(1, self.num_ports):
            t = free[i]
            if t < best_t:
                port, best_t = i, t
        if best_t > when:
            self._n_denied += 1
            return None
        free[port] = when + 1
        self._n_prefetch += 1
        return when

    def earliest_free(self) -> int:
        """First cycle at which any port is idle (queue-drain scheduling)."""
        return min(self._next_free)

    def validate(self) -> None:
        """Sanitizer audit: exactly ``num_ports`` grant slots, none negative.

        Per-cycle grants cannot exceed the port count *by construction*
        only while the ``_next_free`` vector stays one entry per port;
        this is the structural check behind "port grants <= ports".
        """
        from repro.sanitize import SanitizerViolation

        if len(self._next_free) != self.num_ports:
            raise SanitizerViolation(
                "ports",
                f"{len(self._next_free)} grant slots for {self.num_ports} "
                "ports: more grants per cycle than physical ports",
                snapshot={"slots": len(self._next_free), "num_ports": self.num_ports},
            )
        for port, t in enumerate(self._next_free):
            if t < 0:
                raise SanitizerViolation(
                    "ports",
                    f"port {port} next-free timestamp {t} is negative",
                    snapshot={"next_free": list(self._next_free)},
                )

    def reset(self) -> None:
        self._next_free = [0] * self.num_ports
