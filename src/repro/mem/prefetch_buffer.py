"""Dedicated fully-associative prefetch buffer (paper Section 5.5).

Chen et al.'s alternative to prefetching into the L1: prefetched lines land
in a small fully-associative buffer probed alongside the L1.  A demand hit
in the buffer *promotes* the line into the L1 (it was useful); a line pushed
out of the buffer unreferenced was a bad prefetch.  The paper evaluates a
16-entry buffer and finds it *hurts* when combined with the pollution
filters — this module exists to reproduce Figures 15 and 16.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.stats import StatGroup
from repro.mem.cache import FillSource


@dataclass(frozen=True)
class BufferedLine:
    line_addr: int
    trigger_pc: int
    source: FillSource
    referenced: bool


class PrefetchBuffer:
    """Small fully-associative FIFO buffer for prefetched lines."""

    def __init__(self, entries: int, stats: StatGroup | None = None) -> None:
        if entries < 1:
            raise ValueError("prefetch buffer needs at least one entry")
        self.capacity = entries
        self._lines: "OrderedDict[int, BufferedLine]" = OrderedDict()
        self.stats = stats if stats is not None else StatGroup("prefetch_buffer")

    def __len__(self) -> int:
        return len(self._lines)

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def insert(self, line_addr: int, trigger_pc: int, source: FillSource) -> BufferedLine | None:
        """Add a prefetched line; returns the displaced line, if any.

        The displaced line's ``referenced`` flag is the buffer-side RIB the
        classifier consumes.  Re-inserting a resident line refreshes it.
        """
        if line_addr in self._lines:
            self._lines.move_to_end(line_addr)
            self.stats.bump("duplicate_insert")
            return None
        victim: BufferedLine | None = None
        if len(self._lines) >= self.capacity:
            _, victim = self._lines.popitem(last=False)
            self.stats.bump("evicted_used" if victim.referenced else "evicted_unused")
        self._lines[line_addr] = BufferedLine(line_addr, trigger_pc, source, referenced=False)
        self.stats.bump("inserts")
        return victim

    def demand_probe(self, line_addr: int) -> BufferedLine | None:
        """Probe on a demand access; a hit removes and returns the line.

        Removal models promotion into the L1 (the caller performs the fill).
        """
        line = self._lines.pop(line_addr, None)
        if line is None:
            self.stats.bump("probe_miss")
            return None
        self.stats.bump("probe_hit")
        return BufferedLine(line.line_addr, line.trigger_pc, line.source, referenced=True)

    def drain(self) -> list[BufferedLine]:
        """Empty the buffer (end of run), returning residents for classification."""
        out = list(self._lines.values())
        self._lines.clear()
        return out
