"""Vector-friendly cache-address arithmetic.

The scalar per-access helpers live on :class:`~repro.common.config
.CacheConfig` (``line_address`` / ``set_index``); this module provides the
same decomposition as whole-array numpy kernels, so batch engines can strip
offsets and split set/tag for an entire trace chunk in a handful of
vectorised operations instead of a Python call per access.

All functions take byte- or line-address arrays of dtype ``uint64`` (other
integer dtypes are converted) and return ``uint64`` arrays.  They are
element-for-element identical to the scalar ``CacheConfig`` methods — the
vector engine's parity against the pipeline engine depends on that, and
``tests/test_vector_engine.py`` locks it in.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common.config import CacheConfig


def line_addresses(byte_addrs: np.ndarray, config: CacheConfig) -> np.ndarray:
    """Strip the line-offset bits from an array of byte addresses."""
    a = np.ascontiguousarray(byte_addrs, dtype=np.uint64)
    return a >> np.uint64(config.offset_bits)


def set_indices(line_addrs: np.ndarray, config: CacheConfig) -> np.ndarray:
    """Set index of each line address (power-of-two set count assumed)."""
    a = np.ascontiguousarray(line_addrs, dtype=np.uint64)
    return a & np.uint64(config.num_sets - 1)


def decompose(byte_addrs: np.ndarray, config: CacheConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Batch line/set decomposition: ``(line_addresses, set_indices)``.

    The full line address doubles as the tag (the caches store whole line
    addresses rather than truncated tags), so no third component is needed.
    """
    lines = line_addresses(byte_addrs, config)
    return lines, set_indices(lines, config)


def allocate_flat_cache(
    config: CacheConfig,
    flags: Tuple[str, ...] = (),
    extra: Tuple[str, ...] = (),
) -> dict:
    """Flat array-of-ways cache state for the compiled engine tiers.

    One slot per way, set-major: way ``w`` of set ``s`` lives at index
    ``s * ways + w``, so a kernel reaches a set with
    ``(line & (num_sets - 1)) * ways`` — the layout documented in
    ``docs/architecture.md`` ("Engine tiers").  Returns a dict with

    * ``tag``   — int64, the full line address, ``-1`` = invalid way;
    * ``stamp`` — int64 LRU timestamp (memory-op index, not cycles);
    * one uint8 array per name in ``flags`` (e.g. dirty/PIB/RIB bits);
    * one int64 array per name in ``extra`` (e.g. trigger PC, filter
      index), for per-line metadata wider than a flag.
    """
    n = config.num_sets * config.ways
    out = {"tag": np.full(n, -1, dtype=np.int64), "stamp": np.zeros(n, dtype=np.int64)}
    for name in flags:
        out[name] = np.zeros(n, dtype=np.uint8)
    for name in extra:
        out[name] = np.zeros(n, dtype=np.int64)
    return out
