"""Set-associative cache with the paper's PIB/RIB tag bits.

Beyond an ordinary cache, every line carries the two control bits the
pollution filter's feedback path needs (paper Section 4):

* **PIB** (Prefetch Indication Bit) — set when the line was brought in by a
  prefetch rather than a demand miss;
* **RIB** (Reference Indication Bit) — set when a prefetched line is later
  referenced by a demand access; only meaningful while PIB is set.

Each prefetched line additionally remembers *which prefetcher* filled it and
the *trigger PC*, so that at eviction time the (address, PC, RIB) triple can
be handed to the pollution filter and the good/bad classifier — exactly the
feedback loop of Figure 3.  A per-line ``nsp_tag`` bit is exposed for the
Next-Sequence Prefetcher (the tag bit of tagged sequential prefetching).

Implementation note: line metadata lives in plain Python lists (one
``_Line`` record per way), not numpy arrays — the simulator makes hundreds
of thousands of single-line probes per run, and scalar indexing into numpy
arrays is several times slower than attribute access on small objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterator, List, Optional

from repro.common.config import CacheConfig
from repro.common.stats import StatGroup
from repro.mem.replacement import ReplacementPolicy, make_policy


class FillSource(enum.IntEnum):
    """Who brought a line into the cache."""

    DEMAND = 0
    NSP = 1
    SDP = 2
    SOFTWARE = 3
    STRIDE = 4

    @property
    def is_prefetch(self) -> bool:
        return self is not FillSource.DEMAND


@dataclass(frozen=True, slots=True)
class EvictedLine:
    """Everything the filter/classifier needs to know about an eviction."""

    line_addr: int
    dirty: bool
    pib: bool
    rib: bool
    trigger_pc: int
    source: FillSource


#: Signature of the eviction observer wired in by the simulator.
EvictionCallback = Callable[[EvictedLine], None]


class _Line:
    """One cache way's state (mutable, slot-limited for speed)."""

    __slots__ = ("tag", "valid", "dirty", "pib", "rib", "nsp_tag", "source", "trigger_pc", "stamp")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.pib = False
        self.rib = False
        self.nsp_tag = False
        self.source = 0
        self.trigger_pc = 0
        self.stamp = 0

    def evict_record(self) -> EvictedLine:
        return EvictedLine(
            line_addr=self.tag,
            dirty=self.dirty,
            pib=self.pib,
            rib=self.rib,
            trigger_pc=self.trigger_pc,
            source=FillSource(self.source),
        )


class Cache:
    """One cache level with prefetch bookkeeping bits."""

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        policy: ReplacementPolicy | str | None = None,
        stats: StatGroup | None = None,
    ) -> None:
        self.config = config
        self.name = name
        if policy is None:
            policy = make_policy("lru")
        elif isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy
        self.stats = stats if stats is not None else StatGroup(name)

        self._num_sets = config.num_sets
        self._ways = config.ways
        self._set_mask = self._num_sets - 1
        self._offset_bits = config.offset_bits
        self._occupancy = 0
        self.on_evict: Optional[EvictionCallback] = None
        # Policy fast paths, resolved once.
        from repro.mem.replacement import FIFOPolicy, LRUPolicy

        self._refresh_on_access = isinstance(policy, LRUPolicy)
        self._min_stamp_victim = isinstance(policy, (LRUPolicy, FIFOPolicy))
        # Hot-path event counts are batched in plain integer attributes and
        # folded into the stats dict lazily (flush hook): the cache is
        # probed once or twice per memory instruction, and string-keyed
        # dict arithmetic per event dominates otherwise.
        self._n_read_hit = 0
        self._n_read_miss = 0
        self._n_write_hit = 0
        self._n_write_miss = 0
        self._n_first_use = 0
        self._n_duplicate_fill = 0
        self._n_evictions = 0
        self._n_evicted_used = 0
        self._n_evicted_unused = 0
        self._n_prefetch_fill = 0
        self._n_demand_fill = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        for key, attr in (
            ("demand_read_hit", "_n_read_hit"),
            ("demand_read_miss", "_n_read_miss"),
            ("demand_write_hit", "_n_write_hit"),
            ("demand_write_miss", "_n_write_miss"),
            ("prefetched_line_first_use", "_n_first_use"),
            ("duplicate_fill", "_n_duplicate_fill"),
            ("evictions", "_n_evictions"),
            ("evicted_prefetched_used", "_n_evicted_used"),
            ("evicted_prefetched_unused", "_n_evicted_unused"),
            ("prefetch_fill", "_n_prefetch_fill"),
            ("demand_fill", "_n_demand_fill"),
        ):
            pending = getattr(self, attr)
            if pending:
                c[key] = c.get(key, 0) + pending
                setattr(self, attr, 0)

    @cached_property
    def sets(self) -> List[List[_Line]]:
        """The object-model line array, built on first touch.

        The batch engine tiers (vector, kernel) keep their own flat-array
        cache state and never probe these lines, so a large L2's ~10^5
        ``_Line`` objects would be pure construction waste there.  After
        the first access this is a plain instance attribute (that is how
        ``cached_property`` stores its result), so the pipeline's per-
        access cost is unchanged."""
        return [[_Line() for _ in range(self._ways)] for _ in range(self._num_sets)]

    # ------------------------------------------------------------------
    # Address plumbing
    # ------------------------------------------------------------------
    def line_address(self, byte_address: int) -> int:
        return byte_address >> self._offset_bits

    def _find(self, line_addr: int) -> Optional[_Line]:
        for line in self.sets[line_addr & self._set_mask]:
            if line.valid and line.tag == line_addr:
                return line
        return None

    # ------------------------------------------------------------------
    # Queries (no side effects)
    # ------------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        return self._find(line_addr) is not None

    def probe_bits(self, line_addr: int) -> tuple[bool, bool, bool] | None:
        """(pib, rib, nsp_tag) of a resident line, else None."""
        line = self._find(line_addr)
        if line is None:
            return None
        return line.pib, line.rib, line.nsp_tag

    @property
    def occupancy(self) -> int:
        return self._occupancy

    # ------------------------------------------------------------------
    # Invariant audit (sanitizer hook)
    # ------------------------------------------------------------------
    def _snapshot_line(self, set_index: int, way: int) -> dict:
        line = self.sets[set_index][way]
        return {
            "set": set_index,
            "way": way,
            "tag": line.tag,
            "valid": line.valid,
            "pib": line.pib,
            "rib": line.rib,
            "source": line.source,
            "trigger_pc": line.trigger_pc,
        }

    def validate(self) -> None:
        """Audit every resident line against the paper's tag-bit invariants.

        Checked: tag-to-set consistency, per-set tag uniqueness, PIB <=>
        prefetch fill source, RIB => PIB (a referenced bit is only
        meaningful on a prefetched line), and the batched occupancy
        counter against the per-line truth.  Raises
        :class:`~repro.sanitize.SanitizerViolation` on the first failure.
        """
        from repro.sanitize import SanitizerViolation

        resident = 0
        for set_index, entries in enumerate(self.sets):
            seen_tags = set()
            for way, line in enumerate(entries):
                if not line.valid:
                    continue
                resident += 1
                site = f"{self.name}.set{set_index}.way{way}"
                snap = lambda: self._snapshot_line(set_index, way)
                if line.tag < 0 or (line.tag & self._set_mask) != set_index:
                    raise SanitizerViolation(
                        site,
                        f"tag {line.tag:#x} does not map to set {set_index} "
                        f"(mask {self._set_mask:#x}): frame/tag desync",
                        snapshot=snap(),
                    )
                if line.tag in seen_tags:
                    raise SanitizerViolation(
                        site,
                        f"duplicate tag {line.tag:#x} in set {set_index}: "
                        "the same line is resident in two ways",
                        snapshot=snap(),
                    )
                seen_tags.add(line.tag)
                try:
                    is_prefetch = FillSource(line.source).is_prefetch
                except ValueError:
                    raise SanitizerViolation(
                        site,
                        f"fill source {line.source} is not a known FillSource",
                        snapshot=snap(),
                    ) from None
                if line.pib != is_prefetch:
                    raise SanitizerViolation(
                        site,
                        f"PIB={line.pib} disagrees with fill source "
                        f"{FillSource(line.source).name}: prefetch lineage lost",
                        snapshot=snap(),
                    )
                if line.rib and not line.pib:
                    raise SanitizerViolation(
                        site,
                        "RIB set on a line without PIB: referenced bit "
                        "without prefetch lineage",
                        snapshot=snap(),
                    )
        if resident != self._occupancy:
            raise SanitizerViolation(
                f"{self.name}.occupancy",
                f"occupancy counter {self._occupancy} != {resident} resident "
                "lines: batched counter desynced from per-line truth",
                snapshot={"occupancy": self._occupancy, "resident": resident},
            )

    # ------------------------------------------------------------------
    # Demand access
    # ------------------------------------------------------------------
    def access(self, line_addr: int, is_write: bool, now: int) -> tuple[bool, bool]:
        """Demand reference; returns ``(hit, first_use_of_prefetched_line)``.

        On a hit to a prefetched line the RIB is set (the prefetch proved
        useful) — this is the paper's feedback-collection mechanism.  The
        second flag is True only on the *first* such reference, which is the
        SDP confirmation-bit signal.
        """
        line = self._find(line_addr)
        if line is None:
            if is_write:
                self._n_write_miss += 1
            else:
                self._n_read_miss += 1
            return False, False
        if is_write:
            self._n_write_hit += 1
        else:
            self._n_read_hit += 1
        first_use = line.pib and not line.rib
        if first_use:
            line.rib = True
            self._n_first_use += 1
        if is_write:
            line.dirty = True
        if self._refresh_on_access:
            line.stamp = now  # LRU recency; FIFO/random keep insertion order
        return True, first_use

    def consume_nsp_tag(self, line_addr: int) -> bool:
        """Read-and-clear the NSP tag bit of a resident line.

        Returns True when the bit was set (the NSP trigger condition on a
        hit); clearing implements one-shot tagged sequential prefetching.
        """
        line = self._find(line_addr)
        if line is None or not line.nsp_tag:
            return False
        line.nsp_tag = False
        return True

    # ------------------------------------------------------------------
    # Fills and evictions
    # ------------------------------------------------------------------
    def fill(
        self,
        line_addr: int,
        now: int,
        source: FillSource = FillSource.DEMAND,
        trigger_pc: int = 0,
        nsp_tag: bool = False,
        dirty: bool = False,
    ) -> Optional[EvictedLine]:
        """Bring a line in, evicting a victim if the set is full.

        Returns the eviction record (also delivered to ``on_evict``), or
        None when an invalid way absorbed the fill.  Filling a line that is
        already resident refreshes its metadata instead of duplicating it.
        """
        entries = self.sets[line_addr & self._set_mask]
        victim_slot: Optional[_Line] = None
        for line in entries:
            if line.valid and line.tag == line_addr:
                # Duplicate fill: refresh recency, never downgrade demand->prefetch.
                line.stamp = now
                if dirty:
                    line.dirty = True
                self._n_duplicate_fill += 1
                return None
            if victim_slot is None and not line.valid:
                victim_slot = line

        evicted: Optional[EvictedLine] = None
        if victim_slot is None:
            if self._min_stamp_victim:
                # LRU and FIFO both evict the minimum stamp (access refresh
                # is the only difference, handled in access()).
                best = entries[0]
                for line in entries[1:]:
                    if line.stamp < best.stamp:
                        best = line
                victim_slot = best
            else:
                import numpy as np

                stamps = np.array([ln.stamp for ln in entries])
                valid = np.array([ln.valid for ln in entries])
                victim_slot = entries[self.policy.victim(valid, stamps)]
            evicted = victim_slot.evict_record()
            self._occupancy -= 1
            self._n_evictions += 1
            if evicted.pib:
                if evicted.rib:
                    self._n_evicted_used += 1
                else:
                    self._n_evicted_unused += 1
            if self.on_evict is not None:
                self.on_evict(evicted)

        victim_slot.tag = line_addr
        victim_slot.valid = True
        victim_slot.dirty = dirty
        victim_slot.pib = source.is_prefetch
        victim_slot.rib = False
        victim_slot.nsp_tag = nsp_tag
        victim_slot.source = int(source)
        victim_slot.trigger_pc = trigger_pc
        victim_slot.stamp = now
        self._occupancy += 1
        if source.is_prefetch:
            self._n_prefetch_fill += 1
        else:
            self._n_demand_fill += 1
        return evicted

    def invalidate(self, line_addr: int) -> Optional[EvictedLine]:
        """Remove a line (no eviction callback; used for moves, not pressure)."""
        line = self._find(line_addr)
        if line is None:
            return None
        record = line.evict_record()
        line.valid = False
        line.tag = -1
        self._occupancy -= 1
        return record

    def flush(self) -> Iterator[EvictedLine]:
        """Drain every resident line, yielding eviction records.

        Used at end of simulation so prefetched-but-still-resident lines get
        classified exactly once (callback also fires, matching real evicts).
        """
        for entries in self.sets:
            for line in entries:
                if not line.valid:
                    continue
                record = line.evict_record()
                line.valid = False
                line.tag = -1
                self._occupancy -= 1
                if self.on_evict is not None:
                    self.on_evict(record)
                yield record
