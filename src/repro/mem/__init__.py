"""Memory-hierarchy substrate: caches, MSHRs, ports, bus, prefetch buffer.

This package implements the machine's data-side memory system from scratch:

* :mod:`repro.mem.replacement` — victim-selection policies,
* :mod:`repro.mem.cache` — a set-associative cache with the paper's per-line
  PIB/RIB bits and eviction callbacks,
* :mod:`repro.mem.mshr` — miss-status holding registers (duplicate-miss
  merging, bounded outstanding misses),
* :mod:`repro.mem.ports` — the L1 port arbiter that demand accesses and the
  prefetch queue contend on,
* :mod:`repro.mem.bus` — traffic accounting and bandwidth occupancy,
* :mod:`repro.mem.prefetch_buffer` — the dedicated fully-associative prefetch
  buffer evaluated in Section 5.5,
* :mod:`repro.mem.hierarchy` — the L1 + L2 + memory composition the core
  timing model talks to.
"""

from repro.mem.bus import Bus, TransferKind
from repro.mem.cache import Cache, EvictedLine, FillSource
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.mem.mshr import MSHRFile
from repro.mem.ports import PortArbiter
from repro.mem.prefetch_buffer import PrefetchBuffer
from repro.mem.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "Bus",
    "Cache",
    "EvictedLine",
    "FIFOPolicy",
    "FillSource",
    "LRUPolicy",
    "MSHRFile",
    "MemoryHierarchy",
    "PortArbiter",
    "PrefetchBuffer",
    "RandomPolicy",
    "ReplacementPolicy",
    "TransferKind",
    "make_policy",
]
