"""Miss Status Holding Registers.

The MSHR file bounds the number of outstanding line fills and merges
secondary misses: a demand access to a line whose fill is already in flight
waits only for the remaining latency instead of starting a new memory
transaction.  This is also how a *late* prefetch partially hides latency —
the demand miss merges into the prefetch's MSHR entry.

Because the timing model is timestamp-ordered rather than cycle-stepped,
entries are pruned lazily: an entry whose ready time has passed is dead and
is removed the next time the file is consulted at a later timestamp.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.stats import StatGroup


class MSHRFile:
    """Bounded map of line address -> fill-ready timestamp."""

    def __init__(self, entries: int, stats: StatGroup | None = None) -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = entries
        self._pending: Dict[int, int] = {}
        #: earliest ready time among pending entries; lets _prune skip the
        #: dict scan when nothing can have completed yet (the common case).
        self._min_ready = 0
        self.stats = stats if stats is not None else StatGroup("mshr")
        self._n_merged = 0
        self._n_stall = 0
        self._n_stall_cycles = 0
        self._n_allocated = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        for key, attr in (
            ("merged", "_n_merged"),
            ("structural_stall", "_n_stall"),
            ("structural_stall_cycles", "_n_stall_cycles"),
            ("allocated", "_n_allocated"),
        ):
            pending = getattr(self, attr)
            if pending:
                c[key] = c.get(key, 0) + pending
                setattr(self, attr, 0)

    def __len__(self) -> int:
        return len(self._pending)

    def _prune(self, now: int) -> None:
        if not self._pending or now < self._min_ready:
            return
        done = [line for line, ready in self._pending.items() if ready <= now]
        for line in done:
            del self._pending[line]
        self._min_ready = min(self._pending.values()) if self._pending else 0

    def free_slots(self, now: int) -> int:
        """Entries available at time ``now`` (after pruning finished fills)."""
        self._prune(now)
        return self.capacity - len(self._pending)

    def pending_ready(self, line_addr: int, now: int) -> Optional[int]:
        """Ready time of an in-flight fill for ``line_addr``, if any."""
        ready = self._pending.get(line_addr)
        if ready is None or ready <= now:
            return None
        return ready

    def allocate(self, line_addr: int, ready: int, now: int) -> tuple[int, bool]:
        """Register a fill completing at ``ready``; returns (ready, stalled).

        When the file is full, the request cannot start until the earliest
        existing entry retires (structural hazard): the fill is delayed by
        that wait and ``stalled`` is reported so the core can apply
        backpressure (a stalled store blocks retirement like a load, which
        is what stops runaway streams from allocating unboundedly).
        Allocating a line that is already pending merges into the existing
        entry (keeping the earlier ready time).
        """
        self._prune(now)
        existing = self._pending.get(line_addr)
        if existing is not None:
            self._n_merged += 1
            if ready < existing:
                self._pending[line_addr] = ready
                if ready < self._min_ready:
                    self._min_ready = ready
                return ready, False
            return existing, False
        stalled = False
        if len(self._pending) >= self.capacity:
            earliest = min(self._pending.values())
            stall = max(0, earliest - now)
            ready += stall
            stalled = True
            self._n_stall += 1
            self._n_stall_cycles += stall
            # The earliest entry has retired by `earliest`; reuse its slot.
            for line, r in list(self._pending.items()):
                if r == earliest:
                    del self._pending[line]
                    break
            self._min_ready = min(self._pending.values()) if self._pending else 0
        self._pending[line_addr] = ready
        if len(self._pending) == 1 or ready < self._min_ready:
            self._min_ready = ready
        self._n_allocated += 1
        return ready, stalled

    def validate(self, now: int = 0) -> None:
        """Sanitizer audit: occupancy <= capacity, min-ready lower bound.

        ``_min_ready`` must never exceed the true minimum — a stale-high
        bound would make :meth:`_prune` skip completed entries forever,
        silently shrinking the effective file and inventing structural
        stalls.
        """
        from repro.sanitize import SanitizerViolation

        if len(self._pending) > self.capacity:
            raise SanitizerViolation(
                "mshr",
                f"{len(self._pending)} entries in flight exceed the "
                f"{self.capacity}-entry file",
                snapshot={"pending": len(self._pending), "capacity": self.capacity},
            )
        if self._pending:
            true_min = min(self._pending.values())
            if self._min_ready > true_min:
                raise SanitizerViolation(
                    "mshr",
                    f"min-ready bound {self._min_ready} exceeds true minimum "
                    f"{true_min}: pruning would skip completed fills",
                    snapshot={"min_ready": self._min_ready, "true_min": true_min, "now": now},
                )

    def clear(self) -> None:
        self._pending.clear()
        self._min_ready = 0
