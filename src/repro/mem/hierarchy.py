"""L1 + L2 + memory composition — the data-side machine the core talks to.

State changes (fills, evictions) are applied eagerly while *timing* is
carried by timestamps: every access returns the cycle at which its data is
available, computed from cache latencies, MSHR merging, and memory-bus
occupancy.  Demand accesses and prefetches share the L1 ports through the
:class:`~repro.mem.ports.PortArbiter` (demand has priority) and share the
memory bus (prefetch traffic delays demand fills), which are the two
contention effects the paper's evaluation turns on.

Prefetches normally fill straight into the L1 (the paper's default design,
Figure 3); with :class:`~repro.mem.prefetch_buffer.PrefetchBuffer` enabled
they land in the buffer instead and are promoted to the L1 on first use
(the Section 5.5 alternative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.config import HierarchyConfig, PrefetchBufferConfig
from repro.common.stats import StatGroup
from repro.mem.bus import Bus, TransferKind
from repro.mem.cache import Cache, EvictedLine, FillSource
from repro.mem.mshr import MSHRFile
from repro.mem.ports import PortArbiter
from repro.mem.prefetch_buffer import BufferedLine, PrefetchBuffer


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one demand access, consumed by the timing engine."""

    line_addr: int
    grant: int
    complete: int
    l1_hit: bool
    l2_hit: Optional[bool]
    merged: bool
    nsp_tag_hit: bool
    buffer_hit: bool
    first_use_prefetched: bool = False
    #: the miss hit a full MSHR file; the core must apply backpressure
    mshr_stalled: bool = False

    @property
    def latency(self) -> int:
        return self.complete - self.grant


@dataclass(frozen=True, slots=True)
class PrefetchOutcome:
    """Outcome of one prefetch issued to the hierarchy."""

    line_addr: int
    complete: int
    l2_hit: bool


#: Observer for prefetch-buffer evictions (classification feedback path).
BufferEvictCallback = Callable[[BufferedLine], None]


class MemoryHierarchy:
    def __init__(
        self,
        config: HierarchyConfig,
        stats: StatGroup | None = None,
        buffer_config: PrefetchBufferConfig | None = None,
    ) -> None:
        self.config = config
        root = stats if stats is not None else StatGroup("mem")
        self.stats = root
        self.l1 = Cache(config.l1, "l1", policy="lru", stats=root["l1"])
        self.l2 = Cache(config.l2, "l2", policy="lru", stats=root["l2"])
        self.mshr = MSHRFile(config.mshr_entries, stats=root["mshr"])
        self.ports = PortArbiter(config.l1.ports, stats=root["ports"])
        # L1-side bus: accounting only (port arbitration models the contention).
        self.l1_bus = Bus(config.l1.line_bytes, config.l1.line_bytes, stats=root["l1_bus"], model_occupancy=False)
        # Memory-side bus: 64 bytes/cycle, occupancy modelled (Table 1).
        self.mem_bus = Bus(config.l2.line_bytes, config.bus_bytes, stats=root["mem_bus"], model_occupancy=True)
        self.buffer: Optional[PrefetchBuffer] = None
        if buffer_config is not None and buffer_config.enabled:
            self.buffer = PrefetchBuffer(buffer_config.entries, stats=root["prefetch_buffer"])
        self.on_buffer_evict: Optional[BufferEvictCallback] = None
        self._l1_writeback_sink = self._handle_l1_eviction_writeback
        # Hot-path constants, hoisted out of demand_access.
        self._l1_latency = config.l1.latency
        self._l2_latency = config.l2.latency
        self._memory_latency = config.memory_latency
        self._l1_writeback = config.l1.writeback
        self._l1_write_allocate = config.l1.write_allocate

    # ------------------------------------------------------------------
    # Internal fill plumbing
    # ------------------------------------------------------------------
    def _handle_l1_eviction_writeback(self, evicted: EvictedLine, when: int) -> None:
        """Dirty L1 victims write back into the L2 (write-back, write-allocate)."""
        if not evicted.dirty:
            return
        self.l1_bus.transfer(TransferKind.WRITEBACK, when)
        victim = self.l2.fill(evicted.line_addr, when, FillSource.DEMAND, dirty=True)
        if victim is not None and victim.dirty:
            self.mem_bus.transfer(TransferKind.WRITEBACK, when)

    def _fetch_into_l2(self, line_addr: int, when: int, kind: TransferKind) -> tuple[int, bool]:
        """L2 lookup + memory fetch on miss; returns (data-ready time, l2 hit)."""
        l2_latency = self._l2_latency
        hit, _ = self.l2.access(line_addr, False, when)
        if hit:
            return when + l2_latency, True
        done = self.mem_bus.transfer(kind, when + l2_latency)
        ready = done + self._memory_latency
        victim = self.l2.fill(line_addr, when, FillSource.DEMAND)
        if victim is not None and victim.dirty:
            self.mem_bus.transfer(TransferKind.WRITEBACK, when)
        return ready, False

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def demand_access(self, byte_addr: int, is_write: bool, when: int) -> AccessResult:
        """One load/store: port arbitration, L1, buffer probe, L2, memory."""
        l1 = self.l1
        line = l1.line_address(byte_addr)
        grant = self.ports.acquire_demand(when)
        pending = self.mshr.pending_ready(line, grant)
        nsp_tag_hit = l1.consume_nsp_tag(line)
        hit, first_use = l1.access(line, is_write, grant)
        l1_lat = self._l1_latency

        if hit:
            # A pending MSHR entry means the line's fill is still in flight
            # (e.g. a late prefetch): pay the remaining latency (merge).
            complete = grant + l1_lat + (pending - grant if pending else 0)
            return AccessResult(
                line, grant, complete, True, None, pending is not None, nsp_tag_hit, False, first_use
            )

        if self.buffer is not None:
            promoted = self.buffer.demand_probe(line)
            if promoted is not None:
                evicted = l1.fill(line, grant, promoted.source, promoted.trigger_pc)
                if evicted is not None:
                    self._l1_writeback_sink(evicted, grant)
                l1.access(line, is_write, grant)  # sets RIB, recency
                self.stats.bump("buffer_promotions")
                complete = grant + l1_lat + (pending - grant if pending else 0)
                return AccessResult(line, grant, complete, False, None, False, nsp_tag_hit, True, True)

        l2_data_at, l2_hit = self._fetch_into_l2(line, grant + l1_lat, TransferKind.DEMAND_FILL)
        self.l1_bus.transfer(TransferKind.DEMAND_FILL, grant)
        ready, stalled = self.mshr.allocate(line, l2_data_at, grant)
        if is_write and not self._l1_write_allocate:
            # No-write-allocate (write-around): the store updates the line
            # in the L2 and the L1 is left untouched; only reads allocate.
            self.l2.access(line, True, grant)
        else:
            evicted = l1.fill(line, grant, FillSource.DEMAND, dirty=is_write and self._l1_writeback)
            if evicted is not None:
                self._l1_writeback_sink(evicted, grant)
        return AccessResult(
            line, grant, ready, False, l2_hit, False, nsp_tag_hit, False, mshr_stalled=stalled
        )

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------
    def is_duplicate_prefetch(self, line_addr: int, when: int) -> bool:
        """True when a prefetch would be squashed: line resident or in flight."""
        if self.l1.contains(line_addr):
            return True
        if self.buffer is not None and self.buffer.contains(line_addr):
            return True
        return self.mshr.pending_ready(line_addr, when) is not None

    def issue_prefetch(
        self,
        line_addr: int,
        grant: int,
        source: FillSource,
        trigger_pc: int,
        nsp_tag: bool = False,
    ) -> PrefetchOutcome:
        """Perform a prefetch that already holds an L1 port at ``grant``.

        Duplicate squashing is the *caller's* job (check
        :meth:`is_duplicate_prefetch` first) so that squashes can be counted
        before a port is consumed — the paper squashes duplicates with no
        penalty.
        """
        l2_data_at, l2_hit = self._fetch_into_l2(
            line_addr, grant + self.config.l1.latency, TransferKind.PREFETCH_FILL
        )
        self.l1_bus.transfer(TransferKind.PREFETCH_FILL, grant)
        ready, _ = self.mshr.allocate(line_addr, l2_data_at, grant)

        if self.buffer is not None:
            victim = self.buffer.insert(line_addr, trigger_pc, source)
            if victim is not None and self.on_buffer_evict is not None:
                self.on_buffer_evict(victim)
        else:
            evicted = self.l1.fill(line_addr, grant, source, trigger_pc, nsp_tag=nsp_tag)
            if evicted is not None:
                self._l1_writeback_sink(evicted, grant)
        return PrefetchOutcome(line_addr, ready, l2_hit)

    # ------------------------------------------------------------------
    # Invariant audit (sanitizer hook)
    # ------------------------------------------------------------------
    def validate(self, now: int = 0, deep: bool = False) -> None:
        """Audit the whole hierarchy; ``deep`` adds the full L2 scan.

        The L1 (256 lines at paper defaults) is cheap enough for every
        periodic sweep; the L2 (16K lines) is only worth scanning at
        warmup boundaries and end of run, which is what ``deep`` gates.
        """
        self.l1.validate()
        self.mshr.validate(now)
        self.ports.validate()
        if deep:
            self.l2.validate()

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Flush the L1 (classifying resident prefetched lines) and buffer."""
        for _ in self.l1.flush():
            pass
        if self.buffer is not None:
            for line in self.buffer.drain():
                if self.on_buffer_evict is not None:
                    self.on_buffer_evict(line)

    # -- metrics convenience ------------------------------------------------
    def l1_demand_accesses(self) -> int:
        s = self.l1.stats
        return int(
            s.get("demand_read_hit")
            + s.get("demand_read_miss")
            + s.get("demand_write_hit")
            + s.get("demand_write_miss")
        )

    def l1_demand_misses(self) -> int:
        s = self.l1.stats
        return int(s.get("demand_read_miss") + s.get("demand_write_miss"))

    def l2_demand_accesses(self) -> int:
        s = self.l2.stats
        return int(
            s.get("demand_read_hit")
            + s.get("demand_read_miss")
            + s.get("demand_write_hit")
            + s.get("demand_write_miss")
        )

    def l2_demand_misses(self) -> int:
        s = self.l2.stats
        return int(s.get("demand_read_miss") + s.get("demand_write_miss"))
