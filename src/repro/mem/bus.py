"""Bus traffic accounting and bandwidth occupancy.

Two jobs:

1. **Accounting** — every cache-line transfer is recorded by kind (demand
   fill, prefetch fill, writeback) and by level crossing (L2->L1 vs
   memory->L2).  Figure 2's "traffic distribution of the L1 cache" and the
   "prefetch bandwidth reduction" numbers come straight from these counters.

2. **Occupancy** — the memory-side bus is ``bus_bytes`` wide per core cycle,
   so a line transfer occupies it for ``ceil(line_bytes / bus_bytes)``
   cycles.  Transfers queue behind each other, which is how excessive
   prefetch traffic lengthens demand-miss latency (the paper's "throttle
   bus bandwidth" effect).
"""

from __future__ import annotations

import enum

from repro.common.stats import StatGroup


class TransferKind(enum.Enum):
    DEMAND_FILL = "demand_fill"
    PREFETCH_FILL = "prefetch_fill"
    WRITEBACK = "writeback"


class Bus:
    """A shared transfer path with per-kind accounting."""

    def __init__(
        self,
        line_bytes: int,
        bus_bytes: int,
        stats: StatGroup | None = None,
        model_occupancy: bool = True,
    ) -> None:
        if line_bytes < 1 or bus_bytes < 1:
            raise ValueError("line and bus widths must be positive")
        self.cycles_per_line = max(1, -(-line_bytes // bus_bytes))
        self.stats = stats if stats is not None else StatGroup("bus")
        self.model_occupancy = model_occupancy
        self._busy_until = 0
        # Per-kind line counts batched as integers (one transfer per cache
        # fill makes this a hot counter site); folded in via flush hook.
        self._n_kind = {kind: 0 for kind in TransferKind}
        self._n_queued = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        for kind, pending in self._n_kind.items():
            if pending:
                key = f"lines_{kind.value}"
                c[key] = c.get(key, 0) + pending
                self._n_kind[kind] = 0
        if self._n_queued:
            c["queued_cycles"] = c.get("queued_cycles", 0) + self._n_queued
            self._n_queued = 0

    def transfer(self, kind: TransferKind, when: int) -> int:
        """Record one line transfer starting no earlier than ``when``.

        Returns the cycle at which the transfer *completes* (equal to
        ``when + cycles_per_line`` on an idle bus).  With occupancy modelling
        disabled the bus is infinitely wide and only the counters move.
        """
        self._n_kind[kind] += 1
        if not self.model_occupancy:
            return when + self.cycles_per_line
        start = max(when, self._busy_until)
        self._n_queued += start - when
        self._busy_until = start + self.cycles_per_line
        return self._busy_until

    # -- accounting views --------------------------------------------------
    def lines(self, kind: TransferKind) -> int:
        return int(self.stats.get(f"lines_{kind.value}"))

    @property
    def total_lines(self) -> int:
        return sum(self.lines(kind) for kind in TransferKind)

    @property
    def prefetch_fraction(self) -> float:
        total = self.total_lines
        return self.lines(TransferKind.PREFETCH_FILL) / total if total else 0.0

    def reset(self) -> None:
        self._busy_until = 0
        self.stats.reset()
