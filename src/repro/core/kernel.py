"""Compiled batch engine — the sweep-scale tier above the vector engine.

:class:`KernelEngine` runs the exact semantics of
:class:`~repro.core.vector.VectorEngine` (zero-contention functional
replay, same update order, same counters) but lowers the nested-closure
hot loop into :mod:`repro.core.kernels`: module-level functions over
flat preallocated numpy arrays, executable as native code.  Counters
are **bit-identical to the vector engine on every config** — the two
tiers share one fidelity contract against the pipeline (see the
``vector`` module docstring), and the golden corpus plus
``repro-sim verify`` lock kernel-vs-vector equality directly.

Execution legs (fastest available wins, ``REPRO_KERNEL_MODE`` overrides):

* ``jit``    — numba ``@njit(cache=True)`` over the kernels, when numba
  is importable and ``NUMBA_DISABLE_JIT`` is not set;
* ``cc``     — the C port in :mod:`repro.core._ckernel`, compiled once
  with the system C compiler and cached by source hash;
* ``interp`` — the same kernel source as plain Python, always available.

Falling below the requested/expected leg degrades gracefully: one
process-wide warning, never a crash, and the chosen leg is recorded in
the result payload (``pipeline.kernel_mode_id`` in ``stats``) so cached
results from different legs are distinguishable — by provenance and
timing only, never by counters.

State layout (allocated per run, all C-contiguous):

* L1: ``tag``/``tpc``/``fid``/``stamp`` int64 + ``dirty``/``pib``/
  ``rib``/``nsp``/``src`` uint8, one slot per way, set-major
  (:func:`repro.mem.geometry.allocate_flat_cache`);
* L2: ``tag``/``stamp`` int64 + ``dirty`` uint8, same layout;
* history table: int64 counter view
  (:meth:`~repro.common.saturating.SaturatingCounterArray.export_int64`);
* SDP shadow directory + await set: open-addressed int64 maps sized to
  ``next_pow2(2 * (memory_ops + 16))`` — inserts are bounded by L1
  demand misses, so the load factor stays under one half and probes
  always terminate;
* counters: ``K`` (37 int64 event slots) and ``T`` (5x7 per-source
  tally rows, flattened), folded into the shared stats tree only at the
  warmup boundary and the end of the run (the StatGroup flush
  discipline the other batch tier uses).
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.common.hashing import table_index_array
from repro.core import _ckernel
from repro.core import kernels as krn
from repro.core.pipeline import OoOPipeline
from repro.core.vector import _MLP_DIVISOR
from repro.filters.null_filter import NullFilter
from repro.filters.pa_filter import PAFilter
from repro.filters.pc_filter import PCFilter
from repro.mem.bus import TransferKind
from repro.mem.cache import FillSource
from repro.mem.geometry import allocate_flat_cache
from repro.sanitize import SanitizerViolation
from repro.trace.record import InstrClass
from repro.trace.stream import Trace

MODE_JIT = "jit"
MODE_CC = "cc"
MODE_INTERP = "interp"

#: Stable ids recorded in the result payload (``pipeline.kernel_mode_id``).
MODE_IDS = {MODE_INTERP: 0, MODE_CC: 1, MODE_JIT: 2}

#: Environment override: force one leg (``jit`` / ``cc`` / ``interp``).
MODE_ENV = "REPRO_KERNEL_MODE"

_SCHEME_IDS = {
    "modulo": krn.SCHEME_MODULO,
    "fold_xor": krn.SCHEME_FOLD_XOR,
    "multiplicative": krn.SCHEME_MULTIPLICATIVE,
}

_warned: set = set()


def _warn_once(message: str) -> None:
    """The graceful-degradation contract: one warning per process."""
    if message not in _warned:
        _warned.add(message)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def available_modes() -> tuple:
    """Usable legs in preference order (``interp`` is always last)."""
    modes = []
    if krn.HAVE_JIT:
        modes.append(MODE_JIT)
    if _ckernel.load() is not None:
        modes.append(MODE_CC)
    modes.append(MODE_INTERP)
    return tuple(modes)


def select_mode() -> str:
    """Pick the execution leg: env override first, else fastest available."""
    requested = os.environ.get(MODE_ENV, "").strip().lower()
    modes = available_modes()
    if requested:
        if requested not in MODE_IDS:
            raise ValueError(
                f"unknown {MODE_ENV}={requested!r}; choose from jit, cc, interp"
            )
        if requested in modes:
            return requested
        reason = krn.JIT_ERROR if requested == MODE_JIT else _ckernel.LOAD_ERROR
        _warn_once(
            f"kernel engine: requested mode {requested!r} is unavailable "
            f"({reason or 'not built'}); falling back to {modes[0]!r} "
            "(counters are identical across legs, only timing differs)"
        )
        return modes[0]
    if modes[0] != MODE_JIT:
        reason = krn.JIT_ERROR or "numba is not importable"
        _warn_once(
            f"kernel engine: numba JIT unavailable ({reason}); running the "
            f"{modes[0]!r} leg (counters are identical across legs, only "
            "timing differs)"
        )
    return modes[0]


def _span_fn(mode: str):
    if mode == MODE_JIT:
        return krn.kernel_span
    if mode == MODE_CC:
        fn = _ckernel.load()
        if fn is None:  # pragma: no cover - select_mode never hands us this
            raise RuntimeError(f"cc leg unavailable: {_ckernel.LOAD_ERROR}")
        return fn
    return krn.py_kernel_span


def _map_capacity(n_mem: int) -> int:
    """Power-of-two map size with load factor <= 1/2 at the insert bound."""
    need = 2 * (n_mem + 16)
    cap = 1024
    while cap < need:
        cap <<= 1
    return cap


class KernelState:
    """All flat arrays of one kernel run, plus their invariant audit.

    Grouping the arrays in one object gives the sanitizer a single
    ``validate()`` entry point (wired into ``CHECK_WALK``) that mirrors
    the vector engine's compact-state sweeps: L1 frame/tag consistency,
    RIB => PIB lineage, PIB <=> prefetch fill source, per-set tag
    uniqueness, history-table counter range, and the L2 frame/tag sweep.
    """

    __slots__ = (
        "l1_tag", "l1_dirty", "l1_pib", "l1_rib", "l1_nsp", "l1_src",
        "l1_tpc", "l1_fid", "l1_stamp",
        "l2_tag", "l2_dirty", "l2_stamp",
        "dir_key", "dir_shadow", "dir_conf", "aw_key", "aw_val",
        "tvals", "K", "T", "S", "P",
    )

    def __init__(self, l1cfg, l2cfg, n_mem: int, tvals: np.ndarray) -> None:
        l1 = allocate_flat_cache(
            l1cfg, flags=("dirty", "pib", "rib", "nsp", "src"), extra=("tpc", "fid")
        )
        self.l1_tag = l1["tag"]
        self.l1_dirty = l1["dirty"]
        self.l1_pib = l1["pib"]
        self.l1_rib = l1["rib"]
        self.l1_nsp = l1["nsp"]
        self.l1_src = l1["src"]
        self.l1_tpc = l1["tpc"]
        self.l1_fid = l1["fid"]
        self.l1_stamp = l1["stamp"]
        l2 = allocate_flat_cache(l2cfg, flags=("dirty",))
        self.l2_tag = l2["tag"]
        self.l2_dirty = l2["dirty"]
        self.l2_stamp = l2["stamp"]
        cap = _map_capacity(n_mem)
        self.dir_key = np.full(cap, krn.MAP_EMPTY, dtype=np.int64)
        self.dir_shadow = np.zeros(cap, dtype=np.int64)
        self.dir_conf = np.zeros(cap, dtype=np.uint8)
        self.aw_key = np.full(cap, krn.MAP_EMPTY, dtype=np.int64)
        self.aw_val = np.zeros(cap, dtype=np.int64)
        self.tvals = tvals
        self.K = np.zeros(krn.NK, dtype=np.int64)
        self.T = np.zeros(krn.NT, dtype=np.int64)
        self.S = np.full(krn.NS, -1, dtype=np.int64)
        self.P = np.zeros(krn.NP_PARAMS, dtype=np.int64)

    def span_args(self, mcls, mpc, mline, selffid, nspfid) -> tuple:
        """The full positional argument tuple of ``kernel_span`` minus
        ``(start, stop)`` — one definition shared by every call site."""
        return (
            mcls, mpc, mline, selffid, nspfid,
            self.l1_tag, self.l1_dirty, self.l1_pib, self.l1_rib,
            self.l1_nsp, self.l1_src, self.l1_tpc, self.l1_fid, self.l1_stamp,
            self.l2_tag, self.l2_dirty, self.l2_stamp,
            self.dir_key, self.dir_shadow, self.dir_conf,
            self.aw_key, self.aw_val,
            self.tvals, self.K, self.T, self.S, self.P,
        )

    def validate(self, pos: int) -> None:
        """Invariant sweep over the flat state (sanitizer entry point)."""
        P = self.P
        W1 = int(P[krn.P_W1])
        l1_mask = int(P[krn.P_L1MASK])
        n1 = len(self.l1_tag)
        valid = self.l1_tag != -1
        sets = np.arange(n1, dtype=np.int64) // W1
        bad = np.nonzero(valid & ((self.l1_tag & l1_mask) != sets))[0]
        if len(bad):
            w = int(bad[0])
            raise SanitizerViolation(
                "kernel.l1",
                f"way {w} holds line {int(self.l1_tag[w]):#x}, which does not "
                f"map to set {int(sets[w])}: frame/tag desync",
                cycle=pos,
                snapshot={"way": w, "tag": int(self.l1_tag[w]), "set": int(sets[w])},
            )
        bad = np.nonzero(valid & (self.l1_rib != 0) & (self.l1_pib == 0))[0]
        if len(bad):
            w = int(bad[0])
            raise SanitizerViolation(
                "kernel.l1",
                f"way {w}: RIB set without PIB — referenced bit without "
                "prefetch lineage",
                cycle=pos,
                snapshot={
                    "way": w, "tag": int(self.l1_tag[w]),
                    "pib": int(self.l1_pib[w]), "rib": int(self.l1_rib[w]),
                },
            )
        bad = np.nonzero(valid & ((self.l1_pib != 0) != (self.l1_src != 0)))[0]
        if len(bad):
            w = int(bad[0])
            raise SanitizerViolation(
                "kernel.l1",
                f"way {w}: PIB={int(self.l1_pib[w])} disagrees with fill "
                f"source {int(self.l1_src[w])}: prefetch lineage lost",
                cycle=pos,
                snapshot={
                    "way": w, "tag": int(self.l1_tag[w]),
                    "pib": int(self.l1_pib[w]), "source": int(self.l1_src[w]),
                },
            )
        if W1 > 1:
            for s in range(n1 // W1):
                b = s * W1
                resident = [int(t) for t in self.l1_tag[b : b + W1] if t != -1]
                if len(resident) != len(set(resident)):
                    raise SanitizerViolation(
                        "kernel.l1",
                        f"duplicate tag in set {s}: the same line is resident "
                        "in two ways",
                        cycle=pos,
                        snapshot={"set": s, "tags": resident},
                    )
        if int(P[krn.P_FMODE]) == krn.FMODE_TABLE and len(self.tvals):
            maxv = int(P[krn.P_MAXV])
            lo = int(self.tvals.min())
            hi = int(self.tvals.max())
            if lo < 0 or hi > maxv:
                value = hi if hi > maxv else lo
                index = int(np.nonzero(self.tvals == value)[0][0])
                raise SanitizerViolation(
                    "kernel.history_table",
                    f"counter {index} holds {value}, outside [0, {maxv}]",
                    cycle=pos,
                    snapshot={"index": index, "value": value, "max": maxv},
                )
        W2 = int(P[krn.P_W2])
        l2_mask = int(P[krn.P_L2MASK])
        n2 = len(self.l2_tag)
        l2_sets = np.arange(n2, dtype=np.int64) // W2
        bad = np.nonzero((self.l2_tag != -1) & ((self.l2_tag & l2_mask) != l2_sets))[0]
        if len(bad):
            w = int(bad[0])
            raise SanitizerViolation(
                "kernel.l2",
                f"way {w} holds line {int(self.l2_tag[w]):#x}, which does not "
                f"map to set {int(l2_sets[w])}: frame/tag desync",
                cycle=pos,
                snapshot={"way": w, "tag": int(self.l2_tag[w]), "set": int(l2_sets[w])},
            )


class KernelEngine(OoOPipeline):
    """Classification-accurate compiled engine (no cycle-level timing)."""

    kernel_mode: str = ""

    def _check_supported(self) -> None:
        if self.stride is not None:
            raise ValueError(
                "the kernel engine does not model the stride/extension "
                "prefetcher; run stride configurations on the pipeline engine"
            )
        if self.hierarchy.buffer is not None:
            raise ValueError(
                "the kernel engine does not model the prefetch buffer "
                "(Section 5.5); run buffer configurations on the pipeline engine"
            )
        ftype = type(self.filter)
        if ftype not in (NullFilter, PAFilter, PCFilter):
            raise ValueError(
                f"the kernel engine inlines only the null/PA/PC filters, not "
                f"{ftype.__name__}; run this filter on the vector or pipeline "
                "engine"
            )

    # One long straight-line method on purpose, mirroring VectorEngine.run
    # section for section so a side-by-side diff of the two tiers is easy.
    def run(self, trace: Trace) -> int:  # noqa: C901 - deliberate hot-loop driver
        self._check_supported()
        cfg = self.config
        n = len(trace)
        limit = cfg.max_instructions
        if limit is not None:
            n = min(n, limit)

        mode = select_mode()
        self.kernel_mode = mode
        self.stats.set("kernel_mode_id", MODE_IDS[mode])
        span = _span_fn(mode)

        l1cfg = cfg.hierarchy.l1
        l2cfg = cfg.hierarchy.l2
        offset_bits = l1cfg.offset_bits
        nsp_on = self.nsp is not None
        sdp_on = self.sdp is not None
        sw_on = self.sw_unit is not None
        degree = cfg.prefetch.degree

        # ---- batch precompute (identical to the vector tier) -------------
        iclass = trace.iclass[:n]
        LOAD = int(InstrClass.LOAD)
        STORE = int(InstrClass.STORE)
        SW_PF = int(InstrClass.SW_PREFETCH)
        mask = (iclass == LOAD) | (iclass == STORE)
        if sw_on:
            mask |= iclass == SW_PF
        midx = np.nonzero(mask)[0]
        n_mem = len(midx)
        pcs = trace.pc[:n][mask]
        lines_arr = trace.addr[:n][mask] >> np.uint64(offset_bits)
        mcls = np.ascontiguousarray(iclass[mask], dtype=np.int64)
        mpc = pcs.astype(np.int64)
        mline = lines_arr.astype(np.int64)

        filt = self.filter
        ftype = type(filt)
        is_pa = ftype is PAFilter
        is_pc = ftype is PCFilter
        is_table = is_pa or is_pc
        thresh = maxv = tbits = 0
        scheme_id = 0
        tvals = np.zeros(1, dtype=np.int64)
        if is_table:
            table = filt.table
            tbits = table.entries.bit_length() - 1
            scheme_id = _SCHEME_IDS[table.hash_scheme]
            thresh = table.counters.threshold
            maxv = table.counters.max_value
            tvals = table.counters.export_int64()

        # Per-memory-op filter-index columns (PA keys on the prefetched
        # line, PC on the trigger PC); the hot loop only hashes for SDP
        # shadow lines under the PA scheme, where the key is run-dependent.
        selffid = np.zeros(n_mem, dtype=np.int64)
        nspfid = np.zeros(degree * n_mem, dtype=np.int64)
        if is_pa:
            E, SCH = filt.table.entries, filt.table.hash_scheme
            if nsp_on:
                for d in range(1, degree + 1):
                    nspfid[(d - 1) * n_mem : d * n_mem] = table_index_array(
                        lines_arr + np.uint64(d), E, SCH
                    )
            if sw_on:
                selffid = np.ascontiguousarray(table_index_array(lines_arr, E, SCH))
        elif is_pc:
            E, SCH = filt.table.entries, filt.table.hash_scheme
            pcf = table_index_array(pcs, E, SCH)
            selffid = np.ascontiguousarray(pcf)
            for d in range(degree):
                nspfid[d * n_mem : (d + 1) * n_mem] = pcf

        # ---- flat state + scalar parameter block -------------------------
        st = KernelState(l1cfg, l2cfg, n_mem, tvals)
        P = st.P
        P[krn.P_W1] = l1cfg.ways
        P[krn.P_L1MASK] = l1cfg.num_sets - 1
        P[krn.P_W2] = l2cfg.ways
        P[krn.P_L2MASK] = l2cfg.num_sets - 1
        P[krn.P_WB] = 1 if l1cfg.writeback else 0
        P[krn.P_NSP] = 1 if nsp_on else 0
        P[krn.P_SDP] = 1 if sdp_on else 0
        P[krn.P_DEGREE] = degree
        P[krn.P_TAGF] = 1 if self._tag_fills else 0
        P[krn.P_FMODE] = krn.FMODE_TABLE if is_table else krn.FMODE_NULL
        P[krn.P_THRESH] = thresh
        P[krn.P_MAXV] = maxv
        P[krn.P_TBITS] = tbits
        P[krn.P_SCHEME] = scheme_id
        P[krn.P_SDPHASH] = 1 if is_pa else 0
        P[krn.P_NMEM] = n_mem
        P[krn.P_DIRMASK] = len(st.dir_key) - 1
        P[krn.P_AWMASK] = len(st.aw_key) - 1
        P[krn.P_STORE] = STORE
        P[krn.P_SWPF] = SW_PF

        args = st.span_args(mcls, mpc, mline, selffid, nspfid)

        def call(start: int, stop: int) -> None:
            # errstate: the interp leg's uint64 golden-ratio multiplies
            # overflow by design; numba/C wrap silently, numpy warns.
            with np.errstate(over="ignore"):
                status = int(span(*args, start, stop))
            if status != 0:
                raise RuntimeError(
                    f"kernel span aborted with status {status} (SDP map "
                    "overflow — the capacity invariant was violated)"
                )

        # ---- deferred-statistics fold ------------------------------------
        hierarchy = self.hierarchy
        classifier = self.classifier
        K = st.K
        T = st.T
        cum = [0, 0]  # cumulative (L1 demand misses, memory fetches)

        def fold() -> None:
            l1 = hierarchy.l1
            l1._n_read_hit += int(K[krn.K_RH])
            l1._n_read_miss += int(K[krn.K_RM])
            l1._n_write_hit += int(K[krn.K_WH])
            l1._n_write_miss += int(K[krn.K_WM])
            l1._n_first_use += int(K[krn.K_FU])
            l1._n_duplicate_fill += int(K[krn.K_DUP1])
            l1._n_evictions += int(K[krn.K_EV])
            l1._n_evicted_used += int(K[krn.K_EVU])
            l1._n_evicted_unused += int(K[krn.K_EVN])
            l1._n_prefetch_fill += int(K[krn.K_PF1])
            l1._n_demand_fill += int(K[krn.K_DF1])
            l2 = hierarchy.l2
            l2._n_read_hit += int(K[krn.K_L2RH])
            l2._n_read_miss += int(K[krn.K_L2RM])
            l2._n_duplicate_fill += int(K[krn.K_L2DUP])
            l2._n_evictions += int(K[krn.K_L2EV])
            l2._n_demand_fill += int(K[krn.K_L2DF])
            b1 = hierarchy.l1_bus._n_kind
            b1[TransferKind.DEMAND_FILL] += int(K[krn.K_B1D])
            b1[TransferKind.PREFETCH_FILL] += int(K[krn.K_B1P])
            b1[TransferKind.WRITEBACK] += int(K[krn.K_B1W])
            bm = hierarchy.mem_bus._n_kind
            bm[TransferKind.DEMAND_FILL] += int(K[krn.K_BMD])
            bm[TransferKind.PREFETCH_FILL] += int(K[krn.K_BMP])
            bm[TransferKind.WRITEBACK] += int(K[krn.K_BMW])
            if nsp_on:
                self.nsp._n_trigger_miss += int(K[krn.K_NSPM])
                self.nsp._n_trigger_tag += int(K[krn.K_NSPT])
            if sdp_on:
                self.sdp._n_issued += int(K[krn.K_SDPI])
                self.sdp._n_suppressed += int(K[krn.K_SDPS])
                self.sdp._n_learned += int(K[krn.K_SDPL])
                self.sdp._n_confirmed += int(K[krn.K_SDPC])
            if sw_on:
                self.sw_unit._n_executed += int(K[krn.K_SWX])
            filt._n_allowed += int(K[krn.K_FA])
            filt._n_rejected += int(K[krn.K_FR])
            filt._n_fb_good += int(K[krn.K_FBG])
            filt._n_fb_bad += int(K[krn.K_FBB])
            if is_table:
                table = filt.table
                table._n_lookup_good += int(K[krn.K_TLG])
                table._n_lookup_bad += int(K[krn.K_TLB])
                table._n_train_good += int(K[krn.K_TTG])
                table._n_train_bad += int(K[krn.K_TTB])
                table.counters.absorb_int64(st.tvals)
            for src in (1, 2, 3, 4):
                row = T[src * 7 : (src + 1) * 7]
                if row.any():
                    tally = classifier.per_source[FillSource(src)]
                    tally.generated += int(row[krn.T_GEN])
                    tally.squashed += int(row[krn.T_SQ])
                    tally.filtered += int(row[krn.T_FLT])
                    tally.dropped += int(row[krn.T_DRP])
                    tally.issued += int(row[krn.T_ISS])
                    tally.good += int(row[krn.T_GOOD])
                    tally.bad += int(row[krn.T_BAD])
            cum[0] += int(K[krn.K_RM]) + int(K[krn.K_WM])
            cum[1] += int(K[krn.K_BMD]) + int(K[krn.K_BMP])
            K[:] = 0
            T[:] = 0

        def estimate(n_insts: int) -> int:
            l2_lat = cfg.hierarchy.l2.latency
            mem_lat = cfg.hierarchy.memory_latency
            stall = cum[0] * l2_lat + cum[1] * mem_lat
            return max(1, n_insts // cfg.processor.issue_width + stall // _MLP_DIVISOR)

        # ---- drive the spans (sanitizer sweeps chunk the hot loop) -------
        sanitizer = self.sanitizer

        def drive(start: int, stop: int) -> None:
            if sanitizer is None:
                if stop > start:
                    call(start, stop)
                return
            pos = start
            step = max(1, sanitizer.interval)
            while pos < stop:
                nxt = min(stop, pos + step)
                call(pos, nxt)
                tripped = sanitizer.fire_trip()
                if tripped:
                    # Deliberate RIB-without-PIB corruption in way 0 (tag 0
                    # maps to set 0 in any power-of-two layout); the validate
                    # sweep below must catch it.
                    st.l1_tag[0] = 0
                    st.l1_pib[0] = 0
                    st.l1_rib[0] = 1
                    st.l1_src[0] = 0
                st.validate(nxt)
                if tripped:  # pragma: no cover - reachable only if a check rots
                    raise SanitizerViolation(
                        "kernel.sanitizer",
                        "injected invariant trip went undetected",
                        cycle=nxt,
                    )
                pos = nxt

        warmup = min(cfg.warmup_instructions, n)
        if warmup and warmup < n and self.on_warmup is not None:
            split = int(np.searchsorted(midx, warmup))
            drive(0, split)
            fold()
            self.on_warmup(estimate(warmup))
            drive(split, n_mem)
        else:
            drive(0, n_mem)

        # Final flush: classify still-resident prefetched lines exactly the
        # way Cache.flush does — feedback fires, eviction counters do not.
        fmode = int(P[krn.P_FMODE])
        resident = np.nonzero((st.l1_tag != -1) & (st.l1_pib != 0))[0]
        for w in resident.tolist():
            vrib = int(st.l1_rib[w])
            row = int(st.l1_src[w]) * 7
            if vrib:
                T[row + krn.T_GOOD] += 1
            else:
                T[row + krn.T_BAD] += 1
            krn.feedback(st.tvals, K, vrib, int(st.l1_fid[w]), fmode, maxv)
        fold()

        if sanitizer is not None:
            st.validate(n_mem)

        cycles = estimate(n)
        self.stats.set("instructions", n)
        self.stats.set("cycles", cycles)
        return cycles
