"""Load/store queue.

Same retirement-window mechanics as the ROB (see :mod:`repro.core.rob`)
but only memory instructions occupy slots — including software prefetches,
which the paper identifies *in the LSQ* before routing them to the
pollution filter.  A 64-entry LSQ therefore caps the number of memory
operations in flight independently of the 128-entry ROB.
"""

from __future__ import annotations

from repro.core.rob import RetirementWindow


class LoadStoreQueue(RetirementWindow):
    """LSQ: loads, stores, and software prefetches occupy entries."""
