"""Good/bad prefetch classification (paper Section 3).

    "1) good or effective — those referenced in the cache before they are
     evicted; 2) bad or ineffective — those never referenced during their
     lifetime in the cache."

The classifier is the accounting hub every figure draws from.  It observes
four events per prefetch lifecycle:

* **squashed** — duplicate of a resident/in-flight line, dropped free,
* **filtered** — rejected by the pollution filter,
* **dropped**  — prefetch queue overflow or end-of-run drain,
* **issued**   — actually performed against the L1/buffer; later resolved
  to exactly one of **good** or **bad** by the eviction (or final-flush)
  PIB/RIB feedback.

Everything is kept per prefetch source so NSP/SDP/software can be reported
separately (Section 5.2.1's per-prefetcher analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.stats import StatGroup
from repro.mem.cache import EvictedLine, FillSource
from repro.mem.prefetch_buffer import BufferedLine
from repro.prefetch.base import PrefetchRequest

_PREFETCH_SOURCES = (FillSource.NSP, FillSource.SDP, FillSource.SOFTWARE, FillSource.STRIDE)


@dataclass(slots=True)
class PrefetchTally:
    """Counts for one prefetch source."""

    generated: int = 0
    squashed: int = 0
    filtered: int = 0
    dropped: int = 0
    issued: int = 0
    good: int = 0
    bad: int = 0

    @property
    def classified(self) -> int:
        return self.good + self.bad

    @property
    def bad_good_ratio(self) -> float:
        """The paper's bad/good metric (inf when nothing was good)."""
        if self.good == 0:
            return float("inf") if self.bad else 0.0
        return self.bad / self.good

    @property
    def accuracy(self) -> float:
        done = self.classified
        return self.good / done if done else 0.0

    def merged_with(self, other: "PrefetchTally") -> "PrefetchTally":
        return PrefetchTally(
            self.generated + other.generated,
            self.squashed + other.squashed,
            self.filtered + other.filtered,
            self.dropped + other.dropped,
            self.issued + other.issued,
            self.good + other.good,
            self.bad + other.bad,
        )

    def minus(self, earlier: "PrefetchTally") -> "PrefetchTally":
        """Counts accumulated since an earlier snapshot (warmup exclusion)."""
        return PrefetchTally(
            self.generated - earlier.generated,
            self.squashed - earlier.squashed,
            self.filtered - earlier.filtered,
            self.dropped - earlier.dropped,
            self.issued - earlier.issued,
            self.good - earlier.good,
            self.bad - earlier.bad,
        )

    def copy(self) -> "PrefetchTally":
        return PrefetchTally(
            self.generated, self.squashed, self.filtered, self.dropped,
            self.issued, self.good, self.bad,
        )


class PrefetchClassifier:
    """Per-source lifecycle accounting for every prefetch."""

    def __init__(self, stats: StatGroup | None = None) -> None:
        self.stats = stats if stats is not None else StatGroup("classifier")
        self.per_source: Dict[FillSource, PrefetchTally] = {
            src: PrefetchTally() for src in _PREFETCH_SOURCES
        }
        #: stats-dict values already flushed, per counter key; the flush
        #: hook derives pending deltas from the per-source tallies (the
        #: single source of truth) instead of double-counting per event.
        self._flushed: Dict[str, int] = {}
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        flushed = self._flushed
        totals = {"generated": 0, "squashed": 0, "filtered": 0,
                  "dropped": 0, "issued": 0, "good": 0, "bad": 0}
        for tally in self.per_source.values():
            totals["generated"] += tally.generated
            totals["squashed"] += tally.squashed
            totals["filtered"] += tally.filtered
            totals["dropped"] += tally.dropped
            totals["issued"] += tally.issued
            totals["good"] += tally.good
            totals["bad"] += tally.bad
        for key, value in totals.items():
            delta = value - flushed.get(key, 0)
            if delta:
                c[key] = c.get(key, 0) + delta
                flushed[key] = value

    # -- lifecycle events ----------------------------------------------------
    def on_generated(self, request: PrefetchRequest) -> None:
        self.per_source[request.source].generated += 1

    def on_squashed(self, request: PrefetchRequest) -> None:
        self.per_source[request.source].squashed += 1

    def on_filtered(self, request: PrefetchRequest) -> None:
        self.per_source[request.source].filtered += 1

    def on_dropped(self, request: PrefetchRequest) -> None:
        self.per_source[request.source].dropped += 1

    def on_issued(self, request: PrefetchRequest) -> None:
        self.per_source[request.source].issued += 1

    # -- resolution ------------------------------------------------------------
    def on_l1_eviction(self, evicted: EvictedLine) -> None:
        """Classify a prefetched line leaving the L1 (or the final flush)."""
        if not evicted.pib:
            return
        tally = self.per_source[evicted.source]
        if evicted.rib:
            tally.good += 1
        else:
            tally.bad += 1

    def on_buffer_eviction(self, line: BufferedLine) -> None:
        """Classify a line pushed out of (or drained from) the prefetch buffer."""
        tally = self.per_source[line.source]
        if line.referenced:
            tally.good += 1
        else:
            tally.bad += 1

    # -- aggregates ----------------------------------------------------------
    def total(self) -> PrefetchTally:
        out = PrefetchTally()
        for tally in self.per_source.values():
            out = out.merged_with(tally)
        return out

    def snapshot(self) -> Dict[FillSource, PrefetchTally]:
        return {src: tally.copy() for src, tally in self.per_source.items()}

    def tally(self, source: FillSource) -> PrefetchTally:
        return self.per_source[source]

    def check_conservation(self) -> None:
        """Invariant: after the final flush, issued == good + bad per source."""
        for source, tally in self.per_source.items():
            if tally.issued != tally.classified:
                raise AssertionError(
                    f"{source.name}: issued={tally.issued} != classified={tally.classified}"
                )
            if tally.generated != tally.squashed + tally.filtered + tally.dropped + tally.issued:
                raise AssertionError(f"{source.name}: lifecycle counts do not add up")
