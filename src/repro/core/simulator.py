"""Top-level simulator facade.

``Simulator`` wires a :class:`~repro.common.config.SimulationConfig` into a
fresh hierarchy + engine + filter + classifier, runs a trace, and returns a
:class:`SimulationResult` with every number the paper's figures need:
IPC, good/bad prefetch counts (total and per source), traffic splits, and
miss rates.  ``run_simulation`` is the one-call convenience used by the
examples and benches; two-pass protocols (oracle, static filter) have their
own helpers in :mod:`repro.analysis.sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.config import FilterKind, SimulationConfig
from repro.common.stats import Stats
from repro.core.classifier import PrefetchClassifier, PrefetchTally
from repro.core.interval import make_engine  # noqa: F401  (re-exported)
from repro.filters.adaptive import AdaptiveFilter
from repro.filters.base import PollutionFilter
from repro.filters.null_filter import NullFilter
from repro.filters.pa_filter import PAFilter
from repro.filters.pc_filter import PCFilter
from repro.mem.cache import FillSource
from repro.mem.hierarchy import MemoryHierarchy
from repro.trace.stream import Trace


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one run."""

    trace_name: str
    filter_name: str
    instructions: int
    cycles: int
    prefetch: PrefetchTally
    per_source: Dict[FillSource, PrefetchTally]
    l1_demand_accesses: int
    l1_demand_misses: int
    l2_demand_accesses: int
    l2_demand_misses: int
    l1_prefetch_fills: int
    prefetch_line_traffic: int
    demand_line_traffic: int
    stats: Stats

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate(self) -> float:
        a = self.l1_demand_accesses
        return self.l1_demand_misses / a if a else 0.0

    @property
    def l2_miss_rate(self) -> float:
        a = self.l2_demand_accesses
        return self.l2_demand_misses / a if a else 0.0

    @property
    def prefetch_to_normal_ratio(self) -> float:
        """Figure 2's metric: prefetch L1 accesses / demand L1 accesses."""
        a = self.l1_demand_accesses
        return self.l1_prefetch_fills / a if a else 0.0

    @property
    def bad_good_ratio(self) -> float:
        return self.prefetch.bad_good_ratio


def build_filter(config: SimulationConfig, stats: Stats) -> PollutionFilter:
    """Instantiate the filter named by the config (dynamic kinds only).

    STATIC and ORACLE need profile inputs from a prior run — build those
    through :mod:`repro.analysis.sweep`, which owns the two-pass protocols.
    """
    f = config.filter
    group = stats["filter"]
    if f.kind is FilterKind.NONE:
        return NullFilter(group)
    if f.kind is FilterKind.PA:
        return PAFilter(f.table_entries, f.counter_bits, f.initial_value, f.threshold, stats=group)
    if f.kind is FilterKind.PC:
        return PCFilter(f.table_entries, f.counter_bits, f.initial_value, f.threshold, stats=group)
    if f.kind is FilterKind.ADAPTIVE:
        return AdaptiveFilter(
            f.table_entries,
            f.counter_bits,
            f.initial_value,
            f.threshold,
            scheme="pa",
            accuracy_floor=f.adaptive_accuracy_floor,
            window=f.adaptive_window,
            stats=group,
        )
    raise ValueError(
        f"filter kind {f.kind.value!r} needs a profile; use repro.analysis.sweep helpers"
    )


class Simulator:
    """One configured machine, ready to run traces."""

    def __init__(
        self,
        config: SimulationConfig,
        filter_: Optional[PollutionFilter] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config
        self.stats = Stats()
        self.hierarchy = MemoryHierarchy(
            config.hierarchy, self.stats["mem"], config.prefetch_buffer
        )
        self.filter = filter_ if filter_ is not None else build_filter(config, self.stats)
        self.classifier = PrefetchClassifier(self.stats["classifier"])
        # An explicit engine argument wins; otherwise the config names it.
        self.engine_name = engine if engine is not None else config.engine
        self.engine = make_engine(
            self.engine_name, config, self.hierarchy, self.filter, self.classifier,
            self.stats["pipeline"],
        )
        self.hierarchy.on_buffer_evict = self.engine._on_buffer_evict

    def run(self, trace: Trace) -> SimulationResult:
        """Run the trace; statistics cover the post-warmup region only.

        With ``config.warmup_instructions > 0`` every counter (miss rates,
        prefetch tallies, traffic, cycles) is reported as the delta between
        the warmup boundary and the end of the run, which removes the
        cold-start compulsory misses that short traces otherwise inflate.
        """
        marker: dict = {"counters": {}, "tallies": None, "cycles": 0, "done": False}

        def on_warmup(cycles_so_far: int) -> None:
            marker["counters"] = self.stats.snapshot()
            marker["tallies"] = self.classifier.snapshot()
            marker["cycles"] = cycles_so_far
            marker["done"] = True

        if self.config.warmup_instructions > 0:
            self.engine.on_warmup = on_warmup

        total_cycles = self.engine.run(trace)
        # One deep invariant audit per run (all engine tiers), while the
        # flush hooks are still bound — the stat-conservation check needs
        # live batched counters to compare against.
        if self.engine.sanitizer is not None:
            self.engine.sanitizer.final(self.engine, total_cycles)
        # Fold all batched hot-path counters into the stats dicts and drop
        # the bound-method flush hooks: the result below carries ``stats``
        # across process boundaries (parallel runs, disk cache) and must be
        # plain data, not a handle on the whole hardware-model graph.
        self.stats.detach_flush()
        self.classifier.check_conservation()

        n = len(trace)
        if self.config.max_instructions is not None:
            n = min(n, self.config.max_instructions)
        warmup = min(self.config.warmup_instructions, n) if marker["done"] else 0

        final = self.stats.snapshot()
        counters = Stats.delta(marker["counters"], final) if warmup else final
        cycles = max(1, total_cycles - marker["cycles"]) if warmup else total_cycles

        if warmup and marker["tallies"] is not None:
            per_source = {
                src: self.classifier.per_source[src].minus(earlier)
                for src, earlier in marker["tallies"].items()
            }
        else:
            per_source = {src: t.copy() for src, t in self.classifier.per_source.items()}
        total_tally = PrefetchTally()
        for tally in per_source.values():
            total_tally = total_tally.merged_with(tally)

        def c(key: str) -> int:
            return int(counters.get(key, 0))

        l1_reads = c("mem.l1.demand_read_hit") + c("mem.l1.demand_read_miss")
        l1_writes = c("mem.l1.demand_write_hit") + c("mem.l1.demand_write_miss")
        l1_misses = c("mem.l1.demand_read_miss") + c("mem.l1.demand_write_miss")
        l2_reads = c("mem.l2.demand_read_hit") + c("mem.l2.demand_read_miss")
        l2_writes = c("mem.l2.demand_write_hit") + c("mem.l2.demand_write_miss")
        l2_misses = c("mem.l2.demand_read_miss") + c("mem.l2.demand_write_miss")
        pf_l1 = c("mem.l1_bus.lines_prefetch_fill")
        return SimulationResult(
            trace_name=trace.name,
            filter_name=self.filter.name,
            instructions=n - warmup,
            cycles=cycles,
            prefetch=total_tally,
            per_source=per_source,
            l1_demand_accesses=l1_reads + l1_writes,
            l1_demand_misses=l1_misses,
            l2_demand_accesses=l2_reads + l2_writes,
            l2_demand_misses=l2_misses,
            l1_prefetch_fills=pf_l1,
            prefetch_line_traffic=pf_l1 + c("mem.mem_bus.lines_prefetch_fill"),
            demand_line_traffic=c("mem.l1_bus.lines_demand_fill")
            + c("mem.mem_bus.lines_demand_fill"),
            stats=self.stats,
        )


def run_simulation(
    config: SimulationConfig,
    trace: Trace,
    filter_: Optional[PollutionFilter] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Build a fresh machine from ``config`` and run ``trace`` through it.

    ``engine=None`` defers to ``config.engine`` (which defaults to the
    timing-accurate pipeline engine).
    """
    return Simulator(config, filter_, engine).run(trace)
