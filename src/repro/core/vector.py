"""Vectorized batch functional engine — the sweep-throughput tier.

:class:`VectorEngine` replays a trace *functionally*: caches, PIB/RIB
bookkeeping, prefetch generation, pollution filtering and good/bad
classification are all modelled with the same update rules as the
pipeline engine, but no cycle-level timing is simulated.  That trade
buys an order of magnitude in throughput, which is what wide parameter
sweeps need (the headline figures still come from the pipeline engine).

How the speed is obtained
-------------------------

* **Batch decomposition.**  Non-memory instructions never enter the hot
  loop at all: a numpy mask selects loads/stores/software prefetches,
  and line addresses, set indices and filter-table indices are computed
  for the whole trace in a handful of vectorised operations
  (:mod:`repro.mem.geometry`, :func:`repro.common.hashing.table_index_array`).
* **Compact integer state.**  Cache sets live in flat Python lists of
  integers (tag/dirty/PIB/RIB/tag-bit/source/PC/filter-index per way)
  instead of per-line objects; the per-access work is a couple of list
  index operations.
* **Immediate prefetch issue.**  Prefetches that survive the duplicate
  squash and the filter fill the L1 at the point of generation — no
  queue occupancy, port arbitration, MSHR tracking or bus occupancy is
  simulated (their *traffic counters* are still maintained).
* **Deferred statistics.**  Event counts accumulate in a plain integer
  list and are folded into the shared :class:`~repro.common.stats.Stats`
  tree only at the warmup boundary and at the end of the run.

Fidelity contract
-----------------

The functional update order per memory access mirrors
:meth:`repro.mem.hierarchy.MemoryHierarchy.demand_access` exactly
(NSP-tag consume, L1 probe, L2 probe counted as a demand read, memory
fetch, fills, eviction feedback into classifier and filter, dirty
writebacks).  The one deliberate semantic difference is **prefetch
issue under zero contention**: every request that survives the
duplicate squash and the pollution filter fills the L1 at its
generation point.  The pipeline instead holds requests in a bounded
queue gated by L1-port idleness and an MSHR demand reserve, so under
port saturation its prefetches issue hundreds of cycles late, overflow
as drops, or die as late-duplicate squashes — an emergent timing
feedback this engine intentionally does not chase.

Two parity regimes follow, and ``tests/test_vector_engine.py`` pins
both:

* **Contention-free configs** (ample ports, MSHRs and queue slots,
  unit latencies — :func:`relaxed_config` builds one): the pipeline's
  throttles never bind, and classification counters match the pipeline
  engine exactly or to within a few counts (residual deltas come only
  from LRU-stamp ties: cycle timestamps there, access sequence numbers
  here).
* **Paper-default configs**: counters diverge where classification is
  *timeliness*-coupled (``good``/``issued`` under port saturation);
  demand-access counts stay exact and miss counts stay within
  documented bounds.  ``repro-sim bench --engines`` records the
  measured per-counter deltas alongside the speedups, so every sweep
  that trades the pipeline for this tier knows the gap it accepted.

Use the vector tier to rank filters and sweep table geometries (the
paper's accuracy questions); use the pipeline tier for anything that
quotes IPC, port counts or queue behaviour.  Cycle counts here are a
crude closed-form estimate (dispatch bandwidth plus an MLP-discounted
miss-latency sum) kept only so IPC-shaped code paths do not divide by
zero — **never quote vector-engine IPC**.

Unsupported configurations (a clear :class:`ValueError` is raised):
the stride prefetcher and the Section 5.5 prefetch buffer, both of
which only feature in pipeline-engine ablations.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import table_index, table_index_array
from repro.filters.null_filter import NullFilter
from repro.filters.pa_filter import PAFilter
from repro.filters.pc_filter import PCFilter
from repro.mem.bus import TransferKind
from repro.mem.cache import FillSource
from repro.prefetch.base import PrefetchRequest
from repro.core.pipeline import OoOPipeline
from repro.sanitize import SanitizerViolation
from repro.trace.record import InstrClass
from repro.trace.stream import Trace

#: divisor applied to the summed miss latency in the cycle estimate —
#: stands in for the memory-level parallelism the OoO window extracts.
_MLP_DIVISOR = 4


def relaxed_config(config):
    """A contention-free twin of ``config`` for vector/pipeline parity.

    Same caches, prefetchers and filter, but every throttle that delays
    or drops a pipeline prefetch is widened until it cannot bind: unit
    miss latencies (no stall shadows, so MSHR residency is momentary),
    L1 ports matching the issue width (the port arbiter never backs
    up), and MSHR/queue capacities far above any reachable occupancy.
    Under such a machine the pipeline issues every surviving prefetch
    promptly — the semantic the vector engine implements directly — so
    the two engines' classification counters must agree.
    """
    from dataclasses import replace

    h = config.hierarchy
    return replace(
        config,
        hierarchy=replace(
            h,
            l1=replace(h.l1, latency=1, ports=config.processor.issue_width),
            l2=replace(h.l2, latency=1),
            memory_latency=1,
            mshr_entries=1 << 16,
        ),
        prefetch=replace(config.prefetch, queue_entries=1 << 16),
    )

# Slots of the deferred-counter list ``K`` (folded into the stats tree
# by ``fold`` below; one integer add per event on the hot path).
(
    _RH, _RM, _WH, _WM, _FU, _DUP1, _EV, _EVU, _EVN, _PF1, _DF1,
    _L2RH, _L2RM, _L2DUP, _L2EV, _L2DF,
    _B1D, _B1P, _B1W, _BMD, _BMP, _BMW,
    _NSPM, _NSPT, _SDPI, _SDPS, _SDPL, _SDPC, _SWX,
    _FA, _FR, _FBG, _FBB, _TLG, _TLB, _TTG, _TTB,
) = range(37)
_NK = 37

# PrefetchTally field order used by the per-source rows of ``T``.
_GEN, _SQ, _FLT, _DRP, _ISS, _GOOD, _BAD = range(7)


class VectorEngine(OoOPipeline):
    """Classification-accurate batch engine (no cycle-level timing)."""

    def _check_supported(self) -> None:
        if self.stride is not None:
            raise ValueError(
                "the vector engine does not model the stride/extension "
                "prefetcher; run stride configurations on the pipeline engine"
            )
        if self.hierarchy.buffer is not None:
            raise ValueError(
                "the vector engine does not model the prefetch buffer "
                "(Section 5.5); run buffer configurations on the pipeline engine"
            )

    # The method is one long closure nest on purpose: every piece of
    # mutable state and every counter is a local (or cell) variable of
    # run(), which is what makes the per-access cost a few list ops.
    def run(self, trace: Trace) -> int:  # noqa: C901 - deliberate hot loop
        self._check_supported()
        cfg = self.config
        n = len(trace)
        limit = cfg.max_instructions
        if limit is not None:
            n = min(n, limit)

        l1cfg = cfg.hierarchy.l1
        l2cfg = cfg.hierarchy.l2
        offset_bits = l1cfg.offset_bits
        l1_mask = l1cfg.num_sets - 1
        l2_mask = l2cfg.num_sets - 1
        W1 = l1cfg.ways
        W2 = l2cfg.ways
        dm = W1 == 1  # direct-mapped L1 fast paths (all paper configs)
        wb_cfg = l1cfg.writeback
        nsp_on = self.nsp is not None
        sdp_on = self.sdp is not None
        sw_on = self.sw_unit is not None
        degree = cfg.prefetch.degree
        tag_fills_i = 1 if self._tag_fills else 0

        # ---- batch precompute (the vectorised part) ----------------------
        iclass = trace.iclass[:n]
        LOAD = int(InstrClass.LOAD)
        STORE = int(InstrClass.STORE)
        SW_PF = int(InstrClass.SW_PREFETCH)
        mask = (iclass == LOAD) | (iclass == STORE)
        if sw_on:
            mask |= iclass == SW_PF
        midx = np.nonzero(mask)[0]
        n_mem = len(midx)
        pcs = trace.pc[:n][mask]
        lines_arr = trace.addr[:n][mask] >> np.uint64(offset_bits)
        mcls = iclass[mask].tolist()
        mpc = pcs.tolist()
        mline = lines_arr.tolist()

        # Filter fast paths: exact NullFilter/PAFilter/PCFilter instances
        # run inline on a plain-list copy of the 2-bit counter table;
        # anything else (adaptive, static, oracle, user subclasses) goes
        # through the real object, request by request.
        filt = self.filter
        ftype = type(filt)
        is_null = ftype is NullFilter
        is_pa = ftype is PAFilter
        is_pc = ftype is PCFilter
        is_table = is_pa or is_pc
        tvals: list = []
        thresh = maxv = 0
        E = SCH = None
        if is_table:
            table = filt.table
            E = table.entries
            SCH = table.hash_scheme
            thresh = table.counters.threshold
            maxv = table.counters.max_value
            tvals = table.counters.values.tolist()

        # Per-memory-op filter-table index columns, so the hot loop never
        # hashes: the PA scheme keys on the prefetched line address, the
        # PC scheme on the trigger PC (one index serves every request the
        # instruction generates).
        zeros = [0] * n_mem
        selffid = zeros
        nspfid: list = [zeros] * degree
        if is_pa:
            if nsp_on:
                nspfid = [
                    table_index_array(lines_arr + np.uint64(d), E, SCH).tolist()
                    for d in range(1, degree + 1)
                ]
            if sw_on:
                selffid = table_index_array(lines_arr, E, SCH).tolist()
        elif is_pc:
            pcf = table_index_array(pcs, E, SCH).tolist()
            selffid = pcf
            nspfid = [pcf] * degree

        # ---- compact cache state -----------------------------------------
        n1 = l1cfg.num_sets * W1
        l1_tag = [-1] * n1
        l1_dirty = [0] * n1
        l1_pib = [0] * n1
        l1_rib = [0] * n1
        l1_nsp = [0] * n1
        l1_src = [0] * n1
        l1_tpc = [0] * n1
        l1_fid = [0] * n1
        l1_stamp = [0] * n1
        n2 = l2cfg.num_sets * W2
        l2_tag = [-1] * n2
        l2_dirty = [0] * n2
        l2_stamp = [0] * n2

        # SDP shadow directory, inlined as plain dicts (entry = [shadow,
        # confirmed]); counter semantics mirror ShadowDirectoryPrefetcher.
        sdp_dir: dict = {}
        sdp_await: dict = {}
        sdp_last = -1

        K = [0] * _NK
        T = [[0] * 7 for _ in range(5)]  # per-FillSource lifecycle rows
        cum = [0, 0]  # cumulative (L1 demand misses, memory fetches)

        hierarchy = self.hierarchy
        classifier = self.classifier
        filt_should = filt.should_prefetch
        filt_feedback = filt.on_feedback_ex

        # ---- nested update helpers (cold-ish paths) ----------------------
        def feedback(vline: int, vtpc: int, vrib: int, vsrc: int, vfid: int) -> None:
            """Evicted-PIB-line feedback into the pollution filter."""
            if is_table:
                v = tvals[vfid]
                if vrib:
                    K[_FBG] += 1
                    K[_TTG] += 1
                    if v < maxv:
                        tvals[vfid] = v + 1
                else:
                    K[_FBB] += 1
                    K[_TTB] += 1
                    if v > 0:
                        tvals[vfid] = v - 1
            elif is_null:
                if vrib:
                    K[_FBG] += 1
                else:
                    K[_FBB] += 1
            else:
                filt_feedback(vline, vtpc, bool(vrib), FillSource(vsrc))

        def confirm(cline: int) -> None:
            """SDP confirmation: a prefetched line saw its first use."""
            parent = sdp_await.pop(cline, None)
            if parent is None:
                return
            e = sdp_dir.get(parent)
            if e is not None and e[0] == cline:
                e[1] = True
                K[_SDPC] += 1

        def l2_fetch(pline: int, is_pf: bool, tick: int) -> bool:
            """L2 probe (counted as a demand read) + memory fetch on miss."""
            b = (pline & l2_mask) * W2
            inv = -1
            for w in range(b, b + W2):
                t = l2_tag[w]
                if t == pline:
                    K[_L2RH] += 1
                    l2_stamp[w] = tick
                    return True
                if inv < 0 and t == -1:
                    inv = w
            K[_L2RM] += 1
            if is_pf:
                K[_BMP] += 1
            else:
                K[_BMD] += 1
            if inv >= 0:
                vw = inv
            else:
                vw = b
                best = l2_stamp[b]
                for w in range(b + 1, b + W2):
                    s = l2_stamp[w]
                    if s < best:
                        best = s
                        vw = w
                K[_L2EV] += 1
                if l2_dirty[vw]:
                    K[_BMW] += 1
                if sdp_on:
                    sdp_dir.pop(l2_tag[vw], None)
            l2_tag[vw] = pline
            l2_dirty[vw] = 0
            l2_stamp[vw] = tick
            K[_L2DF] += 1
            return False

        def l2_writeback(vline: int, tick: int) -> None:
            """Dirty L1 victim lands in the L2 (write-back, write-allocate)."""
            K[_B1W] += 1
            b = (vline & l2_mask) * W2
            inv = -1
            for w in range(b, b + W2):
                t = l2_tag[w]
                if t == vline:
                    l2_stamp[w] = tick
                    l2_dirty[w] = 1
                    K[_L2DUP] += 1
                    return
                if inv < 0 and t == -1:
                    inv = w
            if inv >= 0:
                vw = inv
            else:
                vw = b
                best = l2_stamp[b]
                for w in range(b + 1, b + W2):
                    s = l2_stamp[w]
                    if s < best:
                        best = s
                        vw = w
                K[_L2EV] += 1
                if l2_dirty[vw]:
                    K[_BMW] += 1
                if sdp_on:
                    sdp_dir.pop(l2_tag[vw], None)
            l2_tag[vw] = vline
            l2_dirty[vw] = 1
            l2_stamp[vw] = tick
            K[_L2DF] += 1

        def l1_fill_dm(
            fline: int, fpib: int, fsrc: int, ftpc: int, ffid: int,
            fnsp: int, fdirty: int, tick: int,
        ) -> None:
            """Direct-mapped L1 fill fast path (every paper config).

            Callers only fill lines they just proved absent, so the
            duplicate-fill branch of Cache.fill cannot trigger and is
            elided here (the generic variant keeps it).
            """
            vw = fline & l1_mask
            vtag = l1_tag[vw]
            vdirty = 0
            if vtag != -1:
                K[_EV] += 1
                vdirty = l1_dirty[vw]
                if l1_pib[vw]:
                    vrib = l1_rib[vw]
                    row = T[l1_src[vw]]
                    if vrib:
                        K[_EVU] += 1
                        row[_GOOD] += 1
                    else:
                        K[_EVN] += 1
                        row[_BAD] += 1
                    feedback(vtag, l1_tpc[vw], vrib, l1_src[vw], l1_fid[vw])
            l1_tag[vw] = fline
            l1_dirty[vw] = fdirty
            l1_pib[vw] = fpib
            l1_rib[vw] = 0
            l1_nsp[vw] = fnsp
            l1_src[vw] = fsrc
            l1_tpc[vw] = ftpc
            l1_fid[vw] = ffid
            if fpib:
                K[_PF1] += 1
            else:
                K[_DF1] += 1
            if vdirty:
                l2_writeback(vtag, tick)

        def l1_fill_assoc(
            fline: int, fpib: int, fsrc: int, ftpc: int, ffid: int,
            fnsp: int, fdirty: int, tick: int,
        ) -> None:
            """L1 fill with eviction feedback, mirroring Cache.fill order:
            victim feedback fires before the new line is written, the dirty
            writeback after."""
            b = (fline & l1_mask) * W1
            inv = -1
            for w in range(b, b + W1):
                t = l1_tag[w]
                if t == fline:
                    l1_stamp[w] = tick
                    if fdirty:
                        l1_dirty[w] = 1
                    K[_DUP1] += 1
                    return
                if inv < 0 and t == -1:
                    inv = w
            vdirty = 0
            vtag = -1
            if inv >= 0:
                vw = inv
            else:
                vw = b
                best = l1_stamp[b]
                for w in range(b + 1, b + W1):
                    s = l1_stamp[w]
                    if s < best:
                        best = s
                        vw = w
                K[_EV] += 1
                vtag = l1_tag[vw]
                vdirty = l1_dirty[vw]
                if l1_pib[vw]:
                    vrib = l1_rib[vw]
                    row = T[l1_src[vw]]
                    if vrib:
                        K[_EVU] += 1
                        row[_GOOD] += 1
                    else:
                        K[_EVN] += 1
                        row[_BAD] += 1
                    feedback(vtag, l1_tpc[vw], vrib, l1_src[vw], l1_fid[vw])
            l1_tag[vw] = fline
            l1_dirty[vw] = fdirty
            l1_pib[vw] = fpib
            l1_rib[vw] = 0
            l1_nsp[vw] = fnsp
            l1_src[vw] = fsrc
            l1_tpc[vw] = ftpc
            l1_fid[vw] = ffid
            l1_stamp[vw] = tick
            if fpib:
                K[_PF1] += 1
            else:
                K[_DF1] += 1
            if vdirty:
                l2_writeback(vtag, tick)

        l1_fill = l1_fill_dm if W1 == 1 else l1_fill_assoc

        # Zero-contention issue: every request that survives the duplicate
        # squash and the pollution filter fills the L1 at its generation
        # point.  The pipeline's queue/port/MSHR contention (which delays
        # and drops prefetches) is deliberately *not* modelled — see the
        # module docstring for the fidelity contract this buys and costs.
        def route(rline: int, rpc: int, rsrc: int, rfid: int, tick: int) -> None:
            """Generated -> duplicate squash -> filter -> immediate issue."""
            row = T[rsrc]
            row[_GEN] += 1
            if dm:
                if l1_tag[rline & l1_mask] == rline:
                    row[_SQ] += 1
                    return
            else:
                b = (rline & l1_mask) * W1
                for w in range(b, b + W1):
                    if l1_tag[w] == rline:
                        row[_SQ] += 1
                        return
            if is_table:
                if tvals[rfid] >= thresh:
                    K[_TLG] += 1
                    K[_FA] += 1
                else:
                    K[_TLB] += 1
                    K[_FR] += 1
                    row[_FLT] += 1
                    return
            elif is_null:
                K[_FA] += 1
            elif not filt_should(PrefetchRequest(rline, rpc, FillSource(rsrc))):
                row[_FLT] += 1
                return
            row[_ISS] += 1
            l2_fetch(rline, True, tick)
            K[_B1P] += 1
            l1_fill(rline, 1, rsrc, rpc, rfid, tag_fills_i, 0, tick)

        # ---- hot loop -----------------------------------------------------
        def simulate(start: int, stop: int) -> None:
            nonlocal sdp_last
            mcls_ = mcls
            mpc_ = mpc
            mline_ = mline
            ltag = l1_tag
            ldirty = l1_dirty
            lpib = l1_pib
            lrib = l1_rib
            lnsp = l1_nsp
            lstamp = l1_stamp
            K_ = K
            nspfid_ = nspfid
            selffid_ = selffid
            dm_ = dm
            for i in range(start, stop):
                cls = mcls_[i]
                line = mline_[i]
                if cls == SW_PF:
                    K_[_SWX] += 1
                    route(line, mpc_[i], 3, selffid_[i], i)
                    continue
                is_write = cls == STORE
                if dm_:
                    hw = line & l1_mask
                    if ltag[hw] != line:
                        hw = -1
                else:
                    b = (line & l1_mask) * W1
                    hw = -1
                    for w in range(b, b + W1):
                        if ltag[w] == line:
                            hw = w
                            break
                if hw >= 0:
                    tag_hit = False
                    if nsp_on and lnsp[hw]:
                        lnsp[hw] = 0
                        tag_hit = True
                    if is_write:
                        K_[_WH] += 1
                        ldirty[hw] = 1
                    else:
                        K_[_RH] += 1
                    if lpib[hw] and not lrib[hw]:
                        lrib[hw] = 1
                        K_[_FU] += 1
                        if sdp_on:
                            confirm(line)
                    lstamp[hw] = i
                    if tag_hit:
                        K_[_NSPT] += 1
                        pc = mpc_[i]
                        for d in range(1, degree + 1):
                            route(line + d, pc, 1, nspfid_[d - 1][i], i)
                else:
                    if is_write:
                        K_[_WM] += 1
                    else:
                        K_[_RM] += 1
                    l2_fetch(line, False, i)
                    K_[_B1D] += 1
                    l1_fill(
                        line, 0, 0, 0, 0, 0,
                        1 if (is_write and wb_cfg) else 0, i,
                    )
                    pc = mpc_[i]
                    if nsp_on:
                        K_[_NSPM] += 1
                        for d in range(1, degree + 1):
                            route(line + d, pc, 1, nspfid_[d - 1][i], i)
                    if sdp_on:
                        e = sdp_dir.get(line)
                        if e is not None and e[0] != line:
                            if e[1]:
                                e[1] = False
                                shadow = e[0]
                                sdp_await[shadow] = line
                                K_[_SDPI] += 1
                                route(
                                    shadow, pc, 2,
                                    table_index(shadow, E, SCH) if is_pa else selffid_[i],
                                    i,
                                )
                            else:
                                K_[_SDPS] += 1
                        prev = sdp_last
                        if prev != -1 and prev != line:
                            old = sdp_dir.get(prev)
                            if old is None or old[0] != line:
                                sdp_dir[prev] = [line, True]
                                K_[_SDPL] += 1
                        sdp_last = line

        # ---- deferred-statistics fold ------------------------------------
        def fold() -> None:
            l1 = hierarchy.l1
            l1._n_read_hit += K[_RH]
            l1._n_read_miss += K[_RM]
            l1._n_write_hit += K[_WH]
            l1._n_write_miss += K[_WM]
            l1._n_first_use += K[_FU]
            l1._n_duplicate_fill += K[_DUP1]
            l1._n_evictions += K[_EV]
            l1._n_evicted_used += K[_EVU]
            l1._n_evicted_unused += K[_EVN]
            l1._n_prefetch_fill += K[_PF1]
            l1._n_demand_fill += K[_DF1]
            l2 = hierarchy.l2
            l2._n_read_hit += K[_L2RH]
            l2._n_read_miss += K[_L2RM]
            l2._n_duplicate_fill += K[_L2DUP]
            l2._n_evictions += K[_L2EV]
            l2._n_demand_fill += K[_L2DF]
            b1 = hierarchy.l1_bus._n_kind
            b1[TransferKind.DEMAND_FILL] += K[_B1D]
            b1[TransferKind.PREFETCH_FILL] += K[_B1P]
            b1[TransferKind.WRITEBACK] += K[_B1W]
            bm = hierarchy.mem_bus._n_kind
            bm[TransferKind.DEMAND_FILL] += K[_BMD]
            bm[TransferKind.PREFETCH_FILL] += K[_BMP]
            bm[TransferKind.WRITEBACK] += K[_BMW]
            if nsp_on:
                self.nsp._n_trigger_miss += K[_NSPM]
                self.nsp._n_trigger_tag += K[_NSPT]
            if sdp_on:
                self.sdp._n_issued += K[_SDPI]
                self.sdp._n_suppressed += K[_SDPS]
                self.sdp._n_learned += K[_SDPL]
                self.sdp._n_confirmed += K[_SDPC]
            if sw_on:
                self.sw_unit._n_executed += K[_SWX]
            filt._n_allowed += K[_FA]
            filt._n_rejected += K[_FR]
            filt._n_fb_good += K[_FBG]
            filt._n_fb_bad += K[_FBB]
            if is_table:
                table = filt.table
                table._n_lookup_good += K[_TLG]
                table._n_lookup_bad += K[_TLB]
                table._n_train_good += K[_TTG]
                table._n_train_bad += K[_TTB]
                table.counters.values[:] = tvals
            for src in (1, 2, 3, 4):
                row = T[src]
                if any(row):
                    tally = classifier.per_source[FillSource(src)]
                    tally.generated += row[_GEN]
                    tally.squashed += row[_SQ]
                    tally.filtered += row[_FLT]
                    tally.dropped += row[_DRP]
                    tally.issued += row[_ISS]
                    tally.good += row[_GOOD]
                    tally.bad += row[_BAD]
                    for j in range(7):
                        row[j] = 0
            cum[0] += K[_RM] + K[_WM]
            cum[1] += K[_BMD] + K[_BMP]
            for j in range(_NK):
                K[j] = 0

        def estimate(n_insts: int) -> int:
            """Crude monotone cycle stand-in (dispatch + MLP-divided misses).

            Good enough to keep IPC-shaped code from dividing by zero;
            not a timing model — see the module docstring.
            """
            l2_lat = cfg.hierarchy.l2.latency
            mem_lat = cfg.hierarchy.memory_latency
            stall = cum[0] * l2_lat + cum[1] * mem_lat
            return max(1, n_insts // cfg.processor.issue_width + stall // _MLP_DIVISOR)

        # ---- sanitizer checks over the compact state ---------------------
        # The compact flat-list cache is this engine's own re-implementation
        # of the PIB/RIB machinery, so it gets its own invariant sweep (the
        # object-based Cache.validate never sees these lists).
        def check_state(pos: int) -> None:
            for w in range(n1):
                t = l1_tag[w]
                if t == -1:
                    continue
                set_index = w if dm else w // W1
                if (t & l1_mask) != set_index:
                    raise SanitizerViolation(
                        "vector.l1",
                        f"way {w} holds line {t:#x}, which does not map to "
                        f"set {set_index}: frame/tag desync",
                        cycle=pos,
                        snapshot={"way": w, "tag": t, "set": set_index},
                    )
                if l1_rib[w] and not l1_pib[w]:
                    raise SanitizerViolation(
                        "vector.l1",
                        f"way {w}: RIB set without PIB — referenced bit "
                        "without prefetch lineage",
                        cycle=pos,
                        snapshot={"way": w, "tag": t, "pib": l1_pib[w], "rib": l1_rib[w]},
                    )
                if bool(l1_pib[w]) != (l1_src[w] != 0):
                    raise SanitizerViolation(
                        "vector.l1",
                        f"way {w}: PIB={l1_pib[w]} disagrees with fill "
                        f"source {l1_src[w]}: prefetch lineage lost",
                        cycle=pos,
                        snapshot={"way": w, "tag": t, "pib": l1_pib[w], "source": l1_src[w]},
                    )
            if not dm:
                for s in range(n1 // W1):
                    b = s * W1
                    resident = [t for t in l1_tag[b : b + W1] if t != -1]
                    if len(resident) != len(set(resident)):
                        raise SanitizerViolation(
                            "vector.l1",
                            f"duplicate tag in set {s}: the same line is "
                            "resident in two ways",
                            cycle=pos,
                            snapshot={"set": s, "tags": resident},
                        )
            if is_table and tvals:
                lo, hi = min(tvals), max(tvals)
                if lo < 0 or hi > maxv:
                    bad = hi if hi > maxv else lo
                    index = tvals.index(bad)
                    raise SanitizerViolation(
                        "vector.history_table",
                        f"counter {index} holds {bad}, outside [0, {maxv}]",
                        cycle=pos,
                        snapshot={"index": index, "value": bad, "max": maxv},
                    )

        def check_l2(pos: int) -> None:
            for w in range(n2):
                t = l2_tag[w]
                if t != -1 and (t & l2_mask) != w // W2:
                    raise SanitizerViolation(
                        "vector.l2",
                        f"way {w} holds line {t:#x}, which does not map to "
                        f"set {w // W2}: frame/tag desync",
                        cycle=pos,
                        snapshot={"way": w, "tag": t, "set": w // W2},
                    )

        sanitizer = self.sanitizer

        def drive(start: int, stop: int) -> None:
            """Run a span; with the sanitizer on, sweep every ``interval``
            memory ops (chunked outside simulate(), so the disabled path
            pays nothing inside the hot loop)."""
            if sanitizer is None:
                if stop > start:
                    simulate(start, stop)
                return
            pos = start
            step = max(1, sanitizer.interval)
            while pos < stop:
                nxt = min(stop, pos + step)
                simulate(pos, nxt)
                tripped = sanitizer.fire_trip()
                if tripped:
                    # Deliberate RIB-without-PIB corruption in way 0 (tag 0
                    # maps to set 0 in both dm and assoc layouts); the
                    # check_state sweep below must catch it.
                    l1_tag[0] = 0
                    l1_pib[0] = 0
                    l1_rib[0] = 1
                    l1_src[0] = 0
                check_state(nxt)
                if tripped:  # pragma: no cover - reachable only if a check rots
                    raise SanitizerViolation(
                        "vector.sanitizer",
                        "injected invariant trip went undetected",
                        cycle=nxt,
                    )
                pos = nxt

        # ---- drive the spans ---------------------------------------------
        warmup = min(cfg.warmup_instructions, n)
        if warmup and warmup < n and self.on_warmup is not None:
            split = int(np.searchsorted(midx, warmup))
            drive(0, split)
            fold()
            self.on_warmup(estimate(warmup))
            drive(split, n_mem)
        else:
            drive(0, n_mem)

        # Final flush: classify still-resident prefetched lines exactly the
        # way Cache.flush does — feedback fires, eviction counters do not.
        for w in range(n1):
            if l1_tag[w] != -1 and l1_pib[w]:
                vrib = l1_rib[w]
                row = T[l1_src[w]]
                if vrib:
                    row[_GOOD] += 1
                else:
                    row[_BAD] += 1
                feedback(l1_tag[w], l1_tpc[w], vrib, l1_src[w], l1_fid[w])
        fold()

        if sanitizer is not None:
            check_state(n_mem)
            check_l2(n_mem)

        cycles = estimate(n)
        self.stats.set("instructions", n)
        self.stats.set("cycles", cycles)
        return cycles
