"""Branch prediction: bimodal predictor and BTB (Table 1).

The machine fetches past conditional branches using a 2048-entry bimodal
(per-PC 2-bit saturating counter) direction predictor and a 4-way,
4096-set branch target buffer.  A direction mispredict — or a taken branch
whose target is absent from the BTB — costs a pipeline flush.

The trace carries branch outcomes but not target addresses (synthetic
workloads have no real code layout), so the BTB is modelled on branch PCs:
a taken branch must have a BTB entry to redirect fetch in time; entries are
allocated on taken branches and replaced LRU within a set.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import table_index
from repro.common.saturating import SaturatingCounterArray
from repro.common.stats import StatGroup


class BimodalPredictor:
    """Per-PC 2-bit saturating counter direction predictor."""

    def __init__(self, entries: int = 2048, stats: StatGroup | None = None) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("predictor entries must be a positive power of two")
        self.entries = entries
        # Initialise weakly-taken: the classic bimodal reset state.
        self.counters = SaturatingCounterArray(entries, bits=2, initial=2, threshold=2)
        self.stats = stats if stats is not None else StatGroup("bimodal")

    def _index(self, pc: int) -> int:
        # Branch PCs are word aligned; drop the low bits before indexing.
        return table_index(pc >> 2, self.entries, "modulo")

    def predict(self, pc: int) -> bool:
        return self.counters.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.counters.update(self._index(pc), taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """One predictor consultation; returns True when the guess was right."""
        i = self._index(pc)
        correct = self.counters.predict(i) == taken
        self.counters.update(i, taken)
        self.stats.bump("correct" if correct else "mispredict")
        return correct


class BranchTargetBuffer:
    """Set-associative PC -> target presence tracker (LRU within a set)."""

    def __init__(self, sets: int = 4096, ways: int = 4, stats: StatGroup | None = None) -> None:
        if sets < 1 or sets & (sets - 1):
            raise ValueError("BTB sets must be a positive power of two")
        if ways < 1:
            raise ValueError("BTB needs at least one way")
        self.sets, self.ways = sets, ways
        self.tags = np.full((sets, ways), -1, dtype=np.int64)
        self.stamp = np.zeros((sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = stats if stats is not None else StatGroup("btb")

    def lookup_and_allocate(self, pc: int, taken: bool) -> bool:
        """Probe for a branch; allocate on taken. Returns hit (target known)."""
        self._clock += 1
        s = table_index(pc >> 2, self.sets, "modulo")
        row = self.tags[s]
        for w in range(self.ways):
            if row[w] == pc:
                self.stamp[s, w] = self._clock
                self.stats.bump("hit")
                return True
        self.stats.bump("miss")
        if taken:
            w = int(np.argmin(self.stamp[s]))
            self.tags[s, w] = pc
            self.stamp[s, w] = self._clock
            self.stats.bump("allocated")
        return False


class BranchUnit:
    """Direction predictor + BTB composed into one resolve() call."""

    def __init__(
        self,
        predictor_entries: int = 2048,
        btb_sets: int = 4096,
        btb_ways: int = 4,
        stats: StatGroup | None = None,
    ) -> None:
        root = stats if stats is not None else StatGroup("branch")
        self.stats = root
        self.predictor = BimodalPredictor(predictor_entries, root["bimodal"])
        self.btb = BranchTargetBuffer(btb_sets, btb_ways, root["btb"])

    def resolve(self, pc: int, taken: bool) -> bool:
        """Process one dynamic branch; True when fetch proceeded unbroken.

        A taken branch redirects fetch correctly only when the direction was
        predicted *and* the BTB supplied the target.
        """
        direction_ok = self.predictor.predict_and_update(pc, taken)
        target_ok = self.btb.lookup_and_allocate(pc, taken)
        ok = direction_ok and (target_ok or not taken)
        self.stats.bump("flushes" if not ok else "clean")
        return ok
