"""Branch prediction: bimodal predictor and BTB (Table 1).

The machine fetches past conditional branches using a 2048-entry bimodal
(per-PC 2-bit saturating counter) direction predictor and a 4-way,
4096-set branch target buffer.  A direction mispredict — or a taken branch
whose target is absent from the BTB — costs a pipeline flush.

The trace carries branch outcomes but not target addresses (synthetic
workloads have no real code layout), so the BTB is modelled on branch PCs:
a taken branch must have a BTB entry to redirect fetch in time; entries are
allocated on taken branches and replaced LRU within a set.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import table_index
from repro.common.saturating import SaturatingCounterArray
from repro.common.stats import StatGroup


class BimodalPredictor:
    """Per-PC 2-bit saturating counter direction predictor."""

    def __init__(self, entries: int = 2048, stats: StatGroup | None = None) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("predictor entries must be a positive power of two")
        self.entries = entries
        # Initialise weakly-taken: the classic bimodal reset state.
        self.counters = SaturatingCounterArray(entries, bits=2, initial=2, threshold=2)
        self.stats = stats if stats is not None else StatGroup("bimodal")
        self._n_correct = 0
        self._n_mispredict = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        if self._n_correct:
            c["correct"] = c.get("correct", 0) + self._n_correct
            self._n_correct = 0
        if self._n_mispredict:
            c["mispredict"] = c.get("mispredict", 0) + self._n_mispredict
            self._n_mispredict = 0

    def _index(self, pc: int) -> int:
        # Branch PCs are word aligned; drop the low bits before indexing.
        return table_index(pc >> 2, self.entries, "modulo")

    def predict(self, pc: int) -> bool:
        return self.counters.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.counters.update(self._index(pc), taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """One predictor consultation; returns True when the guess was right."""
        i = self._index(pc)
        correct = self.counters.predict(i) == taken
        self.counters.update(i, taken)
        if correct:
            self._n_correct += 1
        else:
            self._n_mispredict += 1
        return correct


class BranchTargetBuffer:
    """Set-associative PC -> target presence tracker (LRU within a set)."""

    def __init__(self, sets: int = 4096, ways: int = 4, stats: StatGroup | None = None) -> None:
        if sets < 1 or sets & (sets - 1):
            raise ValueError("BTB sets must be a positive power of two")
        if ways < 1:
            raise ValueError("BTB needs at least one way")
        self.sets, self.ways = sets, ways
        self.tags = np.full((sets, ways), -1, dtype=np.int64)
        self.stamp = np.zeros((sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = stats if stats is not None else StatGroup("btb")
        self._n_hit = 0
        self._n_miss = 0
        self._n_allocated = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        if self._n_hit:
            c["hit"] = c.get("hit", 0) + self._n_hit
            self._n_hit = 0
        if self._n_miss:
            c["miss"] = c.get("miss", 0) + self._n_miss
            self._n_miss = 0
        if self._n_allocated:
            c["allocated"] = c.get("allocated", 0) + self._n_allocated
            self._n_allocated = 0

    def lookup_and_allocate(self, pc: int, taken: bool) -> bool:
        """Probe for a branch; allocate on taken. Returns hit (target known)."""
        self._clock += 1
        s = table_index(pc >> 2, self.sets, "modulo")
        row = self.tags[s]
        for w in range(self.ways):
            if row[w] == pc:
                self.stamp[s, w] = self._clock
                self._n_hit += 1
                return True
        self._n_miss += 1
        if taken:
            w = int(np.argmin(self.stamp[s]))
            self.tags[s, w] = pc
            self.stamp[s, w] = self._clock
            self._n_allocated += 1
        return False


class BranchUnit:
    """Direction predictor + BTB composed into one resolve() call."""

    def __init__(
        self,
        predictor_entries: int = 2048,
        btb_sets: int = 4096,
        btb_ways: int = 4,
        stats: StatGroup | None = None,
    ) -> None:
        root = stats if stats is not None else StatGroup("branch")
        self.stats = root
        self.predictor = BimodalPredictor(predictor_entries, root["bimodal"])
        self.btb = BranchTargetBuffer(btb_sets, btb_ways, root["btb"])
        self._n_flushes = 0
        self._n_clean = 0
        root.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        if self._n_flushes:
            c["flushes"] = c.get("flushes", 0) + self._n_flushes
            self._n_flushes = 0
        if self._n_clean:
            c["clean"] = c.get("clean", 0) + self._n_clean
            self._n_clean = 0

    def resolve(self, pc: int, taken: bool) -> bool:
        """Process one dynamic branch; True when fetch proceeded unbroken.

        A taken branch redirects fetch correctly only when the direction was
        predicted *and* the BTB supplied the target.
        """
        direction_ok = self.predictor.predict_and_update(pc, taken)
        target_ok = self.btb.lookup_and_allocate(pc, taken)
        ok = direction_ok and (target_ok or not taken)
        if ok:
            self._n_clean += 1
        else:
            self._n_flushes += 1
        return ok
