"""Flat-array classification kernels — the compiled tier's source of truth.

This module holds the hot loop of :class:`~repro.core.kernel.KernelEngine`
written once, in a deliberately restricted dialect: module-level functions
over preallocated flat numpy arrays, scalar integer locals, no Python
objects, no closures, no allocation.  That dialect is the intersection of
three execution legs:

* **jit** — when :mod:`numba` is importable (and ``NUMBA_DISABLE_JIT`` is
  not set), every function below is wrapped in ``@njit(cache=True)`` at
  import time and the loop runs as native code;
* **cc** — :mod:`repro.core._ckernel` carries a line-for-line C port of
  these functions (sharing the slot constants below via generated
  ``#define`` lines), compiled on first use with the system C compiler;
* **interp** — the undecorated functions in this file run as plain
  Python, the always-available fallback.

All three legs must produce **bit-identical counters**; the golden corpus
and ``tests/test_kernel_engine.py`` enforce it.  The update rules are a
faithful port of :meth:`repro.core.vector.VectorEngine.run` — the
zero-contention functional semantics documented there — so the kernel
tier inherits the vector tier's fidelity contract against the pipeline.

Numba-compatibility rules for editing this file:

* only integer scalars and 1-D numpy arrays cross function boundaries;
* unsigned 64-bit arithmetic (the multiplicative hash) is done through
  explicit ``np.uint64`` casts on *every* operand — mixing ``uint64``
  with a Python int literal promotes to ``float64`` under numba and
  silently corrupts the hash;
* no ``dict``/``set``/``list`` — the SDP shadow directory is an
  open-addressed table over int64 arrays (``-1`` empty, ``-2``
  tombstone) with deterministic linear probing;
* no wall clock, no RNG, no iteration over unordered containers
  (lint rule RL001 applies to this module like any hot-path module).
"""

from __future__ import annotations

import os

import numpy as np

# ----------------------------------------------------------------------
# Shared slot layout (identical to repro.core.vector's deferred counters)
# ----------------------------------------------------------------------
#: Slots of the deferred-counter array ``K``.
(
    K_RH, K_RM, K_WH, K_WM, K_FU, K_DUP1, K_EV, K_EVU, K_EVN, K_PF1, K_DF1,
    K_L2RH, K_L2RM, K_L2DUP, K_L2EV, K_L2DF,
    K_B1D, K_B1P, K_B1W, K_BMD, K_BMP, K_BMW,
    K_NSPM, K_NSPT, K_SDPI, K_SDPS, K_SDPL, K_SDPC, K_SWX,
    K_FA, K_FR, K_FBG, K_FBB, K_TLG, K_TLB, K_TTG, K_TTB,
) = range(37)
NK = 37

#: PrefetchTally field order inside each 7-slot row of ``T`` (5 rows,
#: one per FillSource, flattened row-major: ``T[src * 7 + field]``).
T_GEN, T_SQ, T_FLT, T_DRP, T_ISS, T_GOOD, T_BAD = range(7)
NT = 5 * 7

#: Scalar-parameter slots of the ``P`` array (int64).
(
    P_W1, P_L1MASK, P_W2, P_L2MASK, P_WB, P_NSP, P_SDP, P_DEGREE, P_TAGF,
    P_FMODE, P_THRESH, P_MAXV, P_TBITS, P_SCHEME, P_SDPHASH, P_NMEM,
    P_DIRMASK, P_AWMASK, P_STORE, P_SWPF,
) = range(20)
NP_PARAMS = 20

#: Filter fast-path modes (``P[P_FMODE]``).
FMODE_NULL = 0
FMODE_TABLE = 1

#: Hash-scheme ids (``P[P_SCHEME]``) — must match repro.common.hashing.
SCHEME_MODULO = 0
SCHEME_FOLD_XOR = 1
SCHEME_MULTIPLICATIVE = 2

#: Scratch slots of the ``S`` array (mutable scalars that survive spans).
S_SDP_LAST = 0
NS = 1

#: Open-addressed map sentinels.
MAP_EMPTY = -1
MAP_TOMB = -2

#: Knuth's 64-bit golden ratio (same constant as repro.common.hashing).
GOLDEN64 = 0x9E3779B97F4A7C15

_TRUTHY = frozenset({"1", "true", "yes", "on"})


# ----------------------------------------------------------------------
# Hashing (bit-identical to repro.common.hashing.table_index)
# ----------------------------------------------------------------------
def table_hash(value, bits, scheme):
    """Scalar history-table index; line/PC values are always >= 0."""
    if bits <= 0:
        return 0
    if scheme == SCHEME_MODULO:
        return value & ((1 << bits) - 1)
    if scheme == SCHEME_FOLD_XOR:
        v = value
        folded = 0
        while v != 0:
            folded ^= v
            v >>= bits
        return folded & ((1 << bits) - 1)
    u = np.uint64(value) * np.uint64(GOLDEN64)
    return int(u >> np.uint64(64 - bits))


def probe_start(key, mask):
    """First probe slot for ``key`` in a table of ``mask + 1`` slots.

    Golden-ratio multiply, then fold the high bits down (the low bits
    of a product alone depend only on the key's low bits).  ``int()``
    narrows to a 64-bit signed value under numba/C; the ``& mask``
    keeps only low bits, which agree across all three legs.
    """
    u = np.uint64(key) * np.uint64(GOLDEN64)
    u = u ^ (u >> np.uint64(33))
    return int(u) & mask


# ----------------------------------------------------------------------
# Open-addressed int64 maps (the SDP shadow directory + await set)
# ----------------------------------------------------------------------
def map_lookup(keys, mask, key):
    """Slot of ``key`` or -1; tombstones are skipped, empty terminates."""
    idx = probe_start(key, mask)
    while True:
        k = keys[idx]
        if k == key:
            return idx
        if k == MAP_EMPTY:
            return -1
        idx = (idx + 1) & mask


def map_insert(keys, mask, key):
    """Slot for ``key`` (existing or newly claimed), or -1 when full.

    Reuses the first tombstone on the probe path so deletions do not
    leak slots; the probe order is deterministic, so all three legs
    claim identical slots.
    """
    idx = probe_start(key, mask)
    first_tomb = -1
    steps = 0
    while steps <= mask:
        k = keys[idx]
        if k == key:
            return idx
        if k == MAP_EMPTY:
            if first_tomb >= 0:
                idx = first_tomb
            keys[idx] = key
            return idx
        if k == MAP_TOMB and first_tomb < 0:
            first_tomb = idx
        idx = (idx + 1) & mask
        steps += 1
    if first_tomb >= 0:
        keys[first_tomb] = key
        return first_tomb
    return -1


def map_delete(keys, mask, key):
    """Remove ``key`` if present (tombstone), mirroring dict.pop(k, None)."""
    idx = map_lookup(keys, mask, key)
    if idx >= 0:
        keys[idx] = MAP_TOMB


# ----------------------------------------------------------------------
# Filter feedback (evicted-PIB-line training)
# ----------------------------------------------------------------------
def feedback(tvals, K, vrib, vfid, fmode, maxv):
    if fmode == FMODE_TABLE:
        v = tvals[vfid]
        if vrib != 0:
            K[K_FBG] += 1
            K[K_TTG] += 1
            if v < maxv:
                tvals[vfid] = v + 1
        else:
            K[K_FBB] += 1
            K[K_TTB] += 1
            if v > 0:
                tvals[vfid] = v - 1
    else:
        if vrib != 0:
            K[K_FBG] += 1
        else:
            K[K_FBB] += 1


# ----------------------------------------------------------------------
# L2 (probe-as-demand-read + memory fetch; write-back write-allocate)
# ----------------------------------------------------------------------
def l2_fetch(l2_tag, l2_dirty, l2_stamp, dir_key, K, P, pline, is_pf, tick):
    """L2 probe (counted as a demand read) + memory fetch on miss."""
    W2 = int(P[P_W2])
    b = (pline & int(P[P_L2MASK])) * W2
    inv = -1
    for w in range(b, b + W2):
        t = l2_tag[w]
        if t == pline:
            K[K_L2RH] += 1
            l2_stamp[w] = tick
            return 1
        if inv < 0 and t == MAP_EMPTY:
            inv = w
    K[K_L2RM] += 1
    if is_pf != 0:
        K[K_BMP] += 1
    else:
        K[K_BMD] += 1
    if inv >= 0:
        vw = inv
    else:
        vw = b
        best = l2_stamp[b]
        for w in range(b + 1, b + W2):
            s = l2_stamp[w]
            if s < best:
                best = s
                vw = w
        K[K_L2EV] += 1
        if l2_dirty[vw] != 0:
            K[K_BMW] += 1
        if P[P_SDP] != 0:
            map_delete(dir_key, int(P[P_DIRMASK]), int(l2_tag[vw]))
    l2_tag[vw] = pline
    l2_dirty[vw] = 0
    l2_stamp[vw] = tick
    K[K_L2DF] += 1
    return 0


def l2_writeback(l2_tag, l2_dirty, l2_stamp, dir_key, K, P, vline, tick):
    """Dirty L1 victim lands in the L2 (write-back, write-allocate)."""
    K[K_B1W] += 1
    W2 = int(P[P_W2])
    b = (vline & int(P[P_L2MASK])) * W2
    inv = -1
    for w in range(b, b + W2):
        t = l2_tag[w]
        if t == vline:
            l2_stamp[w] = tick
            l2_dirty[w] = 1
            K[K_L2DUP] += 1
            return
        if inv < 0 and t == MAP_EMPTY:
            inv = w
    if inv >= 0:
        vw = inv
    else:
        vw = b
        best = l2_stamp[b]
        for w in range(b + 1, b + W2):
            s = l2_stamp[w]
            if s < best:
                best = s
                vw = w
        K[K_L2EV] += 1
        if l2_dirty[vw] != 0:
            K[K_BMW] += 1
        if P[P_SDP] != 0:
            map_delete(dir_key, int(P[P_DIRMASK]), int(l2_tag[vw]))
    l2_tag[vw] = vline
    l2_dirty[vw] = 1
    l2_stamp[vw] = tick
    K[K_L2DF] += 1


# ----------------------------------------------------------------------
# L1 fill with eviction feedback (Cache.fill order: victim feedback
# before the new line is written, the dirty writeback after)
# ----------------------------------------------------------------------
def l1_fill(
    l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src, l1_tpc, l1_fid, l1_stamp,
    l2_tag, l2_dirty, l2_stamp, dir_key, tvals, K, T, P,
    fline, fpib, fsrc, ftpc, ffid, fnsp, fdirty, tick,
):
    W1 = int(P[P_W1])
    fmode = int(P[P_FMODE])
    maxv = int(P[P_MAXV])
    vdirty = 0
    vtag = -1
    if W1 == 1:
        # Direct-mapped fast path: callers only fill lines they just
        # proved absent, so the duplicate-fill branch is elided.
        vw = fline & int(P[P_L1MASK])
        vtag = l1_tag[vw]
        if vtag != MAP_EMPTY:
            K[K_EV] += 1
            vdirty = l1_dirty[vw]
            if l1_pib[vw] != 0:
                vrib = l1_rib[vw]
                row = int(l1_src[vw]) * 7
                if vrib != 0:
                    K[K_EVU] += 1
                    T[row + T_GOOD] += 1
                else:
                    K[K_EVN] += 1
                    T[row + T_BAD] += 1
                feedback(tvals, K, int(vrib), int(l1_fid[vw]), fmode, maxv)
    else:
        b = (fline & int(P[P_L1MASK])) * W1
        inv = -1
        for w in range(b, b + W1):
            t = l1_tag[w]
            if t == fline:
                l1_stamp[w] = tick
                if fdirty != 0:
                    l1_dirty[w] = 1
                K[K_DUP1] += 1
                return
            if inv < 0 and t == MAP_EMPTY:
                inv = w
        if inv >= 0:
            vw = inv
        else:
            vw = b
            best = l1_stamp[b]
            for w in range(b + 1, b + W1):
                s = l1_stamp[w]
                if s < best:
                    best = s
                    vw = w
            K[K_EV] += 1
            vtag = l1_tag[vw]
            vdirty = l1_dirty[vw]
            if l1_pib[vw] != 0:
                vrib = l1_rib[vw]
                row = int(l1_src[vw]) * 7
                if vrib != 0:
                    K[K_EVU] += 1
                    T[row + T_GOOD] += 1
                else:
                    K[K_EVN] += 1
                    T[row + T_BAD] += 1
                feedback(tvals, K, int(vrib), int(l1_fid[vw]), fmode, maxv)
    l1_tag[vw] = fline
    l1_dirty[vw] = fdirty
    l1_pib[vw] = fpib
    l1_rib[vw] = 0
    l1_nsp[vw] = fnsp
    l1_src[vw] = fsrc
    l1_tpc[vw] = ftpc
    l1_fid[vw] = ffid
    l1_stamp[vw] = tick
    if fpib != 0:
        K[K_PF1] += 1
    else:
        K[K_DF1] += 1
    if vdirty != 0:
        l2_writeback(l2_tag, l2_dirty, l2_stamp, dir_key, K, P, int(vtag), tick)


# ----------------------------------------------------------------------
# Prefetch routing: generated -> duplicate squash -> filter -> issue
# ----------------------------------------------------------------------
def route(
    l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src, l1_tpc, l1_fid, l1_stamp,
    l2_tag, l2_dirty, l2_stamp, dir_key, tvals, K, T, P,
    rline, rpc, rsrc, rfid, tick,
):
    row = rsrc * 7
    T[row + T_GEN] += 1
    W1 = int(P[P_W1])
    if W1 == 1:
        if l1_tag[rline & int(P[P_L1MASK])] == rline:
            T[row + T_SQ] += 1
            return
    else:
        b = (rline & int(P[P_L1MASK])) * W1
        for w in range(b, b + W1):
            if l1_tag[w] == rline:
                T[row + T_SQ] += 1
                return
    if P[P_FMODE] == FMODE_TABLE:
        if tvals[rfid] >= P[P_THRESH]:
            K[K_TLG] += 1
            K[K_FA] += 1
        else:
            K[K_TLB] += 1
            K[K_FR] += 1
            T[row + T_FLT] += 1
            return
    else:
        K[K_FA] += 1
    T[row + T_ISS] += 1
    l2_fetch(l2_tag, l2_dirty, l2_stamp, dir_key, K, P, rline, 1, tick)
    K[K_B1P] += 1
    l1_fill(
        l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src, l1_tpc, l1_fid,
        l1_stamp, l2_tag, l2_dirty, l2_stamp, dir_key, tvals, K, T, P,
        rline, 1, rsrc, rpc, rfid, int(P[P_TAGF]), 0, tick,
    )


# ----------------------------------------------------------------------
# The hot loop over one span of memory operations
# ----------------------------------------------------------------------
def kernel_span(
    mcls, mpc, mline, selffid, nspfid,
    l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src, l1_tpc, l1_fid, l1_stamp,
    l2_tag, l2_dirty, l2_stamp,
    dir_key, dir_shadow, dir_conf, aw_key, aw_val,
    tvals, K, T, S, P, start, stop,
):
    """Replay memory ops ``[start, stop)``; returns 0 or an error code.

    Error codes (structurally unreachable under the driver's map
    sizing, kept as a hard stop rather than silent corruption):
    1 = SDP shadow directory full, 2 = SDP await set full.
    """
    STORE = int(P[P_STORE])
    SW_PF = int(P[P_SWPF])
    dm = int(P[P_W1]) == 1
    l1_mask = int(P[P_L1MASK])
    W1 = int(P[P_W1])
    nsp_on = int(P[P_NSP]) != 0
    sdp_on = int(P[P_SDP]) != 0
    wb = int(P[P_WB]) != 0
    degree = int(P[P_DEGREE])
    n_mem = int(P[P_NMEM])
    dir_mask = int(P[P_DIRMASK])
    aw_mask = int(P[P_AWMASK])
    sdp_hash = int(P[P_SDPHASH]) != 0
    tbits = int(P[P_TBITS])
    scheme = int(P[P_SCHEME])

    for i in range(start, stop):
        cls = int(mcls[i])
        line = int(mline[i])
        if cls == SW_PF:
            K[K_SWX] += 1
            route(
                l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src, l1_tpc,
                l1_fid, l1_stamp, l2_tag, l2_dirty, l2_stamp, dir_key,
                tvals, K, T, P, line, int(mpc[i]), 3, int(selffid[i]), i,
            )
            continue
        is_write = cls == STORE
        if dm:
            hw = line & l1_mask
            if l1_tag[hw] != line:
                hw = -1
        else:
            b = (line & l1_mask) * W1
            hw = -1
            for w in range(b, b + W1):
                if l1_tag[w] == line:
                    hw = w
                    break
        if hw >= 0:
            tag_hit = False
            if nsp_on and l1_nsp[hw] != 0:
                l1_nsp[hw] = 0
                tag_hit = True
            if is_write:
                K[K_WH] += 1
                l1_dirty[hw] = 1
            else:
                K[K_RH] += 1
            if l1_pib[hw] != 0 and l1_rib[hw] == 0:
                l1_rib[hw] = 1
                K[K_FU] += 1
                if sdp_on:
                    # SDP confirmation: the prefetched line saw first use.
                    slot = map_lookup(aw_key, aw_mask, line)
                    if slot >= 0:
                        parent = int(aw_val[slot])
                        aw_key[slot] = MAP_TOMB
                        ds = map_lookup(dir_key, dir_mask, parent)
                        if ds >= 0 and dir_shadow[ds] == line:
                            dir_conf[ds] = 1
                            K[K_SDPC] += 1
            l1_stamp[hw] = i
            if tag_hit:
                K[K_NSPT] += 1
                pc = int(mpc[i])
                for d in range(1, degree + 1):
                    route(
                        l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src,
                        l1_tpc, l1_fid, l1_stamp, l2_tag, l2_dirty, l2_stamp,
                        dir_key, tvals, K, T, P,
                        line + d, pc, 1, int(nspfid[(d - 1) * n_mem + i]), i,
                    )
        else:
            if is_write:
                K[K_WM] += 1
            else:
                K[K_RM] += 1
            l2_fetch(l2_tag, l2_dirty, l2_stamp, dir_key, K, P, line, 0, i)
            K[K_B1D] += 1
            fdirty = 1 if (is_write and wb) else 0
            l1_fill(
                l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src, l1_tpc,
                l1_fid, l1_stamp, l2_tag, l2_dirty, l2_stamp, dir_key,
                tvals, K, T, P, line, 0, 0, 0, 0, 0, fdirty, i,
            )
            pc = int(mpc[i])
            if nsp_on:
                K[K_NSPM] += 1
                for d in range(1, degree + 1):
                    route(
                        l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src,
                        l1_tpc, l1_fid, l1_stamp, l2_tag, l2_dirty, l2_stamp,
                        dir_key, tvals, K, T, P,
                        line + d, pc, 1, int(nspfid[(d - 1) * n_mem + i]), i,
                    )
            if sdp_on:
                ds = map_lookup(dir_key, dir_mask, line)
                if ds >= 0 and dir_shadow[ds] != line:
                    if dir_conf[ds] != 0:
                        dir_conf[ds] = 0
                        shadow = int(dir_shadow[ds])
                        aw = map_insert(aw_key, aw_mask, shadow)
                        if aw < 0:
                            return 2
                        aw_val[aw] = line
                        K[K_SDPI] += 1
                        if sdp_hash:
                            fid = table_hash(shadow, tbits, scheme)
                        else:
                            fid = int(selffid[i])
                        route(
                            l1_tag, l1_dirty, l1_pib, l1_rib, l1_nsp, l1_src,
                            l1_tpc, l1_fid, l1_stamp, l2_tag, l2_dirty,
                            l2_stamp, dir_key, tvals, K, T, P,
                            shadow, pc, 2, fid, i,
                        )
                    else:
                        K[K_SDPS] += 1
                prev = int(S[S_SDP_LAST])
                if prev != -1 and prev != line:
                    os_ = map_lookup(dir_key, dir_mask, prev)
                    if os_ < 0 or dir_shadow[os_] != line:
                        slot = map_insert(dir_key, dir_mask, prev)
                        if slot < 0:
                            return 1
                        dir_shadow[slot] = line
                        dir_conf[slot] = 1
                        K[K_SDPL] += 1
                S[S_SDP_LAST] = line
    return 0


# ----------------------------------------------------------------------
# JIT wrapping — selected once at import time
# ----------------------------------------------------------------------
def _jit_requested() -> bool:
    """Numba is usable unless NUMBA_DISABLE_JIT asks for pure Python."""
    return os.environ.get("NUMBA_DISABLE_JIT", "").strip().lower() not in _TRUTHY


#: The undecorated interpreter-leg entry point (always available).
py_kernel_span = kernel_span

HAVE_JIT = False
JIT_ERROR = ""

if _jit_requested():
    try:
        from numba import njit  # type: ignore[import-not-found]

        _opts = {"cache": True, "nogil": True}
        table_hash = njit(**_opts)(table_hash)
        probe_start = njit(**_opts)(probe_start)
        map_lookup = njit(**_opts)(map_lookup)
        map_insert = njit(**_opts)(map_insert)
        map_delete = njit(**_opts)(map_delete)
        feedback = njit(**_opts)(feedback)
        l2_fetch = njit(**_opts)(l2_fetch)
        l2_writeback = njit(**_opts)(l2_writeback)
        l1_fill = njit(**_opts)(l1_fill)
        route = njit(**_opts)(route)
        kernel_span = njit(**_opts)(kernel_span)
        HAVE_JIT = True
    except ImportError as exc:  # numba absent: interp/cc legs take over
        JIT_ERROR = str(exc)
    except Exception as exc:  # pragma: no cover - numba present but broken
        JIT_ERROR = f"numba failed to initialise: {exc}"
else:
    JIT_ERROR = "disabled by NUMBA_DISABLE_JIT"
