"""The out-of-order core timing model and the top-level simulator.

* :mod:`repro.core.branch` — bimodal branch predictor + BTB (Table 1),
* :mod:`repro.core.rob` / :mod:`repro.core.lsq` — in-order-retirement window
  resources that bound how far execution can run ahead,
* :mod:`repro.core.classifier` — the good/bad prefetch bookkeeping behind
  every figure in the paper,
* :mod:`repro.core.pipeline` — the timestamp-ordered OoO execution engine,
* :mod:`repro.core.interval` — a faster closed-form engine for wide sweeps,
* :mod:`repro.core.simulator` — the facade wiring trace, hierarchy,
  prefetchers, filter and engine together.
"""

from repro.core.branch import BimodalPredictor, BranchTargetBuffer, BranchUnit
from repro.core.classifier import PrefetchClassifier, PrefetchTally
from repro.core.interval import IntervalEngine
from repro.core.lsq import LoadStoreQueue
from repro.core.pipeline import OoOPipeline
from repro.core.rob import ReorderBuffer, RetirementWindow
from repro.core.simulator import SimulationResult, Simulator, run_simulation

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BranchUnit",
    "IntervalEngine",
    "LoadStoreQueue",
    "OoOPipeline",
    "PrefetchClassifier",
    "PrefetchTally",
    "ReorderBuffer",
    "RetirementWindow",
    "SimulationResult",
    "Simulator",
    "run_simulation",
]
