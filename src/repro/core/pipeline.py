"""Timestamp-ordered out-of-order execution engine.

One pass over the trace, in program order, computing per-instruction
dispatch / completion / retirement timestamps.  The model captures every
mechanism the paper's evaluation depends on:

* **Limited OoO window** — dispatch of instruction *i* waits for the
  retirement of instruction *i − ROB* (and *i − LSQ* for memory ops), so a
  long-latency load eventually stalls the front end: misses overlap only
  within the window (bounded MLP).
* **Issue/retire width** — at most ``issue_width`` dispatches and
  ``retire_width`` retirements per cycle.
* **L1 port contention** — every demand access acquires a port through the
  arbiter; queued prefetches only issue into idle ports (demand priority),
  so port pressure delays prefetches (Section 5.4's effect).
* **Branch flushes** — bimodal+BTB mispredictions stall dispatch for the
  flush penalty.
* **Cache/memory latencies, MSHR merging, bus occupancy** — from
  :class:`~repro.mem.hierarchy.MemoryHierarchy`.
* **Non-blocking stores and software prefetches** — they occupy slots and
  ports but retirement does not wait for their data.

The engine also runs the complete prefetch control path per Figure 3:
demand access → hardware prefetcher triggers → duplicate squash →
pollution-filter lookup → prefetch queue → port grab → L1 fill, with
eviction feedback flowing back into the filter and the classifier.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SimulationConfig
from repro.common.stats import StatGroup
from repro.core.branch import BranchUnit
from repro.core.classifier import PrefetchClassifier
from repro.core.lsq import LoadStoreQueue
from repro.core.rob import ReorderBuffer
from repro.mem.hierarchy import MemoryHierarchy
from repro.prefetch.base import HardwarePrefetcher, PrefetchRequest
from repro.prefetch.nsp import NextSequencePrefetcher
from repro.prefetch.queue import PrefetchQueue
from repro.prefetch.sdp import ShadowDirectoryPrefetcher
from repro.prefetch.software import SoftwarePrefetchUnit
from repro.prefetch.stride import StridePrefetcher
from repro.sanitize import Sanitizer, sanitize_enabled
from repro.trace.record import InstrClass
from repro.trace.stream import Trace

_FP_LATENCY = 3
_INT_LATENCY = 1
_AGEN_LATENCY = 1  # address generation before a memory op reaches the cache
_DRAIN_BURST = 4  # max prefetch issues per drain call (per-instruction rate cap)
_MSHR_DEMAND_RESERVE = 4  # MSHR entries a prefetch must leave free for demand


class OoOPipeline:
    """The cycle-accounting engine; one instance per simulation run."""

    def __init__(
        self,
        config: SimulationConfig,
        hierarchy: MemoryHierarchy,
        filter_,
        classifier: PrefetchClassifier,
        stats: StatGroup | None = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.filter = filter_
        self.classifier = classifier
        self.stats = stats if stats is not None else StatGroup("pipeline")

        p = config.processor
        self.branch_unit = BranchUnit(
            p.branch_predictor_entries, p.btb_sets, p.btb_ways, self.stats["branch"]
        )
        self.rob = ReorderBuffer(p.rob_entries)
        self.lsq = LoadStoreQueue(p.lsq_entries)
        self.queue = PrefetchQueue(config.prefetch.queue_entries, self.stats["queue"])

        pf = config.prefetch
        line_bytes = config.hierarchy.l1.line_bytes
        self.nsp: Optional[NextSequencePrefetcher] = (
            NextSequencePrefetcher(pf.degree, self.stats["nsp"]) if pf.nsp else None
        )
        self.sdp: Optional[ShadowDirectoryPrefetcher] = (
            ShadowDirectoryPrefetcher(self.stats["sdp"]) if pf.sdp else None
        )
        self.stride: Optional[StridePrefetcher] = (
            StridePrefetcher(pf.stride_table_entries, line_bytes, pf.degree, self.stats["stride"])
            if pf.stride
            else None
        )
        self.sw_unit: Optional[SoftwarePrefetchUnit] = (
            SoftwarePrefetchUnit(line_bytes, self.stats["sw"]) if pf.software else None
        )
        #: The extension slot accepts any HardwarePrefetcher; stride-style
        #: units train on byte addresses (observe_address), others on the
        #: resolved access (observe).  Resolved once here, off the hot path.
        self._stride_wants_address = hasattr(self.stride, "observe_address")

        #: with NSP enabled, every prefetched line is tagged (tagged
        #: sequential prefetching: the tag bit marks prefetched lines).
        self._tag_fills = pf.nsp

        #: invoked (with the cycle count so far) when the warmup window ends,
        #: so the owner can snapshot counters and report post-warmup deltas.
        self.on_warmup = None

        #: opt-in runtime invariant checking (:mod:`repro.sanitize`); None
        #: keeps the hot loop at one extra integer compare per instruction.
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(config) if sanitize_enabled(config) else None
        )

        #: load-latency histogram buckets (cycles): L1 hits, L2-ish, memory-ish,
        #: worse (queueing/MSHR stalls).  Written into stats at end of run.
        self._latency_edges = (
            config.hierarchy.l1.latency,
            config.hierarchy.l1.latency + config.hierarchy.l2.latency + 1,
            config.hierarchy.l1.latency
            + config.hierarchy.l2.latency
            + config.hierarchy.memory_latency
            + 8,
        )
        self._latency_buckets = [0, 0, 0, 0]

        # Feedback wiring (Figure 3's update path).
        self.hierarchy.l1.on_evict = self._on_l1_evict
        self.hierarchy.on_buffer_evict = self._on_buffer_evict
        if self.sdp is not None:
            self.hierarchy.l2.on_evict = lambda ev: self.sdp.on_l2_eviction(ev.line_addr)

    def set_extension_prefetcher(self, prefetcher) -> None:
        """Install a custom HardwarePrefetcher in the extension slot.

        Replaces the stride unit (the slot the config's ``stride`` flag
        controls) with any :class:`~repro.prefetch.base.HardwarePrefetcher`
        — e.g. the Markov correlation prefetcher in the ablation benches.
        """
        self.stride = prefetcher
        self._stride_wants_address = hasattr(prefetcher, "observe_address")

    # ------------------------------------------------------------------
    # Feedback path
    # ------------------------------------------------------------------
    def _on_l1_evict(self, evicted) -> None:
        if not evicted.pib:
            return
        self.classifier.on_l1_eviction(evicted)
        self.filter.on_feedback_ex(
            evicted.line_addr, evicted.trigger_pc, evicted.rib, evicted.source
        )

    def _on_buffer_evict(self, line) -> None:
        self.classifier.on_buffer_eviction(line)
        self.filter.on_feedback_ex(
            line.line_addr, line.trigger_pc, line.referenced, line.source
        )

    # ------------------------------------------------------------------
    # Prefetch control path: squash -> filter -> queue
    # ------------------------------------------------------------------
    def _route_prefetch(self, request: PrefetchRequest, now: int) -> None:
        classifier = self.classifier
        classifier.on_generated(request)
        if self.hierarchy.is_duplicate_prefetch(request.line_addr, now):
            classifier.on_squashed(request)
            return
        if not self.filter.should_prefetch(request):
            classifier.on_filtered(request)
            return
        if not self.queue.push(request, now):
            classifier.on_dropped(request)

    def _drain_queue(self, now: int) -> None:
        """Issue queued prefetches into ports idle near the program point.

        ``now`` is the current instruction's memory-access horizon (its
        dispatch slot + address generation); a prefetch may take any port
        slot up to one cycle past it — the same window a demand access of
        this cycle would occupy.  Under demand saturation ``earliest_free``
        runs ahead of the horizon and prefetches queue up (Section 5.4's
        port-contention effect); in stall shadows the ports are idle and
        the queue drains into them.

        Two throttles keep prefetching from starving the demand path the
        way real controllers do: prefetches hold back unless the MSHR file
        keeps spare entries for demand misses, and at most a handful issue
        per drain call so one stall shadow cannot flood the hierarchy with
        a timestamp pile-up.
        """
        issued = 0
        hierarchy = self.hierarchy
        queue = self.queue
        mshr = hierarchy.mshr
        ports = hierarchy.ports
        horizon = now + 1
        while len(queue) and issued < _DRAIN_BURST:
            head, enqueued = queue.peek()
            ready = enqueued + 1  # one cycle of queue traversal
            when = max(ready, ports.earliest_free())
            if when > horizon:
                break
            if mshr.free_slots(when) <= _MSHR_DEMAND_RESERVE:
                break
            grant = ports.try_acquire_prefetch(when)
            if grant is None:
                break
            request = queue.pop(grant)
            if hierarchy.is_duplicate_prefetch(request.line_addr, grant):
                # A demand miss beat the prefetch to the line: late duplicate.
                self.classifier.on_squashed(request)
                continue
            hierarchy.issue_prefetch(
                request.line_addr,
                grant,
                request.source,
                request.trigger_pc,
                nsp_tag=self._tag_fills,
            )
            self.classifier.on_issued(request)
            issued += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> int:
        """Execute the trace; returns total cycles to retire everything.

        Hot-loop structure: the four trace columns are converted to plain
        Python lists once (scalar indexing into numpy arrays costs a boxed
        object per read), every per-instruction attribute and bound-method
        lookup is hoisted into a local, and the latency histogram is kept in
        four local integers — all measurable wins at hundreds of thousands
        of iterations.
        """
        n = len(trace)
        limit = self.config.max_instructions
        if limit is not None:
            n = min(n, limit)
        iclass_col = trace.iclass[:n].tolist()
        pc_col = trace.pc[:n].tolist()
        addr_col = trace.addr[:n].tolist()
        taken_col = trace.taken[:n].tolist()

        issue_width = self.config.processor.issue_width
        retire_width = self.config.processor.retire_width
        flush_penalty = self.config.processor.mispredict_penalty

        LOAD = int(InstrClass.LOAD)
        STORE = int(InstrClass.STORE)
        BRANCH = int(InstrClass.BRANCH)
        SW_PF = int(InstrClass.SW_PREFETCH)
        FP = int(InstrClass.FP_OP)

        disp_cycle = 0
        disp_in_cycle = 0
        ret_cycle = 0
        ret_in_cycle = 0
        last_retire = 0
        flush_until = 0
        warmup = min(self.config.warmup_instructions, n)
        on_warmup = self.on_warmup

        l1_latency = self.config.hierarchy.l1.latency
        edge0, edge1, edge2 = self._latency_edges
        bucket0 = bucket1 = bucket2 = bucket3 = 0

        # Hoisted hot-path callables/state.
        rob_constraint = self.rob.constraint
        rob_push = self.rob.push
        lsq_constraint = self.lsq.constraint
        lsq_push = self.lsq.push
        demand_access = self.hierarchy.demand_access
        branch_resolve = self.branch_unit.resolve
        route_prefetch = self._route_prefetch
        drain_queue = self._drain_queue
        queue = self.queue
        nsp = self.nsp
        sdp = self.sdp
        stride = self.stride
        sw_unit = self.sw_unit
        nsp_observe = nsp.observe if nsp is not None else None
        sdp_observe = sdp.observe if sdp is not None else None
        sdp_confirm = sdp.confirm_use if sdp is not None else None
        stride_wants_address = self._stride_wants_address

        # Sanitizer cadence: disabled runs keep san_next at -1, so the
        # only hot-loop cost is one integer compare per instruction.
        sanitizer = self.sanitizer
        san_interval = sanitizer.interval if sanitizer is not None else 0
        san_next = san_interval if sanitizer is not None else -1

        for i in range(n):
            if i == warmup and on_warmup is not None:
                on_warmup(last_retire)
            if i == san_next:
                sanitizer.periodic(self, last_retire)
                san_next += san_interval
            cls = iclass_col[i]
            is_mem = cls == LOAD or cls == STORE or cls == SW_PF

            # ---- dispatch ------------------------------------------------
            earliest = rob_constraint()
            if flush_until > earliest:
                earliest = flush_until
            if is_mem:
                lc = lsq_constraint()
                if lc > earliest:
                    earliest = lc
            if earliest > disp_cycle:
                disp_cycle = earliest
                disp_in_cycle = 0
            elif disp_in_cycle >= issue_width:
                disp_cycle += 1
                disp_in_cycle = 0
            disp_in_cycle += 1
            slot = disp_cycle

            # ---- execute --------------------------------------------------
            if cls == LOAD or cls == STORE:
                pc = pc_col[i]
                addr = addr_col[i]
                result = demand_access(addr, cls == STORE, slot + _AGEN_LATENCY)
                if cls == LOAD:
                    complete = result.complete
                    latency = complete - result.grant
                    if latency <= edge0:
                        bucket0 += 1
                    elif latency <= edge1:
                        bucket1 += 1
                    elif latency <= edge2:
                        bucket2 += 1
                    else:
                        bucket3 += 1
                elif result.mshr_stalled:
                    # Store-buffer backpressure: a store miss that found the
                    # MSHR file full blocks like a load, throttling streams
                    # of store misses to the memory system's service rate.
                    complete = result.complete
                else:
                    # Non-blocking store: retirement waits for the port +
                    # L1 write only; the miss (if any) drains in background.
                    complete = result.grant + l1_latency
                if result.first_use_prefetched and sdp_confirm is not None:
                    sdp_confirm(result.line_addr)
                # Hardware prefetch triggers observe the resolved access.
                if nsp_observe is not None:
                    for req in nsp_observe(pc, result):
                        route_prefetch(req, slot)
                if sdp_observe is not None:
                    for req in sdp_observe(pc, result):
                        route_prefetch(req, slot)
                if stride is not None and cls == LOAD:
                    if stride_wants_address:
                        requests = stride.observe_address(pc, addr)
                    else:
                        requests = stride.observe(pc, result)
                    for req in requests:
                        route_prefetch(req, slot)
            elif cls == BRANCH:
                complete = slot + _INT_LATENCY
                if not branch_resolve(pc_col[i], bool(taken_col[i])):
                    flush_until = complete + flush_penalty
            elif cls == SW_PF:
                complete = slot + _INT_LATENCY
                if sw_unit is not None:
                    route_prefetch(sw_unit.request(pc_col[i], addr_col[i]), slot)
            elif cls == FP:
                complete = slot + _FP_LATENCY
            else:
                complete = slot + _INT_LATENCY

            # ---- prefetch queue drain -------------------------------------
            # The drain horizon is the *retirement* clock, not the dispatch
            # slot: dispatch timestamps compress bursts of instructions into
            # few cycles, making ports look booked solid, while the machine
            # is actually stalled on misses with its L1 ports idle — exactly
            # when queued prefetches issue on real hardware.  Using the
            # in-order retirement time as "now" exposes that idle capacity;
            # during genuinely port-saturated stretches (dense demand traffic
            # with no stalls) last_retire tracks the dispatch slot and the
            # contention behaviour is preserved.
            if len(queue):
                drain_queue((slot if slot > last_retire else last_retire) + _AGEN_LATENCY)

            # ---- retire ---------------------------------------------------
            rt = complete if complete > last_retire else last_retire
            if rt > ret_cycle:
                ret_cycle = rt
                ret_in_cycle = 0
            elif ret_in_cycle >= retire_width:
                ret_cycle += 1
                ret_in_cycle = 0
                rt = ret_cycle
            ret_in_cycle += 1
            last_retire = rt
            rob_push(rt)
            if is_mem:
                lsq_push(rt)

        # ---- end of run ---------------------------------------------------
        self._latency_buckets = [bucket0, bucket1, bucket2, bucket3]
        for request in self.queue.pending_requests():
            self.classifier.on_dropped(request)
        self.queue.clear()
        self.hierarchy.drain()
        self.stats.set("instructions", n)
        self.stats.set("cycles", max(1, last_retire))
        lat = self.stats["load_latency"]
        for key, count in zip(("l1", "l2", "memory", "queued"), self._latency_buckets):
            lat.set(key, count)
        return max(1, last_retire)
