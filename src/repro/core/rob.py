"""Reorder buffer as a retirement-time window.

In the timestamp-ordered engine, structures that bound out-of-order reach
reduce to one question: *when does the oldest occupant leave?*  A new
instruction may dispatch into the ROB no earlier than the retirement time
of the instruction ``capacity`` positions before it.  Because retirement
times are computed in program order, a ring buffer of the last ``capacity``
retirement timestamps answers that question in O(1).

This is exactly how a 128-entry ROB throttles memory-level parallelism:
a long-latency load delays its own retirement, the window fills, dispatch
stalls, and younger misses can no longer overlap it.
"""

from __future__ import annotations


class RetirementWindow:
    """Ring buffer of retirement timestamps with a dispatch constraint.

    Backed by a plain Python list rather than a numpy array: the engine
    probes and pushes once per instruction, and scalar indexing into a
    list is several times cheaper than numpy element access plus the
    ``int()`` conversion it would force on the caller.
    """

    __slots__ = ("capacity", "_times", "_head", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self._times = [0] * capacity
        self._head = 0
        self._count = 0

    def constraint(self) -> int:
        """Earliest cycle a new entry may be allocated.

        Zero while the window has free slots; otherwise the retirement time
        of the oldest occupant (its slot becomes free that cycle).
        """
        if self._count < self.capacity:
            return 0
        return self._times[self._head]

    def push(self, retire_time: int) -> None:
        """Record a newly dispatched instruction's (already known) retire time."""
        self._times[self._head] = retire_time
        head = self._head + 1
        self._head = 0 if head == self.capacity else head
        if self._count < self.capacity:
            self._count += 1

    @property
    def occupancy(self) -> int:
        return self._count

    def reset(self) -> None:
        self._head = 0
        self._count = 0
        self._times = [0] * self.capacity


class ReorderBuffer(RetirementWindow):
    """The ROB: every instruction occupies a slot from dispatch to retire."""
