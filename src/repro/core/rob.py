"""Reorder buffer as a retirement-time window.

In the timestamp-ordered engine, structures that bound out-of-order reach
reduce to one question: *when does the oldest occupant leave?*  A new
instruction may dispatch into the ROB no earlier than the retirement time
of the instruction ``capacity`` positions before it.  Because retirement
times are computed in program order, a ring buffer of the last ``capacity``
retirement timestamps answers that question in O(1).

This is exactly how a 128-entry ROB throttles memory-level parallelism:
a long-latency load delays its own retirement, the window fills, dispatch
stalls, and younger misses can no longer overlap it.
"""

from __future__ import annotations


class RetirementWindow:
    """Ring buffer of retirement timestamps with a dispatch constraint.

    Backed by a plain Python list rather than a numpy array: the engine
    probes and pushes once per instruction, and scalar indexing into a
    list is several times cheaper than numpy element access plus the
    ``int()`` conversion it would force on the caller.
    """

    __slots__ = ("capacity", "_times", "_head", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self._times = [0] * capacity
        self._head = 0
        self._count = 0

    def constraint(self) -> int:
        """Earliest cycle a new entry may be allocated.

        Zero while the window has free slots; otherwise the retirement time
        of the oldest occupant (its slot becomes free that cycle).
        """
        if self._count < self.capacity:
            return 0
        return self._times[self._head]

    def push(self, retire_time: int) -> None:
        """Record a newly dispatched instruction's (already known) retire time."""
        self._times[self._head] = retire_time
        head = self._head + 1
        self._head = 0 if head == self.capacity else head
        if self._count < self.capacity:
            self._count += 1

    @property
    def occupancy(self) -> int:
        return self._count

    def validate(self, site: str = "window") -> None:
        """Sanitizer audit: occupancy <= capacity, age-ordered ring.

        Retirement times are computed in program order and in-order
        retirement makes them non-decreasing, so the ring read
        oldest-to-newest must be sorted — a violation means the head
        pointer or a slot was corrupted and :meth:`constraint` would
        release dispatch too early (unbounded out-of-order reach).
        """
        from repro.sanitize import SanitizerViolation

        if not 0 <= self._count <= self.capacity:
            raise SanitizerViolation(
                site,
                f"occupancy {self._count} outside [0, {self.capacity}]",
                snapshot={"count": self._count, "capacity": self.capacity},
            )
        if not 0 <= self._head < self.capacity:
            raise SanitizerViolation(
                site,
                f"head pointer {self._head} outside the {self.capacity}-slot ring",
                snapshot={"head": self._head, "capacity": self.capacity},
            )
        previous = None
        for age in range(self._count):
            slot = (self._head - self._count + age) % self.capacity
            t = self._times[slot]
            if previous is not None and t < previous:
                raise SanitizerViolation(
                    site,
                    f"retire time {t} at age {age} precedes older entry's "
                    f"{previous}: program-order age invariant broken",
                    snapshot={"age": age, "slot": slot, "time": t, "previous": previous},
                )
            previous = t

    def reset(self) -> None:
        self._head = 0
        self._count = 0
        self._times = [0] * self.capacity


class ReorderBuffer(RetirementWindow):
    """The ROB: every instruction occupies a slot from dispatch to retire."""
