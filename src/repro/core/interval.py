"""Interval (closed-form) timing engine for wide parameter sweeps.

A coarser alternative to :class:`~repro.core.pipeline.OoOPipeline`: the
functional side (caches, prefetchers, filter, classification) is identical —
it reuses the same hierarchy and control path — but timing is accumulated
analytically instead of through per-structure timestamps:

* base cost: ``N / issue_width`` cycles of dispatch bandwidth,
* each branch flush adds the mispredict penalty,
* each demand-load miss adds its latency *beyond the L1 hit time*, less the
  portion hidden by overlap with the previous miss (misses closer together
  than the ROB's reach overlap — the classic interval-simulation argument
  of Karkhanis & Smith).

The engine is 2–3× faster than the pipeline and preserves ordering between
configurations (more pollution → more misses → fewer IPC), which is all a
sweep needs.  Headline numbers in EXPERIMENTS.md always come from the
pipeline engine.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SimulationConfig
from repro.common.stats import StatGroup
from repro.core.classifier import PrefetchClassifier
from repro.core.pipeline import OoOPipeline
from repro.mem.hierarchy import MemoryHierarchy
from repro.trace.record import InstrClass
from repro.trace.stream import Trace


class IntervalEngine(OoOPipeline):
    """Same machinery as the pipeline, closed-form cycle accounting."""

    def run(self, trace: Trace) -> int:
        iclass_col = trace.iclass
        pc_col = trace.pc
        addr_col = trace.addr
        taken_col = trace.taken
        n = len(trace)
        limit = self.config.max_instructions
        if limit is not None:
            n = min(n, limit)

        issue_width = self.config.processor.issue_width
        flush_penalty = self.config.processor.mispredict_penalty
        # How many instructions of dispatch the ROB lets run ahead: misses
        # within this distance of each other overlap.
        overlap_reach = self.config.processor.rob_entries

        LOAD = int(InstrClass.LOAD)
        STORE = int(InstrClass.STORE)
        BRANCH = int(InstrClass.BRANCH)
        SW_PF = int(InstrClass.SW_PREFETCH)

        l1_latency = self.config.hierarchy.l1.latency
        stall_cycles = 0.0
        warmup = min(self.config.warmup_instructions, n)
        # Previous miss: (instruction index, exposed latency beyond L1).
        prev_miss_index = -(10**9)
        prev_miss_tail = 0.0

        sanitizer = self.sanitizer
        san_interval = sanitizer.interval if sanitizer is not None else 0
        san_next = san_interval if sanitizer is not None else -1

        for i in range(n):
            cls = int(iclass_col[i])
            now = int(i // issue_width + stall_cycles)
            if i == warmup and self.on_warmup is not None:
                self.on_warmup(now)
            if i == san_next:
                sanitizer.periodic(self, now)
                san_next += san_interval

            if cls == LOAD or cls == STORE:
                addr = int(addr_col[i])
                pc = int(pc_col[i])
                result = self.hierarchy.demand_access(addr, cls == STORE, now)
                if result.first_use_prefetched and self.sdp is not None:
                    self.sdp.confirm_use(result.line_addr)
                if self.nsp is not None:
                    for req in self.nsp.observe(pc, result):
                        self._route_prefetch(req, now)
                if self.sdp is not None:
                    for req in self.sdp.observe(pc, result):
                        self._route_prefetch(req, now)
                if self.stride is not None and cls == LOAD:
                    for req in self.stride.observe_address(pc, addr):
                        self._route_prefetch(req, now)
                # Loads always expose their miss latency; stores only when
                # they hit a full MSHR file (store-buffer backpressure, the
                # same rule the pipeline engine applies).
                if cls == LOAD or result.mshr_stalled:
                    exposed = (result.complete - result.grant) - l1_latency
                    if exposed > 0:
                        gap_cycles = (i - prev_miss_index) / issue_width
                        hidden = max(0.0, prev_miss_tail - gap_cycles)
                        if i - prev_miss_index > overlap_reach:
                            hidden = 0.0
                        stall_cycles += max(0.0, exposed - hidden)
                        prev_miss_index = i
                        prev_miss_tail = float(exposed)
            elif cls == BRANCH:
                if not self.branch_unit.resolve(int(pc_col[i]), bool(taken_col[i])):
                    stall_cycles += flush_penalty
            elif cls == SW_PF:
                if self.sw_unit is not None:
                    self._route_prefetch(self.sw_unit.request(int(pc_col[i]), int(addr_col[i])), now)

            if len(self.queue):
                self._drain_queue(now)

        for request in self.queue.pending_requests():
            self.classifier.on_dropped(request)
        self.queue.clear()
        self.hierarchy.drain()
        cycles = max(1, int(n / issue_width + stall_cycles))
        self.stats.set("instructions", n)
        self.stats.set("cycles", cycles)
        return cycles


def make_engine(
    kind: str,
    config: SimulationConfig,
    hierarchy: MemoryHierarchy,
    filter_,
    classifier: PrefetchClassifier,
    stats: Optional[StatGroup] = None,
) -> OoOPipeline:
    """Engine factory: ``"pipeline"`` (default), ``"interval"``,
    ``"vector"`` or ``"kernel"``."""
    if kind == "pipeline":
        return OoOPipeline(config, hierarchy, filter_, classifier, stats)
    if kind == "interval":
        return IntervalEngine(config, hierarchy, filter_, classifier, stats)
    if kind == "vector":
        from repro.core.vector import VectorEngine

        return VectorEngine(config, hierarchy, filter_, classifier, stats)
    if kind == "kernel":
        from repro.core.kernel import KernelEngine

        return KernelEngine(config, hierarchy, filter_, classifier, stats)
    from repro.common.config import KNOWN_ENGINES

    raise ValueError(
        f"unknown engine kind {kind!r}; choose one of {', '.join(KNOWN_ENGINES)}"
    )
