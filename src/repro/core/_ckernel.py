"""C leg of the kernel engine: the same kernels, compiled natively.

:mod:`repro.core.kernels` is the source of truth; this module carries a
line-for-line C port of those functions, compiled on first use with the
system C compiler (``$CC``, ``cc``, ``gcc`` or ``clang``) into a shared
object cached under ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``),
keyed by the SHA-256 of the generated source so a source edit can never
pick up a stale binary.  The counter-slot and parameter-slot layouts are
*generated* from the Python constants as ``#define`` lines, so the two
legs cannot drift silently on layout.

Everything here is best-effort: :func:`load` returns the bound entry
point or ``None`` (no compiler, compile failure, unwritable cache dir,
dlopen failure) and the engine falls back to the jit or interpreted
leg.  Failures are remembered for the process so a missing compiler is
probed exactly once.

The exported symbol has the exact argument order of
:func:`repro.core.kernels.kernel_span`; :func:`load` returns a wrapper
with that same Python signature, so the driver treats all three legs
interchangeably.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
from pathlib import Path
from typing import Callable, Optional

from repro.core import kernels as _k

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Names whose values are mirrored into the C source as ``#define``s.
_SHARED_CONSTANTS = (
    "K_RH", "K_RM", "K_WH", "K_WM", "K_FU", "K_DUP1", "K_EV", "K_EVU",
    "K_EVN", "K_PF1", "K_DF1", "K_L2RH", "K_L2RM", "K_L2DUP", "K_L2EV",
    "K_L2DF", "K_B1D", "K_B1P", "K_B1W", "K_BMD", "K_BMP", "K_BMW",
    "K_NSPM", "K_NSPT", "K_SDPI", "K_SDPS", "K_SDPL", "K_SDPC", "K_SWX",
    "K_FA", "K_FR", "K_FBG", "K_FBB", "K_TLG", "K_TLB", "K_TTG", "K_TTB",
    "T_GEN", "T_SQ", "T_FLT", "T_DRP", "T_ISS", "T_GOOD", "T_BAD",
    "P_W1", "P_L1MASK", "P_W2", "P_L2MASK", "P_WB", "P_NSP", "P_SDP",
    "P_DEGREE", "P_TAGF", "P_FMODE", "P_THRESH", "P_MAXV", "P_TBITS",
    "P_SCHEME", "P_SDPHASH", "P_NMEM", "P_DIRMASK", "P_AWMASK", "P_STORE",
    "P_SWPF",
    "FMODE_NULL", "FMODE_TABLE",
    "SCHEME_MODULO", "SCHEME_FOLD_XOR", "SCHEME_MULTIPLICATIVE",
    "S_SDP_LAST", "MAP_EMPTY", "MAP_TOMB",
)


def _defines() -> str:
    lines = [f"#define {name} {getattr(_k, name)}" for name in _SHARED_CONSTANTS]
    lines.append(f"#define GOLDEN64 {_k.GOLDEN64}ULL")
    return "\n".join(lines) + "\n"


_BODY = r"""
#include <stdint.h>

typedef struct {
    int64_t *l1_tag; uint8_t *l1_dirty; uint8_t *l1_pib; uint8_t *l1_rib;
    uint8_t *l1_nsp; uint8_t *l1_src; int64_t *l1_tpc; int64_t *l1_fid;
    int64_t *l1_stamp;
    int64_t *l2_tag; uint8_t *l2_dirty; int64_t *l2_stamp;
    int64_t *dir_key; int64_t *dir_shadow; uint8_t *dir_conf;
    int64_t *aw_key; int64_t *aw_val;
    int64_t *tvals; int64_t *K; int64_t *T;
    int64_t W1, l1_mask, W2, l2_mask, fmode, thresh, maxv;
    int64_t dir_mask, aw_mask, sdp_on, tagf;
} St;

static int64_t table_hash(int64_t value, int64_t bits, int64_t scheme) {
    if (bits <= 0) return 0;
    if (scheme == SCHEME_MODULO) return value & ((1LL << bits) - 1);
    if (scheme == SCHEME_FOLD_XOR) {
        int64_t v = value, folded = 0;
        while (v != 0) { folded ^= v; v >>= bits; }
        return folded & ((1LL << bits) - 1);
    }
    {
        uint64_t u = (uint64_t)value * GOLDEN64;
        return (int64_t)(u >> (64 - bits));
    }
}

static int64_t probe_start(int64_t key, int64_t mask) {
    uint64_t u = (uint64_t)key * GOLDEN64;
    u ^= u >> 33;
    return (int64_t)u & mask;
}

static int64_t map_lookup(const int64_t *keys, int64_t mask, int64_t key) {
    int64_t idx = probe_start(key, mask);
    for (;;) {
        int64_t k = keys[idx];
        if (k == key) return idx;
        if (k == MAP_EMPTY) return -1;
        idx = (idx + 1) & mask;
    }
}

static int64_t map_insert(int64_t *keys, int64_t mask, int64_t key) {
    int64_t idx = probe_start(key, mask);
    int64_t first_tomb = -1;
    int64_t steps = 0;
    while (steps <= mask) {
        int64_t k = keys[idx];
        if (k == key) return idx;
        if (k == MAP_EMPTY) {
            if (first_tomb >= 0) idx = first_tomb;
            keys[idx] = key;
            return idx;
        }
        if (k == MAP_TOMB && first_tomb < 0) first_tomb = idx;
        idx = (idx + 1) & mask;
        steps += 1;
    }
    if (first_tomb >= 0) { keys[first_tomb] = key; return first_tomb; }
    return -1;
}

static void map_delete(int64_t *keys, int64_t mask, int64_t key) {
    int64_t idx = map_lookup(keys, mask, key);
    if (idx >= 0) keys[idx] = MAP_TOMB;
}

static void feedback(St *st, int64_t vrib, int64_t vfid) {
    if (st->fmode == FMODE_TABLE) {
        int64_t v = st->tvals[vfid];
        if (vrib) {
            st->K[K_FBG] += 1;
            st->K[K_TTG] += 1;
            if (v < st->maxv) st->tvals[vfid] = v + 1;
        } else {
            st->K[K_FBB] += 1;
            st->K[K_TTB] += 1;
            if (v > 0) st->tvals[vfid] = v - 1;
        }
    } else {
        if (vrib) st->K[K_FBG] += 1; else st->K[K_FBB] += 1;
    }
}

static int64_t l2_fetch(St *st, int64_t pline, int64_t is_pf, int64_t tick) {
    int64_t b = (pline & st->l2_mask) * st->W2;
    int64_t inv = -1, vw, w;
    for (w = b; w < b + st->W2; w++) {
        int64_t t = st->l2_tag[w];
        if (t == pline) {
            st->K[K_L2RH] += 1;
            st->l2_stamp[w] = tick;
            return 1;
        }
        if (inv < 0 && t == MAP_EMPTY) inv = w;
    }
    st->K[K_L2RM] += 1;
    if (is_pf) st->K[K_BMP] += 1; else st->K[K_BMD] += 1;
    if (inv >= 0) {
        vw = inv;
    } else {
        int64_t best = st->l2_stamp[b];
        vw = b;
        for (w = b + 1; w < b + st->W2; w++) {
            int64_t s = st->l2_stamp[w];
            if (s < best) { best = s; vw = w; }
        }
        st->K[K_L2EV] += 1;
        if (st->l2_dirty[vw]) st->K[K_BMW] += 1;
        if (st->sdp_on) map_delete(st->dir_key, st->dir_mask, st->l2_tag[vw]);
    }
    st->l2_tag[vw] = pline;
    st->l2_dirty[vw] = 0;
    st->l2_stamp[vw] = tick;
    st->K[K_L2DF] += 1;
    return 0;
}

static void l2_writeback(St *st, int64_t vline, int64_t tick) {
    int64_t b = (vline & st->l2_mask) * st->W2;
    int64_t inv = -1, vw, w;
    st->K[K_B1W] += 1;
    for (w = b; w < b + st->W2; w++) {
        int64_t t = st->l2_tag[w];
        if (t == vline) {
            st->l2_stamp[w] = tick;
            st->l2_dirty[w] = 1;
            st->K[K_L2DUP] += 1;
            return;
        }
        if (inv < 0 && t == MAP_EMPTY) inv = w;
    }
    if (inv >= 0) {
        vw = inv;
    } else {
        int64_t best = st->l2_stamp[b];
        vw = b;
        for (w = b + 1; w < b + st->W2; w++) {
            int64_t s = st->l2_stamp[w];
            if (s < best) { best = s; vw = w; }
        }
        st->K[K_L2EV] += 1;
        if (st->l2_dirty[vw]) st->K[K_BMW] += 1;
        if (st->sdp_on) map_delete(st->dir_key, st->dir_mask, st->l2_tag[vw]);
    }
    st->l2_tag[vw] = vline;
    st->l2_dirty[vw] = 1;
    st->l2_stamp[vw] = tick;
    st->K[K_L2DF] += 1;
}

static void l1_fill(St *st, int64_t fline, int64_t fpib, int64_t fsrc,
                    int64_t ftpc, int64_t ffid, int64_t fnsp, int64_t fdirty,
                    int64_t tick) {
    int64_t vdirty = 0, vtag = -1, vw;
    if (st->W1 == 1) {
        vw = fline & st->l1_mask;
        vtag = st->l1_tag[vw];
        if (vtag != MAP_EMPTY) {
            st->K[K_EV] += 1;
            vdirty = st->l1_dirty[vw];
            if (st->l1_pib[vw]) {
                int64_t vrib = st->l1_rib[vw];
                int64_t row = (int64_t)st->l1_src[vw] * 7;
                if (vrib) {
                    st->K[K_EVU] += 1;
                    st->T[row + T_GOOD] += 1;
                } else {
                    st->K[K_EVN] += 1;
                    st->T[row + T_BAD] += 1;
                }
                feedback(st, vrib, st->l1_fid[vw]);
            }
        }
    } else {
        int64_t b = (fline & st->l1_mask) * st->W1;
        int64_t inv = -1, w;
        for (w = b; w < b + st->W1; w++) {
            int64_t t = st->l1_tag[w];
            if (t == fline) {
                st->l1_stamp[w] = tick;
                if (fdirty) st->l1_dirty[w] = 1;
                st->K[K_DUP1] += 1;
                return;
            }
            if (inv < 0 && t == MAP_EMPTY) inv = w;
        }
        if (inv >= 0) {
            vw = inv;
        } else {
            int64_t best = st->l1_stamp[b];
            vw = b;
            for (w = b + 1; w < b + st->W1; w++) {
                int64_t s = st->l1_stamp[w];
                if (s < best) { best = s; vw = w; }
            }
            st->K[K_EV] += 1;
            vtag = st->l1_tag[vw];
            vdirty = st->l1_dirty[vw];
            if (st->l1_pib[vw]) {
                int64_t vrib = st->l1_rib[vw];
                int64_t row = (int64_t)st->l1_src[vw] * 7;
                if (vrib) {
                    st->K[K_EVU] += 1;
                    st->T[row + T_GOOD] += 1;
                } else {
                    st->K[K_EVN] += 1;
                    st->T[row + T_BAD] += 1;
                }
                feedback(st, vrib, st->l1_fid[vw]);
            }
        }
    }
    st->l1_tag[vw] = fline;
    st->l1_dirty[vw] = (uint8_t)fdirty;
    st->l1_pib[vw] = (uint8_t)fpib;
    st->l1_rib[vw] = 0;
    st->l1_nsp[vw] = (uint8_t)fnsp;
    st->l1_src[vw] = (uint8_t)fsrc;
    st->l1_tpc[vw] = ftpc;
    st->l1_fid[vw] = ffid;
    st->l1_stamp[vw] = tick;
    if (fpib) st->K[K_PF1] += 1; else st->K[K_DF1] += 1;
    if (vdirty) l2_writeback(st, vtag, tick);
}

static void route(St *st, int64_t rline, int64_t rpc, int64_t rsrc,
                  int64_t rfid, int64_t tick) {
    int64_t row = rsrc * 7;
    st->T[row + T_GEN] += 1;
    if (st->W1 == 1) {
        if (st->l1_tag[rline & st->l1_mask] == rline) {
            st->T[row + T_SQ] += 1;
            return;
        }
    } else {
        int64_t b = (rline & st->l1_mask) * st->W1;
        int64_t w;
        for (w = b; w < b + st->W1; w++) {
            if (st->l1_tag[w] == rline) {
                st->T[row + T_SQ] += 1;
                return;
            }
        }
    }
    if (st->fmode == FMODE_TABLE) {
        if (st->tvals[rfid] >= st->thresh) {
            st->K[K_TLG] += 1;
            st->K[K_FA] += 1;
        } else {
            st->K[K_TLB] += 1;
            st->K[K_FR] += 1;
            st->T[row + T_FLT] += 1;
            return;
        }
    } else {
        st->K[K_FA] += 1;
    }
    st->T[row + T_ISS] += 1;
    l2_fetch(st, rline, 1, tick);
    st->K[K_B1P] += 1;
    l1_fill(st, rline, 1, rsrc, rpc, rfid, st->tagf, 0, tick);
}

int64_t kernel_span(
    const int64_t *mcls, const int64_t *mpc, const int64_t *mline,
    const int64_t *selffid, const int64_t *nspfid,
    int64_t *l1_tag, uint8_t *l1_dirty, uint8_t *l1_pib, uint8_t *l1_rib,
    uint8_t *l1_nsp, uint8_t *l1_src, int64_t *l1_tpc, int64_t *l1_fid,
    int64_t *l1_stamp,
    int64_t *l2_tag, uint8_t *l2_dirty, int64_t *l2_stamp,
    int64_t *dir_key, int64_t *dir_shadow, uint8_t *dir_conf,
    int64_t *aw_key, int64_t *aw_val,
    int64_t *tvals, int64_t *K, int64_t *T, int64_t *S, const int64_t *P,
    int64_t start, int64_t stop) {
    St st;
    int64_t STORE = P[P_STORE];
    int64_t SW_PF = P[P_SWPF];
    int64_t nsp_on = P[P_NSP];
    int64_t wb = P[P_WB];
    int64_t degree = P[P_DEGREE];
    int64_t n_mem = P[P_NMEM];
    int64_t sdp_hash = P[P_SDPHASH];
    int64_t tbits = P[P_TBITS];
    int64_t scheme = P[P_SCHEME];
    int64_t i, d;

    st.l1_tag = l1_tag; st.l1_dirty = l1_dirty; st.l1_pib = l1_pib;
    st.l1_rib = l1_rib; st.l1_nsp = l1_nsp; st.l1_src = l1_src;
    st.l1_tpc = l1_tpc; st.l1_fid = l1_fid; st.l1_stamp = l1_stamp;
    st.l2_tag = l2_tag; st.l2_dirty = l2_dirty; st.l2_stamp = l2_stamp;
    st.dir_key = dir_key; st.dir_shadow = dir_shadow; st.dir_conf = dir_conf;
    st.aw_key = aw_key; st.aw_val = aw_val;
    st.tvals = tvals; st.K = K; st.T = T;
    st.W1 = P[P_W1]; st.l1_mask = P[P_L1MASK];
    st.W2 = P[P_W2]; st.l2_mask = P[P_L2MASK];
    st.fmode = P[P_FMODE]; st.thresh = P[P_THRESH]; st.maxv = P[P_MAXV];
    st.dir_mask = P[P_DIRMASK]; st.aw_mask = P[P_AWMASK];
    st.sdp_on = P[P_SDP]; st.tagf = P[P_TAGF];

    for (i = start; i < stop; i++) {
        int64_t cls = mcls[i];
        int64_t line = mline[i];
        int64_t is_write, hw;
        if (cls == SW_PF) {
            K[K_SWX] += 1;
            route(&st, line, mpc[i], 3, selffid[i], i);
            continue;
        }
        is_write = cls == STORE;
        if (st.W1 == 1) {
            hw = line & st.l1_mask;
            if (l1_tag[hw] != line) hw = -1;
        } else {
            int64_t b = (line & st.l1_mask) * st.W1;
            int64_t w;
            hw = -1;
            for (w = b; w < b + st.W1; w++) {
                if (l1_tag[w] == line) { hw = w; break; }
            }
        }
        if (hw >= 0) {
            int64_t tag_hit = 0;
            if (nsp_on && l1_nsp[hw]) {
                l1_nsp[hw] = 0;
                tag_hit = 1;
            }
            if (is_write) {
                K[K_WH] += 1;
                l1_dirty[hw] = 1;
            } else {
                K[K_RH] += 1;
            }
            if (l1_pib[hw] && !l1_rib[hw]) {
                l1_rib[hw] = 1;
                K[K_FU] += 1;
                if (st.sdp_on) {
                    int64_t slot = map_lookup(aw_key, st.aw_mask, line);
                    if (slot >= 0) {
                        int64_t parent = aw_val[slot];
                        int64_t ds;
                        aw_key[slot] = MAP_TOMB;
                        ds = map_lookup(dir_key, st.dir_mask, parent);
                        if (ds >= 0 && dir_shadow[ds] == line) {
                            dir_conf[ds] = 1;
                            K[K_SDPC] += 1;
                        }
                    }
                }
            }
            l1_stamp[hw] = i;
            if (tag_hit) {
                int64_t pc = mpc[i];
                K[K_NSPT] += 1;
                for (d = 1; d <= degree; d++) {
                    route(&st, line + d, pc, 1, nspfid[(d - 1) * n_mem + i], i);
                }
            }
        } else {
            int64_t pc, fdirty;
            if (is_write) K[K_WM] += 1; else K[K_RM] += 1;
            l2_fetch(&st, line, 0, i);
            K[K_B1D] += 1;
            fdirty = (is_write && wb) ? 1 : 0;
            l1_fill(&st, line, 0, 0, 0, 0, 0, fdirty, i);
            pc = mpc[i];
            if (nsp_on) {
                K[K_NSPM] += 1;
                for (d = 1; d <= degree; d++) {
                    route(&st, line + d, pc, 1, nspfid[(d - 1) * n_mem + i], i);
                }
            }
            if (st.sdp_on) {
                int64_t ds = map_lookup(dir_key, st.dir_mask, line);
                int64_t prev;
                if (ds >= 0 && dir_shadow[ds] != line) {
                    if (dir_conf[ds]) {
                        int64_t shadow = dir_shadow[ds];
                        int64_t aw, fid;
                        dir_conf[ds] = 0;
                        aw = map_insert(aw_key, st.aw_mask, shadow);
                        if (aw < 0) return 2;
                        aw_val[aw] = line;
                        K[K_SDPI] += 1;
                        if (sdp_hash) {
                            fid = table_hash(shadow, tbits, scheme);
                        } else {
                            fid = selffid[i];
                        }
                        route(&st, shadow, pc, 2, fid, i);
                    } else {
                        K[K_SDPS] += 1;
                    }
                }
                prev = S[S_SDP_LAST];
                if (prev != -1 && prev != line) {
                    int64_t os_ = map_lookup(dir_key, st.dir_mask, prev);
                    if (os_ < 0 || dir_shadow[os_] != line) {
                        int64_t slot = map_insert(dir_key, st.dir_mask, prev);
                        if (slot < 0) return 1;
                        dir_shadow[slot] = line;
                        dir_conf[slot] = 1;
                        K[K_SDPL] += 1;
                    }
                }
                S[S_SDP_LAST] = line;
            }
        }
    }
    return 0;
}
"""


def c_source() -> str:
    """The complete generated C translation unit."""
    return _defines() + _BODY


def _find_compiler() -> Optional[str]:
    env = os.environ.get("CC")
    if env and shutil.which(env):
        return env
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    env = os.environ.get(_CACHE_DIR_ENV)
    base = Path(env) if env else Path.home() / ".cache" / "repro"
    return base / "ckernel"


def _build(source: str) -> Path:
    """Compile ``source`` into the cache; atomic, concurrency-safe."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    so_path = directory / f"kernel-{digest}.so"
    if so_path.exists():
        return so_path
    c_path = directory / f"kernel-{digest}.c"
    tmp_so = directory / f"kernel-{digest}.{os.getpid()}.tmp.so"
    c_path.write_text(source)
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
    cmd = [compiler, "-O2", "-fPIC", "-shared", "-o", str(tmp_so), str(c_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        tmp_so.unlink(missing_ok=True)
        raise RuntimeError(f"C kernel compile failed: {proc.stderr.strip()[:500]}")
    os.replace(tmp_so, so_path)
    return so_path


_N_ARRAYS = 27
_FN: Optional[Callable] = None
_TRIED = False
LOAD_ERROR = ""


def _bind(so_path: Path) -> Callable:
    lib = ctypes.CDLL(str(so_path))
    fn = lib.kernel_span
    fn.restype = ctypes.c_int64
    fn.argtypes = [ctypes.c_void_p] * _N_ARRAYS + [ctypes.c_int64] * 2

    def span(*args):
        arrays, start, stop = args[:_N_ARRAYS], args[-2], args[-1]
        return fn(*(a.ctypes.data for a in arrays), int(start), int(stop))

    return span


def load() -> Optional[Callable]:
    """The compiled ``kernel_span`` (same signature as the Python one),
    or ``None`` when this leg is unavailable; probed once per process."""
    global _FN, _TRIED, LOAD_ERROR
    if _TRIED:
        return _FN
    _TRIED = True
    try:
        _FN = _bind(_build(c_source()))
    except Exception as exc:  # any failure degrades to jit/interp legs
        LOAD_ERROR = str(exc)
        _FN = None
    return _FN
