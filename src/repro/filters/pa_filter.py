"""Per-Address (PA) pollution filter — paper Section 4.1.

Indexes the history table with the *cache line address* of the prefetched
data (byte address with line-offset bits stripped — our requests already
carry line addresses).  The PA scheme can tell apart the different target
addresses a single memory instruction generates across iterations, at the
cost of more aliasing pressure on a fixed-size table.
"""

from __future__ import annotations

from repro.common.stats import StatGroup
from repro.filters.base import PollutionFilter
from repro.filters.history_table import HistoryTable
from repro.prefetch.base import PrefetchRequest


class PAFilter(PollutionFilter):
    name = "pa"

    def __init__(
        self,
        entries: int = 4096,
        counter_bits: int = 2,
        initial_value: int = 2,
        threshold: int = 2,
        hash_scheme: str = "fold_xor",
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(stats)
        self.table = HistoryTable(
            entries, counter_bits, initial_value, threshold, hash_scheme, self.stats["table"]
        )

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        return self._count_decision(self.table.predict_good(request.line_addr))

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)
        self.table.train(line_addr, referenced)

    def reset(self) -> None:
        self.table.reset()
