"""Hybrid PA⊕PC pollution filter — a design-space extension.

The paper evaluates PA and PC indexing separately and finds each wins on
different benchmarks (PA preserves streaming workloads whose addresses are
always fresh; PC learns faster on pointer workloads with few static
sites).  The obvious next design point — two half-size tables voting — is
implemented here for the ablation benches.

Voting policies:

* ``"and"``  — prefetch only if *both* tables predict good (aggressive
  filtering: a prefetch is dropped when either view has gone bad),
* ``"or"``   — prefetch if *either* predicts good (conservative filtering:
  both views must agree the prefetch is bad to drop it).

Both tables train on every feedback, so each keeps a complete view.  With
equal total storage to the paper's single 4096-entry table (two 2048-entry
tables), this tests whether the two index spaces carry complementary
information.
"""

from __future__ import annotations

from repro.common.stats import StatGroup
from repro.filters.base import PollutionFilter
from repro.filters.history_table import HistoryTable
from repro.prefetch.base import PrefetchRequest


class HybridFilter(PollutionFilter):
    name = "hybrid"

    def __init__(
        self,
        entries_per_table: int = 2048,
        counter_bits: int = 2,
        initial_value: int = 2,
        threshold: int = 2,
        policy: str = "or",
        hash_scheme: str = "fold_xor",
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(stats)
        if policy not in ("and", "or"):
            raise ValueError("policy must be 'and' or 'or'")
        self.policy = policy
        self.pa_table = HistoryTable(
            entries_per_table, counter_bits, initial_value, threshold, hash_scheme, self.stats["pa"]
        )
        self.pc_table = HistoryTable(
            entries_per_table, counter_bits, initial_value, threshold, hash_scheme, self.stats["pc"]
        )

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        pa_good = self.pa_table.predict_good(request.line_addr)
        pc_good = self.pc_table.predict_good(request.trigger_pc)
        allowed = (pa_good and pc_good) if self.policy == "and" else (pa_good or pc_good)
        return self._count_decision(allowed)

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)
        self.pa_table.train(line_addr, referenced)
        self.pc_table.train(trigger_pc, referenced)

    def reset(self) -> None:
        self.pa_table.reset()
        self.pc_table.reset()

    @property
    def storage_bytes(self) -> int:
        return self.pa_table.storage_bytes + self.pc_table.storage_bytes
