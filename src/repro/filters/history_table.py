"""The filter's history table (Figure 3, right side).

A single-level, direct-indexed table of 2-bit saturating counters, looked
up and updated "the same as those for branch predictors" (Section 4).  The
index is a hash of either the prefetch line address (PA scheme) or the
trigger PC (PC scheme) — the table itself is agnostic, it just maps a key.

Sizing: the paper's default is 4096 entries = 1 KB of 2-bit counters, and
Section 5.3 sweeps 1024 (256 B) through 16384 (4 KB) entries.
"""

from __future__ import annotations

import numpy as np

from repro.common.hashing import table_index, table_index_array
from repro.common.saturating import SaturatingCounterArray
from repro.common.stats import StatGroup


class HistoryTable:
    """Direct-indexed saturating-counter predictor over arbitrary keys."""

    def __init__(
        self,
        entries: int = 4096,
        counter_bits: int = 2,
        initial_value: int = 2,
        threshold: int = 2,
        hash_scheme: str = "fold_xor",
        stats: StatGroup | None = None,
    ) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("history table entries must be a positive power of two")
        self.entries = entries
        self.hash_scheme = hash_scheme
        self.counters = SaturatingCounterArray(entries, counter_bits, initial_value, threshold)
        self._initial = initial_value
        self.stats = stats if stats is not None else StatGroup("history_table")
        self._n_lookup_good = 0
        self._n_lookup_bad = 0
        self._n_train_good = 0
        self._n_train_bad = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        for key, attr in (
            ("lookup_good", "_n_lookup_good"),
            ("lookup_bad", "_n_lookup_bad"),
            ("train_good", "_n_train_good"),
            ("train_bad", "_n_train_bad"),
        ):
            pending = getattr(self, attr)
            if pending:
                c[key] = c.get(key, 0) + pending
                setattr(self, attr, 0)

    def index_of(self, key: int) -> int:
        return table_index(key, self.entries, self.hash_scheme)

    def index_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`index_of` over an array of keys."""
        return table_index_array(keys, self.entries, self.hash_scheme)

    def predict_many(self, keys: np.ndarray) -> np.ndarray:
        """Batch lookup path: per-key allow/deny without touching counters.

        Lookups have no side effects on the counters, so this matches a
        scalar :meth:`predict_good` loop exactly; the per-decision lookup
        statistics are folded in as bulk counts.
        """
        allowed = self.counters.predict_many(self.index_many(keys))
        good = int(np.count_nonzero(allowed))
        self._n_lookup_good += good
        self._n_lookup_bad += len(allowed) - good
        return allowed

    def predict_good(self, key: int) -> bool:
        """Lookup: should a prefetch keyed by ``key`` be performed?"""
        good = self.counters.predict(self.index_of(key))
        if good:
            self._n_lookup_good += 1
        else:
            self._n_lookup_bad += 1
        return good

    def train(self, key: int, was_referenced: bool) -> None:
        """Update from eviction feedback (strengthen on use, weaken on waste)."""
        self.counters.update(self.index_of(key), was_referenced)
        if was_referenced:
            self._n_train_good += 1
        else:
            self._n_train_bad += 1

    def reset(self) -> None:
        self.counters.fill(self._initial)

    def validate(self) -> None:
        """Sanitizer audit: all 2-bit counters still within range."""
        self.counters.validate(site="history_table")

    # -- analysis -----------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        bits = self.counters.max_value.bit_length()
        return self.entries * bits // 8

    def fraction_allowing(self) -> float:
        """Fraction of entries currently predicting "good" (table health)."""
        return self.counters.fraction_predicting_true()
