"""Oracle filter — the Section 3 motivation experiment.

The paper motivates the hardware filter by "artificially eliminating those
bad [prefetches]" and measuring what an ideal filter could buy.  An oracle
needs future knowledge, so it is realised as a two-pass protocol:

1. **Profiling pass** — run with :class:`OracleProfileBuilder` in the filter
   slot; it allows everything and records, per (line address, trigger PC)
   key, every good/bad outcome.  The simulator guarantees every allowed
   prefetch receives exactly one feedback (eviction or end-of-run flush),
   so the profile is complete.
2. **Oracle pass** — rerun with :class:`OracleFilter`; a request is dropped
   iff its key's profiled outcomes were majority-bad (ties and unprofiled
   keys default to allow).

Majority-per-key is used rather than exact instance replay because
eliminating prefetches perturbs downstream cache state — NSP tag chains
shift and different requests are generated — so instance alignment between
the two passes does not survive.  The same caveat applies to the paper's
own elimination experiment; the oracle is an upper-bound *estimate* of
ideal filtering, not a reachable design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.stats import StatGroup
from repro.filters.base import PollutionFilter
from repro.prefetch.base import PrefetchRequest

_Key = Tuple[int, int]  # (line_addr, trigger_pc)


@dataclass
class OracleProfile:
    """Per-(line, PC) outcome sequences from a profiling pass."""

    outcomes: Dict[_Key, List[bool]] = field(default_factory=dict)

    def record(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self.outcomes.setdefault((line_addr, trigger_pc), []).append(referenced)

    def majority_good(self, line_addr: int, trigger_pc: int) -> Optional[bool]:
        """True/False per majority outcome; None when the key was never seen.

        Ties count as good: the paper eliminates prefetches *known* to be
        bad, and an ambiguous key is not known-bad.
        """
        seq = self.outcomes.get((line_addr, trigger_pc))
        if seq is None:
            return None
        good = sum(seq)
        return good * 2 >= len(seq)

    @property
    def total_recorded(self) -> int:
        return sum(len(v) for v in self.outcomes.values())

    @property
    def total_bad(self) -> int:
        return sum(sum(1 for o in v if not o) for v in self.outcomes.values())


class OracleProfileBuilder(PollutionFilter):
    """Pass-everything filter that records outcome sequences."""

    name = "oracle_profiler"

    def __init__(self, stats: StatGroup | None = None) -> None:
        super().__init__(stats)
        self.profile = OracleProfile()

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        return self._count_decision(True)

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)
        self.profile.record(line_addr, trigger_pc, referenced)


class OracleFilter(PollutionFilter):
    """Replays a profile, dropping the prefetches that went bad."""

    name = "oracle"

    def __init__(self, profile: OracleProfile, stats: StatGroup | None = None) -> None:
        super().__init__(stats)
        self.profile = profile
        self._verdict_cache: Dict[_Key, Optional[bool]] = {}

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        key = (request.line_addr, request.trigger_pc)
        verdict = self._verdict_cache.get(key, _UNSET)
        if verdict is _UNSET:
            verdict = self.profile.majority_good(request.line_addr, request.trigger_pc)
            self._verdict_cache[key] = verdict
        if verdict is None:
            self.stats.bump("unprofiled")
            return self._count_decision(True)
        return self._count_decision(verdict)

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)

    def reset(self) -> None:
        self._verdict_cache.clear()


_UNSET = object()
