"""Accuracy-adaptive filter — the paper's "advanced features" sketch.

Section 5.2.1 closes with: "our pollution filter can be made adaptive to
start filtering when the prefetching becomes too aggressive (with low
accuracy)."  This module implements that idea: a sliding window over recent
prefetch outcomes estimates the prefetcher's current accuracy; while the
accuracy stays above a floor the filter passes everything (an accurate
prefetcher, like SDP, loses more than it gains from filtering — the SDP
numbers in §5.2.1 motivate exactly this), and only when accuracy drops
below the floor does the inner PA/PC history table take over.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.common.stats import StatGroup
from repro.filters.base import PollutionFilter
from repro.filters.history_table import HistoryTable
from repro.prefetch.base import PrefetchRequest


class AdaptiveFilter(PollutionFilter):
    name = "adaptive"

    def __init__(
        self,
        entries: int = 4096,
        counter_bits: int = 2,
        initial_value: int = 2,
        threshold: int = 2,
        scheme: str = "pa",
        accuracy_floor: float = 0.5,
        window: int = 512,
        hash_scheme: str = "fold_xor",
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(stats)
        if scheme not in ("pa", "pc"):
            raise ValueError("inner scheme must be 'pa' or 'pc'")
        if not 0.0 <= accuracy_floor <= 1.0:
            raise ValueError("accuracy floor must be a fraction")
        if window < 1:
            raise ValueError("window must be positive")
        self.scheme = scheme
        self.accuracy_floor = accuracy_floor
        self.window = window
        self.table = HistoryTable(
            entries, counter_bits, initial_value, threshold, hash_scheme, self.stats["table"]
        )
        self._recent: Deque[bool] = deque(maxlen=window)
        self._good_in_window = 0

    # ------------------------------------------------------------------
    @property
    def recent_accuracy(self) -> float:
        """Good fraction over the feedback window (1.0 before any feedback)."""
        n = len(self._recent)
        return self._good_in_window / n if n else 1.0

    @property
    def filtering_active(self) -> bool:
        # Demand a full window before judging: a few early bad prefetches
        # must not flip a fundamentally accurate prefetcher into filtering.
        return len(self._recent) >= self.window and self.recent_accuracy < self.accuracy_floor

    def _key(self, request: PrefetchRequest) -> int:
        return request.line_addr if self.scheme == "pa" else request.trigger_pc

    # ------------------------------------------------------------------
    def should_prefetch(self, request: PrefetchRequest) -> bool:
        if not self.filtering_active:
            self.stats.bump("bypass")
            return self._count_decision(True)
        return self._count_decision(self.table.predict_good(self._key(request)))

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)
        if len(self._recent) == self._recent.maxlen and self._recent[0]:
            self._good_in_window -= 1
        self._recent.append(referenced)
        if referenced:
            self._good_in_window += 1
        key = line_addr if self.scheme == "pa" else trigger_pc
        self.table.train(key, referenced)

    def reset(self) -> None:
        self.table.reset()
        self._recent.clear()
        self._good_in_window = 0


class PerSourceAdaptiveFilter(PollutionFilter):
    """Adaptive filtering with one accuracy gate per prefetch source.

    The §5.2.1 data motivates this refinement: filtering helps the
    inaccurate prefetcher (NSP, good/bad 1.8) and *hurts* the accurate one
    (SDP, good/bad 11.7).  A single global accuracy window — as in
    :class:`AdaptiveFilter` — blends the two; this variant keeps a sliding
    outcome window per :class:`~repro.mem.cache.FillSource` and applies the
    history table only to requests from sources whose own accuracy has
    dropped below the floor.  Feedback attribution uses the engine's
    source-tagged update path (``on_feedback_ex``).
    """

    name = "adaptive_per_source"

    def __init__(
        self,
        entries: int = 4096,
        counter_bits: int = 2,
        initial_value: int = 2,
        threshold: int = 2,
        scheme: str = "pa",
        accuracy_floor: float = 0.5,
        window: int = 256,
        hash_scheme: str = "fold_xor",
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(stats)
        if scheme not in ("pa", "pc"):
            raise ValueError("inner scheme must be 'pa' or 'pc'")
        if not 0.0 <= accuracy_floor <= 1.0:
            raise ValueError("accuracy floor must be a fraction")
        if window < 1:
            raise ValueError("window must be positive")
        self.scheme = scheme
        self.accuracy_floor = accuracy_floor
        self.window = window
        self.table = HistoryTable(
            entries, counter_bits, initial_value, threshold, hash_scheme, self.stats["table"]
        )
        self._windows: dict = {}

    def _window_for(self, source) -> Deque[bool]:
        win = self._windows.get(source)
        if win is None:
            win = self._windows[source] = deque(maxlen=self.window)
        return win

    def source_accuracy(self, source) -> float:
        win = self._windows.get(source)
        if not win:
            return 1.0
        return sum(win) / len(win)

    def filtering_active_for(self, source) -> bool:
        win = self._windows.get(source)
        if win is None or len(win) < self.window:
            return False
        return self.source_accuracy(source) < self.accuracy_floor

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        if not self.filtering_active_for(request.source):
            self.stats.bump("bypass")
            return self._count_decision(True)
        key = request.line_addr if self.scheme == "pa" else request.trigger_pc
        return self._count_decision(self.table.predict_good(key))

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        # Source-less feedback (legacy callers): train the table only.
        self._count_feedback(referenced)
        key = line_addr if self.scheme == "pa" else trigger_pc
        self.table.train(key, referenced)

    def on_feedback_ex(self, line_addr: int, trigger_pc: int, referenced: bool, source=None) -> None:
        self.on_feedback(line_addr, trigger_pc, referenced)
        if source is not None:
            self._window_for(source).append(referenced)

    def reset(self) -> None:
        self.table.reset()
        self._windows.clear()
