"""Program-Counter (PC) pollution filter — paper Section 4.2.

Indexes the history table with the PC of the instruction that *triggered*
the prefetch: the software-prefetch instruction itself, or the memory
instruction whose access fired a hardware prefetcher.  One PC aggregates
the fate of every address it prefetches, so the scheme is coarser than PA
but needs far fewer distinct table entries — the paper finds it slightly
better overall (9.1% vs 8.2% IPC at 8 KB).
"""

from __future__ import annotations

from repro.common.stats import StatGroup
from repro.filters.base import PollutionFilter
from repro.filters.history_table import HistoryTable
from repro.prefetch.base import PrefetchRequest


class PCFilter(PollutionFilter):
    name = "pc"

    def __init__(
        self,
        entries: int = 4096,
        counter_bits: int = 2,
        initial_value: int = 2,
        threshold: int = 2,
        hash_scheme: str = "fold_xor",
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(stats)
        self.table = HistoryTable(
            entries, counter_bits, initial_value, threshold, hash_scheme, self.stats["table"]
        )

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        return self._count_decision(self.table.predict_good(request.trigger_pc))

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)
        self.table.train(trigger_pc, referenced)

    def reset(self) -> None:
        self.table.reset()
