"""Pollution-filter protocol.

The filter sits between prefetch generation and the prefetch queue
(Figure 3).  Its two entry points correspond to the two data paths in the
figure: the lookup path (incoming prefetches checked against the history
table) and the update path (evicted-line PIB/RIB feedback).
"""

from __future__ import annotations

import abc

from repro.common.stats import StatGroup
from repro.prefetch.base import PrefetchRequest


class PollutionFilter(abc.ABC):
    """Decides, per in-flight prefetch, whether it may enter the cache."""

    name = "abstract"

    def __init__(self, stats: StatGroup | None = None) -> None:
        self.stats = stats if stats is not None else StatGroup(self.name)
        self._n_allowed = 0
        self._n_rejected = 0
        self._n_fb_good = 0
        self._n_fb_bad = 0
        self.stats.bind_flush(self._flush_stats)

    def _flush_stats(self) -> None:
        c = self.stats.counters
        for key, attr in (
            ("allowed", "_n_allowed"),
            ("rejected", "_n_rejected"),
            ("feedback_good", "_n_fb_good"),
            ("feedback_bad", "_n_fb_bad"),
        ):
            pending = getattr(self, attr)
            if pending:
                c[key] = c.get(key, 0) + pending
                setattr(self, attr, 0)

    @abc.abstractmethod
    def should_prefetch(self, request: PrefetchRequest) -> bool:
        """Lookup path: True lets the prefetch proceed to the queue."""

    @abc.abstractmethod
    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        """Update path: a prefetched line left the cache.

        ``referenced`` is the line's RIB — True means the prefetch was good.
        """

    def on_feedback_ex(
        self, line_addr: int, trigger_pc: int, referenced: bool, source=None
    ) -> None:
        """Update path with the prefetch source attached.

        The engine calls this variant (the evicted line records which
        prefetcher filled it); the default forwards to :meth:`on_feedback`.
        Filters that discriminate by source — e.g. the per-source adaptive
        filter — override this instead.
        """
        self.on_feedback(line_addr, trigger_pc, referenced)

    def reset(self) -> None:
        """Forget learned state."""

    # -- shared accounting -------------------------------------------------
    def _count_decision(self, allowed: bool) -> bool:
        if allowed:
            self._n_allowed += 1
        else:
            self._n_rejected += 1
        return allowed

    def _count_feedback(self, referenced: bool) -> None:
        if referenced:
            self._n_fb_good += 1
        else:
            self._n_fb_bad += 1
