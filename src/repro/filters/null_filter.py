"""No-filtering baseline: every prefetch is allowed.

This is the paper's "without pollution control" configuration — the
reference point every figure normalises against.  Feedback is still
accepted (and counted) so instrumentation paths stay identical across
filter kinds.
"""

from __future__ import annotations

from repro.filters.base import PollutionFilter
from repro.prefetch.base import PrefetchRequest


class NullFilter(PollutionFilter):
    name = "none"

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        return self._count_decision(True)

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)
