"""Cache-pollution filters — the paper's contribution.

Every filter implements the same two-sided protocol
(:class:`~repro.filters.base.PollutionFilter`):

* ``should_prefetch(request)`` — consulted for every in-flight prefetch
  before it is issued to the prefetch queue; returning False terminates the
  prefetch (no L1 fill, no bus traffic, no port use);
* ``on_feedback(line_addr, trigger_pc, referenced)`` — called when a
  prefetched line leaves the L1 (or prefetch buffer), delivering the PIB/RIB
  verdict the history table learns from.

Implementations:

* :class:`~repro.filters.null_filter.NullFilter` — no filtering (baseline),
* :class:`~repro.filters.pa_filter.PAFilter` — Per-Address scheme (§4.1),
* :class:`~repro.filters.pc_filter.PCFilter` — Program-Counter scheme (§4.2),
* :class:`~repro.filters.static_filter.StaticFilter` — Srinivasan-style
  offline profiling filter (the related-work comparison),
* :class:`~repro.filters.oracle.OracleFilter` — perfect future knowledge
  (the Section 3 motivation experiment),
* :class:`~repro.filters.adaptive.AdaptiveFilter` — accuracy-gated PA/PC
  filtering (the "advanced features" sketched in §5.2.1).
"""

from repro.filters.adaptive import AdaptiveFilter, PerSourceAdaptiveFilter
from repro.filters.base import PollutionFilter
from repro.filters.history_table import HistoryTable
from repro.filters.hybrid import HybridFilter
from repro.filters.null_filter import NullFilter
from repro.filters.oracle import OracleFilter, OracleProfile, OracleProfileBuilder
from repro.filters.pa_filter import PAFilter
from repro.filters.pc_filter import PCFilter
from repro.filters.static_filter import ProfilingObserver, StaticFilter, StaticProfile

__all__ = [
    "AdaptiveFilter",
    "HistoryTable",
    "HybridFilter",
    "NullFilter",
    "OracleFilter",
    "OracleProfile",
    "OracleProfileBuilder",
    "PAFilter",
    "PCFilter",
    "PerSourceAdaptiveFilter",
    "PollutionFilter",
    "ProfilingObserver",
    "StaticFilter",
    "StaticProfile",
]
