"""Static (profiling-based) filter — the related-work baseline.

Srinivasan et al.'s static filter [18] collects information about polluting
prefetches *off-line through profiling* and uses it to gate prefetches in
later runs.  The paper contrasts its dynamic filters against this approach
("it lacks the dynamic adaptivity during runtime when the working set
changes") and reports beating its 2–4% gains.

We reproduce it faithfully as a two-phase protocol:

1. a profiling run (any filter; normally none) produces per-trigger-PC
   good/bad counts — :class:`StaticProfile` accumulates them;
2. :class:`StaticFilter` then rejects every prefetch whose trigger PC was
   bad more than ``bad_fraction_threshold`` of the time in the profile.

The profile is immutable during the filtered run: no runtime adaptation,
exactly the property the paper criticises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.common.stats import StatGroup
from repro.filters.base import PollutionFilter
from repro.prefetch.base import PrefetchRequest


@dataclass
class StaticProfile:
    """Per-trigger-PC prefetch outcome counts from a profiling run."""

    good: Dict[int, int] = field(default_factory=dict)
    bad: Dict[int, int] = field(default_factory=dict)

    def record(self, trigger_pc: int, referenced: bool) -> None:
        book = self.good if referenced else self.bad
        book[trigger_pc] = book.get(trigger_pc, 0) + 1

    def bad_fraction(self, trigger_pc: int) -> float | None:
        """Observed bad fraction for a PC, or None if never profiled."""
        g = self.good.get(trigger_pc, 0)
        b = self.bad.get(trigger_pc, 0)
        total = g + b
        return (b / total) if total else None

    def polluting_pcs(self, threshold: float) -> frozenset[int]:
        out = set()
        # sorted(): set iteration order depends on hash seeding/insertion
        # history, and deterministic replay (result cache, golden corpus)
        # requires every state update to be order-stable.
        for pc in sorted(set(self.good) | set(self.bad)):
            frac = self.bad_fraction(pc)
            if frac is not None and frac > threshold:
                out.add(pc)
        return frozenset(out)

    @classmethod
    def from_counts(cls, good: Mapping[int, int], bad: Mapping[int, int]) -> "StaticProfile":
        return cls(dict(good), dict(bad))


class StaticFilter(PollutionFilter):
    name = "static"

    def __init__(
        self,
        profile: StaticProfile,
        bad_fraction_threshold: float = 0.5,
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(stats)
        if not 0.0 <= bad_fraction_threshold <= 1.0:
            raise ValueError("threshold must be a fraction")
        self.profile = profile
        self.threshold = bad_fraction_threshold
        self._blocked = profile.polluting_pcs(bad_fraction_threshold)

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        return self._count_decision(request.trigger_pc not in self._blocked)

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        # Static by construction: feedback is counted but never learned from.
        self._count_feedback(referenced)

    @property
    def blocked_pc_count(self) -> int:
        return len(self._blocked)


class ProfilingObserver(PollutionFilter):
    """Pass-through filter that *builds* a StaticProfile during a run."""

    name = "profiling"

    def __init__(self, stats: StatGroup | None = None) -> None:
        super().__init__(stats)
        self.profile = StaticProfile()

    def should_prefetch(self, request: PrefetchRequest) -> bool:
        return self._count_decision(True)

    def on_feedback(self, line_addr: int, trigger_pc: int, referenced: bool) -> None:
        self._count_feedback(referenced)
        self.profile.record(trigger_pc, referenced)
