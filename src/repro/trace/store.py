"""On-disk trace cache and zero-copy shared-memory trace handoff.

Trace synthesis is deterministic but not free: a million-instruction
workload takes longer to *generate* than the vector engine takes to
*simulate* it, and a parallel sweep regenerates the same trace once per
worker process.  This module removes both costs:

* :class:`TraceStore` persists generated traces as ``.npz`` files keyed
  by the SHA-256 of their complete inputs (workload, length, seed,
  software-prefetch settings, generator version), exactly mirroring the
  :mod:`repro.analysis.result_cache` conventions — same environment
  variable, same atomic-replace writes, same corrupt-file tolerance.
* :func:`share_trace` / :func:`attach_trace` move a trace between
  processes through POSIX shared memory: the parent materialises the
  four columns once into one segment, workers map them read-only with
  no copy and no pickling of multi-megabyte arrays.

Sharing protocol (the part that is easy to get wrong):

1. the parent calls :func:`share_trace` and keeps the returned
   :class:`SharedTrace` alive while any worker might attach;
2. each worker calls :func:`attach_trace` with the (picklable)
   :class:`SharedTraceHandle`, uses the trace, then calls
   ``detach()`` on the attachment;
3. the parent finally calls :meth:`SharedTrace.close` which unlinks
   the segment.

Workers never unlink: the owner does, exactly once, in step 3.  (On
Python < 3.13 an attachment also registers with the resource tracker;
because workers inherit the owner's tracker process this is a no-op —
see :func:`attach_trace`.)
"""

from __future__ import annotations

import atexit
import hashlib
import io
import json
import os
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.common.diskio import PressureGuard, atomic_write_bytes, sweep_stale_tmp
from repro.common.faults import fault_point
from repro.trace.stream import Trace

#: Bump whenever workload generators or the software-prefetch inserter
#: change their output: every key derived with the new tag misses against
#: traces stored under the old one.
TRACE_VERSION = "1"

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_store_dir() -> Path:
    env = os.environ.get(_CACHE_DIR_ENV)
    base = Path(env) if env else Path.home() / ".cache" / "repro"
    return base / "traces"


def trace_key(
    workload: str,
    n_insts: int = 100_000,
    seed: int = 0,
    software_prefetch: bool = True,
    lookahead_lines: int = 4,
    version: str = TRACE_VERSION,
) -> str:
    """Stable content hash of one trace's complete generation inputs."""
    payload = {
        "version": version,
        "workload": workload,
        "n_insts": n_insts,
        "seed": seed,
        "software_prefetch": software_prefetch,
        "lookahead_lines": lookahead_lines,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def trace_digest(trace: Trace) -> str:
    """SHA-256 over the trace's column bytes and name.

    Stored alongside the columns in every ``.npz`` and re-derived on
    load, so a flipped bit that still parses as a valid archive (the
    failure mode plain structural checks cannot see) is caught instead
    of silently simulated.
    """
    h = hashlib.sha256()
    h.update(trace.iclass.tobytes())
    h.update(trace.pc.tobytes())
    h.update(trace.addr.tobytes())
    h.update(trace.taken.tobytes())
    h.update(trace.name.encode())
    return h.hexdigest()


class TraceStore:
    """Content-addressed ``.npz`` store of generated traces.

    ``get`` is tolerant by design: a missing, corrupt, or structurally
    stale file is treated as a miss (and a corrupt file is removed), so
    a killed process or a format change can never wedge the store.
    Quarantined entries are *counted* (``.stats``) so a degraded disk is
    distinguishable from a cold store; construction also sweeps temp
    files orphaned by killed writers.
    """

    def __init__(self, directory: Optional[os.PathLike | str] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_store_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.pressure_skipped = 0
        # Disk-only guard (see ResultCache): traces are rebuildable, so
        # skipping a write under pressure costs time, never correctness.
        self._pressure = PressureGuard(self.directory, max_rss_bytes=None)
        self.stale_tmp_removed = sweep_stale_tmp(self.directory)

    @property
    def stats(self) -> Dict[str, int]:
        """Health counters: corruption shows up here, not as cold misses."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "pressure_skipped": self.pressure_skipped,
            "stale_tmp_removed": self.stale_tmp_removed,
        }

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def get(self, key: str) -> Optional[Trace]:
        path = self._path(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                trace = Trace(
                    data["iclass"],
                    data["pc"],
                    data["addr"],
                    data["taken"],
                    name=str(data["name"][()]),
                )
                # Integrity before structure: a missing digest (pre-digest
                # file or foreign writer) raises KeyError and lands in the
                # same quarantine path as a mismatch.
                stored = str(data["digest"][()])
                if stored != trace_digest(trace):
                    raise ValueError("trace artifact digest mismatch")
                trace.validate()
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, KeyError, ValueError):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            self.quarantined += 1
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def put(self, key: str, trace: Trace) -> None:
        if self._pressure.check() is not None:
            self.pressure_skipped += 1
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        try:
            digest = trace_digest(trace)
            spec = fault_point("cache", key=key)
            addr = trace.addr
            if spec is not None and spec.kind == "corrupt-artifact" and len(addr):
                # Structurally valid archive, stale digest: one line address
                # nudged after digesting.  Only the digest check can see it.
                addr = addr.copy()
                addr[0] ^= np.uint64(64)
            # Serialise to memory first: np.savez appends ``.npz`` to
            # unknown suffixes, which would break the atomic rename.
            buf = io.BytesIO()
            np.savez(
                buf,
                iclass=trace.iclass,
                pc=trace.pc,
                addr=addr,
                taken=trace.taken,
                name=np.asarray(trace.name),
                digest=np.asarray(digest),
            )
            atomic_write_bytes(path, buf.getvalue())
            if spec is not None and spec.kind == "corrupt-cache":
                # Deliberately torn bytes: the fault models exactly what
                # the sealed-write helper exists to prevent.
                path.write_bytes(b"\x00 injected corruption")  # repro-lint: disable=RL007
        except OSError:
            pass  # a lost memo write is a future miss, not an error

    def get_or_build(
        self,
        workload: str,
        n_insts: int = 100_000,
        seed: int = 0,
        software_prefetch: bool = True,
        lookahead_lines: int = 4,
    ) -> Trace:
        """The store's main entry point: cached trace, or build-and-cache."""
        key = trace_key(workload, n_insts, seed, software_prefetch, lookahead_lines)
        trace = self.get(key)
        if trace is not None:
            return trace
        from repro.workloads import build_trace  # local: avoids an import cycle

        trace = build_trace(workload, n_insts, seed, software_prefetch, lookahead_lines)
        self.put(key, trace)
        return trace

    def clear(self) -> int:
        """Delete every stored trace; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.npz"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceStore({str(self.directory)!r}, hits={self.hits}, misses={self.misses})"


# ----------------------------------------------------------------------
# Shared-memory handoff
# ----------------------------------------------------------------------
#: Every live owner-side segment, so an abnormal exit (uncaught
#: exception, ``sys.exit`` mid-sweep) still unlinks them: ``close()`` is
#: idempotent and drops the entry via weak reference, and the ``atexit``
#: hook closes whatever is left.  A SIGKILL still strands segments —
#: nothing in-process can help there — but every Python-visible exit
#: path is covered.
_LIVE_SEGMENTS: "weakref.WeakSet[SharedTrace]" = weakref.WeakSet()


def _close_leftover_segments() -> None:  # pragma: no cover - exit hook
    for segment in list(_LIVE_SEGMENTS):
        segment.close()


atexit.register(_close_leftover_segments)


@dataclass(frozen=True)
class SharedTraceHandle:
    """Everything a worker needs to map a shared trace: plain picklable data."""

    shm_name: str
    length: int
    trace_name: str


def _layout(n: int) -> tuple[int, int, int, int, int]:
    """Byte offsets of (pc, addr, iclass, taken) and the total size.

    The two ``uint64`` columns lead so they stay 8-byte aligned; the two
    1-byte columns follow.
    """
    pc_off = 0
    addr_off = 8 * n
    iclass_off = 16 * n
    taken_off = 17 * n
    return pc_off, addr_off, iclass_off, taken_off, 18 * n


class SharedTrace:
    """Owner side of a shared trace segment (created by :func:`share_trace`).

    Keep it alive while workers may attach; ``close()`` unlinks the
    segment.  Usable as a context manager.
    """

    def __init__(self, shm, handle: SharedTraceHandle) -> None:
        self._shm = shm
        self.handle = handle

    def close(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except (BufferError, FileNotFoundError, OSError):
                pass
            self._shm = None

    def __enter__(self) -> "SharedTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()


class TraceAttachment:
    """Worker side of a shared trace segment: the trace plus its mapping.

    The :class:`~repro.trace.stream.Trace` columns are views straight
    into the shared segment — zero copies — so the mapping must stay
    open for as long as the trace is used; call ``detach()`` after.
    """

    def __init__(self, shm, trace: Trace) -> None:
        self._shm = shm
        self.trace = trace

    def detach(self) -> None:
        if self._shm is None:
            return
        self.trace = None  # type: ignore[assignment]  # drop buffer views first
        try:
            self._shm.close()
        except BufferError:
            # The caller still holds views into the mapping, so it cannot
            # be unmapped yet.  Keep the handle: a later detach (after the
            # views die) finishes the job, and so does garbage collection.
            return
        except OSError:
            pass
        self._shm = None

    def __enter__(self) -> Trace:
        return self.trace

    def __exit__(self, *exc) -> None:
        self.detach()


def share_trace(trace: Trace) -> SharedTrace:
    """Copy ``trace`` into a fresh shared-memory segment (parent side).

    Raises ``OSError`` when shared memory is unavailable (including via
    an injected ``shm-unavailable`` fault); callers fall back to
    per-worker trace synthesis.
    """
    from multiprocessing import shared_memory

    spec = fault_point("shm", key=trace.name)
    if spec is not None and spec.kind == "shm-unavailable":
        raise OSError("injected fault: shared memory unavailable")

    n = len(trace)
    pc_off, addr_off, iclass_off, taken_off, total = _layout(n)
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    buf = shm.buf
    np.frombuffer(buf, dtype=np.uint64, count=n, offset=pc_off)[:] = trace.pc
    np.frombuffer(buf, dtype=np.uint64, count=n, offset=addr_off)[:] = trace.addr
    np.frombuffer(buf, dtype=np.uint8, count=n, offset=iclass_off)[:] = trace.iclass
    np.frombuffer(buf, dtype=np.bool_, count=n, offset=taken_off)[:] = trace.taken
    handle = SharedTraceHandle(shm_name=shm.name, length=n, trace_name=trace.name)
    shared = SharedTrace(shm, handle)
    _LIVE_SEGMENTS.add(shared)
    return shared


def attach_trace(handle: SharedTraceHandle) -> TraceAttachment:
    """Map a shared trace read-only in this process (worker side)."""
    from multiprocessing import shared_memory

    # Python < 3.13 registers even a plain attachment with the resource
    # tracker.  That is harmless here — multiprocessing children inherit
    # the parent's tracker process, whose registry is a set, so the
    # attach-side register is a no-op and the owner's ``unlink`` retires
    # the entry exactly once.  (A process *not* descended from the owner
    # would bring its own tracker and steal the segment at exit; pass
    # handles only parent -> worker, as :func:`run_jobs` does.)
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    n = handle.length
    pc_off, addr_off, iclass_off, taken_off, _ = _layout(n)
    buf = shm.buf
    trace = Trace(
        np.frombuffer(buf, dtype=np.uint8, count=n, offset=iclass_off),
        np.frombuffer(buf, dtype=np.uint64, count=n, offset=pc_off),
        np.frombuffer(buf, dtype=np.uint64, count=n, offset=addr_off),
        np.frombuffer(buf, dtype=np.bool_, count=n, offset=taken_off),
        name=handle.trace_name,
    )
    return TraceAttachment(shm, trace)
