"""Columnar trace container and incremental builder.

``Trace`` holds the four instruction columns as parallel numpy arrays —
the representation every engine iterates over.  ``TraceBuilder`` is the
append-only constructor used by workload generators; it also assigns PCs
so that each *static* emission site in a generator gets a stable, distinct
PC (which the PC-based filter and branch predictor rely on).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, Iterator, Sequence

import numpy as np

from repro.trace.record import (
    BRANCH,
    LOAD,
    STORE,
    SW_PREFETCH,
    TRACE_DTYPE,
    InstrClass,
    TraceRecord,
)

_PC_BASE = 0x0001_2000_0000
_PC_STEP = 4  # Alpha-style fixed 4-byte instruction encoding

_MAX_ICLASS = max(int(cls) for cls in InstrClass)


def _as_column(values, dtype: np.dtype, column: str) -> np.ndarray:
    """Coerce one trace column to its storage dtype, refusing silent wraps.

    Signed-integer and float inputs can smuggle negatives (or NaN, or
    out-of-range values) into an unsigned view, where they reappear as
    enormous addresses that alias real cache sets.  Those dtypes are
    scanned and rejected with the offending record index; unsigned/bool
    inputs — every internal producer, including the zero-copy views from
    ``head()`` and shared-memory attachment — skip the scan entirely.
    """
    arr = np.asarray(values)
    kind = arr.dtype.kind
    if kind == "f":
        finite = np.isfinite(arr)
        if not finite.all():
            i = int(np.nonzero(~finite)[0][0])
            raise ValueError(
                f"trace column {column!r}: non-finite value {arr[i]} at record {i}"
            )
    if kind in "if":
        neg = np.nonzero(arr < 0)[0]
        if len(neg):
            i = int(neg[0])
            raise ValueError(
                f"trace column {column!r}: negative value {arr[i]} at record {i} "
                f"cannot be stored as {np.dtype(dtype).name}"
            )
        limit = np.iinfo(dtype).max
        high = np.nonzero(arr > limit)[0]
        if len(high):
            i = int(high[0])
            raise ValueError(
                f"trace column {column!r}: value {arr[i]} at record {i} "
                f"overflows {np.dtype(dtype).name} (max {limit})"
            )
    return np.ascontiguousarray(arr, dtype=dtype)


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate shape of a trace (used by reports and sanity tests)."""

    instructions: int
    loads: int
    stores: int
    branches: int
    sw_prefetches: int
    unique_pcs: int
    unique_lines_32b: int

    @property
    def memory_references(self) -> int:
        return self.loads + self.stores


class Trace:
    """Immutable columnar instruction trace."""

    __slots__ = ("iclass", "pc", "addr", "taken", "name")

    def __init__(
        self,
        iclass: np.ndarray,
        pc: np.ndarray,
        addr: np.ndarray,
        taken: np.ndarray,
        name: str = "",
    ) -> None:
        n = len(iclass)
        if not (len(pc) == len(addr) == len(taken) == n):
            raise ValueError("trace columns must have equal length")
        self.iclass = _as_column(iclass, np.uint8, "iclass")
        self.pc = _as_column(pc, np.uint64, "pc")
        self.addr = _as_column(addr, np.uint64, "addr")
        self.taken = np.ascontiguousarray(taken, dtype=np.bool_)
        self.name = name

    def __len__(self) -> int:
        return len(self.iclass)

    def __getitem__(self, i: int) -> TraceRecord:
        return TraceRecord(
            InstrClass(int(self.iclass[i])),
            int(self.pc[i]),
            int(self.addr[i]),
            bool(self.taken[i]),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(len(self)):
            yield self[i]

    def head(self, n: int) -> "Trace":
        """First ``n`` records as a new trace (cheap numpy views)."""
        return Trace(self.iclass[:n], self.pc[:n], self.addr[:n], self.taken[:n], self.name)

    def validate(self) -> "Trace":
        """Reject semantically malformed records, naming the first offender.

        Dtype coercion in ``__init__`` already blocks negatives and
        overflow; this catches what well-typed columns can still encode:
        instruction classes outside the enum and memory references with
        no data address (which :class:`TraceRecord` forbids scalar-side).
        Returns ``self`` so call sites can chain.
        """
        bad_cls = np.nonzero(self.iclass > _MAX_ICLASS)[0]
        if len(bad_cls):
            i = int(bad_cls[0])
            raise ValueError(
                f"trace {self.name!r}: unknown instruction class {int(self.iclass[i])} "
                f"at record {i} (valid classes are 0..{_MAX_ICLASS})"
            )
        mem_mask = (
            (self.iclass == LOAD.value)
            | (self.iclass == STORE.value)
            | (self.iclass == SW_PREFETCH.value)
        )
        no_addr = np.nonzero(mem_mask & (self.addr == 0))[0]
        if len(no_addr):
            i = int(no_addr[0])
            cls = InstrClass(int(self.iclass[i])).name
            raise ValueError(
                f"trace {self.name!r}: {cls} at record {i} has no data address"
            )
        return self

    # -- aggregate views -------------------------------------------------
    def class_counts(self) -> Dict[InstrClass, int]:
        counts = np.bincount(self.iclass, minlength=6)
        return {cls: int(counts[cls.value]) for cls in InstrClass}

    def summary(self) -> TraceSummary:
        counts = self.class_counts()
        mem_mask = (
            (self.iclass == LOAD.value)
            | (self.iclass == STORE.value)
            | (self.iclass == SW_PREFETCH.value)
        )
        lines = np.unique(self.addr[mem_mask] >> np.uint64(5))
        return TraceSummary(
            instructions=len(self),
            loads=counts[LOAD],
            stores=counts[STORE],
            branches=counts[BRANCH],
            sw_prefetches=counts[SW_PREFETCH],
            unique_pcs=int(len(np.unique(self.pc))),
            unique_lines_32b=int(len(lines)),
        )

    # -- (de)serialisation -------------------------------------------------
    def to_structured(self) -> np.ndarray:
        out = np.empty(len(self), dtype=TRACE_DTYPE)
        out["iclass"] = self.iclass
        out["pc"] = self.pc
        out["addr"] = self.addr
        out["taken"] = self.taken
        return out

    @classmethod
    def from_structured(cls, arr: np.ndarray, name: str = "") -> "Trace":
        # External structured dumps may carry an explicit per-instruction
        # ``id`` column; dynamic ids must be strictly increasing or the
        # engines' program order is meaningless.
        if arr.dtype.names and "id" in arr.dtype.names:
            ids = arr["id"].astype(np.int64)
            stuck = np.nonzero(np.diff(ids) <= 0)[0]
            if len(stuck):
                i = int(stuck[0]) + 1
                raise ValueError(
                    f"trace instruction ids must be strictly increasing: "
                    f"record {i} has id {int(ids[i])} after {int(ids[i - 1])}"
                )
        return cls(arr["iclass"], arr["pc"], arr["addr"], arr["taken"], name)

    def to_bytes(self) -> bytes:
        buf = io.BytesIO()
        np.savez_compressed(
            buf, iclass=self.iclass, pc=self.pc, addr=self.addr, taken=self.taken
        )
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes, name: str = "") -> "Trace":
        with np.load(io.BytesIO(blob)) as data:
            return cls(data["iclass"], data["pc"], data["addr"], data["taken"], name)

    @classmethod
    def concat(cls, traces: Sequence["Trace"], name: str = "") -> "Trace":
        if not traces:
            raise ValueError("cannot concatenate an empty list of traces")
        return cls(
            np.concatenate([t.iclass for t in traces]),
            np.concatenate([t.pc for t in traces]),
            np.concatenate([t.addr for t in traces]),
            np.concatenate([t.taken for t in traces]),
            name or traces[0].name,
        )


class TraceBuilder:
    """Append-only trace constructor with static-PC management.

    Generators call :meth:`site` once per static instruction location to get
    a stable PC, then emit dynamic records against it.  This mirrors how a
    real binary has a fixed PC per instruction while executing it many times.
    """

    def __init__(self, name: str = "", pc_base: int = _PC_BASE) -> None:
        self.name = name
        self._iclass: list[int] = []
        self._pc: list[int] = []
        self._addr: list[int] = []
        self._taken: list[bool] = []
        self._sites: Dict[str, int] = {}
        self._next_pc = pc_base

    def __len__(self) -> int:
        return len(self._iclass)

    def site(self, label: str) -> int:
        """Stable PC for the static instruction identified by ``label``."""
        pc = self._sites.get(label)
        if pc is None:
            pc = self._next_pc
            self._next_pc += _PC_STEP
            self._sites[label] = pc
        return pc

    # -- emission helpers --------------------------------------------------
    def emit(self, iclass: InstrClass, pc: int, addr: int = 0, taken: bool = False) -> None:
        self._iclass.append(int(iclass))
        self._pc.append(pc)
        self._addr.append(addr)
        self._taken.append(taken)

    def load(self, label: str, addr: int) -> None:
        self.emit(LOAD, self.site(label), addr)

    def store(self, label: str, addr: int) -> None:
        self.emit(STORE, self.site(label), addr)

    def branch(self, label: str, taken: bool) -> None:
        self.emit(BRANCH, self.site(label), taken=taken)

    def sw_prefetch(self, label: str, addr: int) -> None:
        self.emit(SW_PREFETCH, self.site(label), addr)

    def ops(self, label: str, count: int, fp: bool = False) -> None:
        """``count`` filler ALU ops, each a distinct static site under ``label``."""
        cls = InstrClass.FP_OP if fp else InstrClass.INT_OP
        for i in range(count):
            self.emit(cls, self.site(f"{label}#{i}"))

    def build(self) -> Trace:
        return Trace(
            np.asarray(self._iclass, dtype=np.uint8),
            np.asarray(self._pc, dtype=np.uint64),
            np.asarray(self._addr, dtype=np.uint64),
            np.asarray(self._taken, dtype=np.bool_),
            self.name,
        )
