"""Trace sampling: simulate long workloads from representative windows.

The paper simulates 300M instructions per benchmark; at Python speeds that
is days.  The standard answer (SMARTS/SimPoint-style) is to simulate a set
of windows and weight the results.  This module provides the simple,
unbiased variant — systematic sampling:

* :func:`systematic_sample` — K evenly-spaced windows of W instructions,
  concatenated into one trace.  Each window is preceded by the following
  window boundary, so per-window cold-start bias is amortised by the usual
  warmup mechanism.
* :func:`sample_windows` — the same windows as separate traces, for
  callers that want per-window statistics (confidence intervals).

Sampling composes with everything downstream: the sampled trace is an
ordinary :class:`~repro.trace.stream.Trace`.
"""

from __future__ import annotations

from typing import List

from repro.trace.stream import Trace


def sample_windows(trace: Trace, window: int, count: int) -> List[Trace]:
    """``count`` evenly-spaced windows of ``window`` instructions.

    Windows never overlap; if the trace is too short for the request, the
    largest feasible count is returned (at least one window, clipped to
    the trace).
    """
    if window < 1:
        raise ValueError("window must be positive")
    if count < 1:
        raise ValueError("count must be positive")
    n = len(trace)
    if n == 0:
        raise ValueError("cannot sample an empty trace")
    window = min(window, n)
    max_count = max(1, n // window)
    count = min(count, max_count)
    stride = n // count
    out: List[Trace] = []
    for k in range(count):
        start = k * stride
        end = min(start + window, n)
        out.append(
            Trace(
                trace.iclass[start:end],
                trace.pc[start:end],
                trace.addr[start:end],
                trace.taken[start:end],
                f"{trace.name}[{start}:{end}]",
            )
        )
    return out


def systematic_sample(trace: Trace, window: int, count: int) -> Trace:
    """Concatenate :func:`sample_windows` output into one trace.

    The result's statistics approximate the full trace's at ``window ×
    count / len(trace)`` of the cost.  Cache state carries over between
    windows (a mild optimism, as in all sampling simulators); use a warmup
    window to discard the first window's cold start.
    """
    windows = sample_windows(trace, window, count)
    sampled = Trace.concat(windows, name=f"{trace.name}~sampled")
    return sampled


def sampling_error_estimate(values: List[float]) -> float:
    """Relative standard error of per-window metric values.

    The quick confidence check: simulate windows separately
    (:func:`sample_windows`), compute the metric per window, and this
    returns stderr/mean — under ~5% usually means the sample is
    representative.
    """
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return (var / n) ** 0.5 / abs(mean)
