"""Trace characterisation: locality and predictability metrics.

The workload generators claim to reproduce each benchmark's *memory
locality class*; this module measures the claims directly from traces —
no simulation involved:

* :func:`reuse_distance_histogram` — LRU stack distances of memory
  references (the canonical locality signature; a cache of C lines
  captures exactly the references with distance < C),
* :func:`working_set_curve` — unique lines touched per window,
* :func:`stride_profile` — per-PC stride regularity (what fraction of a
  trace's references a stride prefetcher can learn),
* :func:`branch_bias` — per-branch taken rates (predictability),
* :func:`footprint` — total bytes/lines touched.

Used by the workload validation tests and the ``workload_atlas`` example.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.trace.record import BRANCH, LOAD, STORE, SW_PREFETCH
from repro.trace.stream import Trace

_DEMAND = (int(LOAD), int(STORE))


def _demand_lines(trace: Trace, line_bytes: int = 32) -> np.ndarray:
    mask = (trace.iclass == _DEMAND[0]) | (trace.iclass == _DEMAND[1])
    shift = np.uint64(line_bytes.bit_length() - 1)
    return (trace.addr[mask] >> shift).astype(np.uint64)


@dataclass(frozen=True)
class ReuseHistogram:
    """LRU stack-distance histogram with cache-size evaluation helpers."""

    bucket_limits: Sequence[int]
    counts: Sequence[int]
    cold_misses: int
    total: int

    def hit_rate_at(self, cache_lines: int) -> float:
        """Fraction of references with reuse distance < ``cache_lines`` —
        the hit rate of a fully-associative LRU cache that size."""
        if self.total == 0:
            return 0.0
        hits = sum(
            c for limit, c in zip(self.bucket_limits, self.counts) if limit <= cache_lines
        )
        return hits / self.total


def reuse_distance_histogram(
    trace: Trace,
    line_bytes: int = 32,
    bucket_limits: Sequence[int] = (16, 64, 256, 1024, 4096, 16384, 65536),
) -> ReuseHistogram:
    """Bucketed LRU stack distances of demand references.

    Exact distances via an ordered map (O(n·d) worst case but the move-to-
    front access pattern keeps it fast for realistic traces).  Bucket
    ``limits[i]`` counts references with distance in ``(limits[i-1],
    limits[i]]``; first-touches count separately as cold misses.
    """
    lines = _demand_lines(trace, line_bytes)
    stack: "OrderedDict[int, None]" = OrderedDict()
    counts = [0] * len(bucket_limits)
    cold = 0
    for line in lines:
        line = int(line)
        if line in stack:
            # distance = number of distinct lines more recent than `line`
            distance = 0
            for key in reversed(stack):
                if key == line:
                    break
                distance += 1
            del stack[line]
            for i, limit in enumerate(bucket_limits):
                if distance < limit:
                    counts[i] += 1
                    break
            else:
                cold += 1  # beyond the largest bucket: treat as cold
        else:
            cold += 1
        stack[line] = None
    return ReuseHistogram(tuple(bucket_limits), tuple(counts), cold, len(lines))


def working_set_curve(trace: Trace, window: int = 10_000, line_bytes: int = 32) -> List[int]:
    """Unique demand lines per consecutive window of memory references."""
    if window < 1:
        raise ValueError("window must be positive")
    lines = _demand_lines(trace, line_bytes)
    return [
        int(len(np.unique(lines[i : i + window])))
        for i in range(0, len(lines), window)
        if len(lines[i : i + window])
    ]


def footprint(trace: Trace, line_bytes: int = 32) -> Dict[str, int]:
    """Total unique lines/bytes the trace's demand references touch."""
    lines = np.unique(_demand_lines(trace, line_bytes))
    return {"lines": int(len(lines)), "bytes": int(len(lines)) * line_bytes}


@dataclass(frozen=True)
class StrideProfile:
    """How stride-predictable a trace's loads are."""

    total_loads: int
    strided_loads: int          # loads whose stride repeated its predecessor's
    dominant_stride_loads: int  # loads following each PC's most common stride

    @property
    def strided_fraction(self) -> float:
        return self.strided_loads / self.total_loads if self.total_loads else 0.0


def stride_profile(trace: Trace) -> StrideProfile:
    """Per-PC stride regularity of the load stream."""
    load_mask = trace.iclass == int(LOAD)
    pcs = trace.pc[load_mask]
    addrs = trace.addr[load_mask].astype(np.int64)
    last_addr: Dict[int, int] = {}
    last_stride: Dict[int, int] = {}
    stride_counts: Dict[int, Dict[int, int]] = {}
    strided = 0
    for pc, addr in zip(pcs.tolist(), addrs.tolist()):
        prev = last_addr.get(pc)
        if prev is not None:
            stride = addr - prev
            if stride != 0 and stride == last_stride.get(pc):
                strided += 1
            last_stride[pc] = stride
            per_pc = stride_counts.setdefault(pc, {})
            per_pc[stride] = per_pc.get(stride, 0) + 1
        last_addr[pc] = addr
    dominant = sum(max(c.values()) for c in stride_counts.values() if c)
    return StrideProfile(int(load_mask.sum()), strided, dominant)


def branch_bias(trace: Trace) -> Dict[int, float]:
    """Per-branch-PC taken rate (1.0/0.0 = trivially predictable)."""
    mask = trace.iclass == int(BRANCH)
    pcs = trace.pc[mask].tolist()
    takens = trace.taken[mask].tolist()
    taken_count: Dict[int, int] = {}
    total: Dict[int, int] = {}
    for pc, taken in zip(pcs, takens):
        total[pc] = total.get(pc, 0) + 1
        if taken:
            taken_count[pc] = taken_count.get(pc, 0) + 1
    return {pc: taken_count.get(pc, 0) / n for pc, n in total.items()}


def characterise(trace: Trace, line_bytes: int = 32) -> Dict[str, float]:
    """One-call summary used by the workload atlas example."""
    summary = trace.summary()
    hist = reuse_distance_histogram(trace, line_bytes)
    strides = stride_profile(trace)
    fp = footprint(trace, line_bytes)
    biases = branch_bias(trace)
    predictable = (
        sum(1 for b in biases.values() if b > 0.9 or b < 0.1) / len(biases) if biases else 0.0
    )
    sw = int((trace.iclass == int(SW_PREFETCH)).sum())
    return {
        "instructions": float(summary.instructions),
        "memory_fraction": summary.memory_references / summary.instructions,
        "footprint_kb": fp["bytes"] / 1024,
        "l1_sized_hit_rate": hist.hit_rate_at(256),    # 8KB / 32B
        "l2_sized_hit_rate": hist.hit_rate_at(16384),  # 512KB / 32B
        "strided_load_fraction": strides.strided_fraction,
        "predictable_branch_fraction": predictable,
        "software_prefetches": float(sw),
    }
