"""Low-level synthetic address-pattern primitives.

The workload generators compose these primitives into full benchmark
stand-ins.  Each primitive produces a numpy array of *byte addresses* with a
well-understood locality signature:

* ``strided_addresses``        — the regular array sweeps NSP thrives on,
* ``linked_list_addresses``    — heap-order pointer chasing (no spatial
                                 pattern; prefetchers mostly pollute),
* ``gaussian_pointer_chase``   — pointer chasing with a hot working set,
* ``zipf_addresses``           — skewed-popularity accesses (hash tables,
                                 symbol tables; the ``gcc``-style soup),
* ``lz_window_addresses``      — sliding-window matcher (``gzip``-style).

All primitives take an ``np.random.Generator`` so a workload is a pure
function of its seed.
"""

from __future__ import annotations

import numpy as np

_ALIGN = 8  # all synthetic data is 8-byte aligned, Alpha-style


def _align(addresses: np.ndarray) -> np.ndarray:
    return (addresses // _ALIGN * _ALIGN).astype(np.uint64)


def strided_addresses(base: int, count: int, stride: int, wrap: int | None = None) -> np.ndarray:
    """``count`` addresses starting at ``base`` stepping by ``stride`` bytes.

    With ``wrap`` the sweep wraps within a region of that many bytes, turning
    the pattern into repeated passes over a fixed working set.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    offsets = np.arange(count, dtype=np.int64) * stride
    if wrap is not None:
        if wrap <= 0:
            raise ValueError("wrap must be positive")
        offsets %= wrap
    return _align(np.uint64(base) + offsets.astype(np.uint64))


def linked_list_addresses(
    rng: np.random.Generator,
    base: int,
    n_nodes: int,
    node_bytes: int,
    count: int,
) -> np.ndarray:
    """Traverse a randomly-permuted singly linked list laid out in a heap.

    Node ``i`` lives at ``base + perm[i] * node_bytes``; traversal visits the
    permutation order, so consecutive accesses have no spatial relation —
    the worst case for sequential prefetching and the signature of the Olden
    pointer benchmarks.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    perm = rng.permutation(n_nodes)
    order = perm[np.arange(count, dtype=np.int64) % n_nodes]
    return _align(np.uint64(base) + order.astype(np.uint64) * np.uint64(node_bytes))


def gaussian_pointer_chase(
    rng: np.random.Generator,
    base: int,
    region_bytes: int,
    count: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.7,
) -> np.ndarray:
    """Pointer-style accesses with a small hot set and a cold tail.

    ``hot_probability`` of accesses land uniformly in the first
    ``hot_fraction`` of the region; the rest land anywhere.  Models the
    mixed temporal locality of tree traversals with a hot root region.
    """
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0 <= hot_probability <= 1:
        raise ValueError("hot_probability must be a probability")
    hot_bytes = max(_ALIGN, int(region_bytes * hot_fraction))
    is_hot = rng.random(count) < hot_probability
    offs = np.where(
        is_hot,
        rng.integers(0, hot_bytes, size=count),
        rng.integers(0, region_bytes, size=count),
    )
    return _align(np.uint64(base) + offs.astype(np.uint64))


def zipf_addresses(
    rng: np.random.Generator,
    base: int,
    n_objects: int,
    object_bytes: int,
    count: int,
    s: float = 1.2,
) -> np.ndarray:
    """Zipf-popularity object accesses over a shuffled object table.

    Popular objects are scattered through the region (shuffled ranks), so
    temporal locality is high but spatial locality is accidental — the shape
    of symbol-table/hash-table codes such as ``gcc`` and ``gap``.
    """
    if n_objects < 1:
        raise ValueError("need at least one object")
    if s <= 1.0:
        raise ValueError("zipf exponent must exceed 1")
    ranks = rng.zipf(s, size=count)
    ranks = np.minimum(ranks, n_objects) - 1
    placement = rng.permutation(n_objects)
    offs = placement[ranks].astype(np.uint64) * np.uint64(object_bytes)
    return _align(np.uint64(base) + offs)


def lz_window_addresses(
    rng: np.random.Generator,
    base: int,
    window_bytes: int,
    count: int,
    match_probability: float = 0.6,
    max_match_distance: int | None = None,
) -> np.ndarray:
    """LZ77-style compression access pattern.

    A cursor advances through the input; each step either reads at the
    cursor (literal) or jumps back a random distance within the window
    (match lookup), like ``gzip`` probing its sliding dictionary.
    """
    if window_bytes <= 0:
        raise ValueError("window must be positive")
    max_dist = max_match_distance or window_bytes
    out = np.empty(count, dtype=np.uint64)
    cursor = 0
    is_match = rng.random(count) < match_probability
    back = rng.integers(1, max(2, max_dist), size=count)
    for i in range(count):
        if is_match[i] and cursor > 0:
            pos = max(0, cursor - int(back[i]) % (cursor + 1))
        else:
            pos = cursor
            cursor += _ALIGN
        out[i] = base + pos
    return _align(out)


def stencil_addresses(
    base: int,
    rows: int,
    cols: int,
    element_bytes: int,
    count: int,
    radius: int = 1,
) -> np.ndarray:
    """Row-major 2-D stencil sweep (``wave5``-style grid physics).

    Visits each interior point and its vertical neighbours ``±radius`` rows
    away; the vertical neighbours are ``cols * element_bytes`` apart, giving
    the long-constant-stride signature of scientific grid codes.
    """
    if rows < 2 * radius + 1 or cols < 1:
        raise ValueError("grid too small for the stencil radius")
    row_bytes = cols * element_bytes
    out = np.empty(count, dtype=np.uint64)
    i = 0
    point = 0
    interior = (rows - 2 * radius) * cols
    while i < count:
        p = point % interior
        r = p // cols + radius
        c = p % cols
        center = base + (r * cols + c) * element_bytes
        for dr in (-radius, 0, radius):
            if i >= count:
                break
            out[i] = center + dr * row_bytes
            i += 1
        point += 1
    return _align(out)
