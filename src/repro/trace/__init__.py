"""Instruction-trace representation and synthetic access-pattern primitives.

The simulator is trace-driven (the paper drove SimpleScalar with Alpha
binaries; we drive our timing model with traces produced by the workload
generators in :mod:`repro.workloads`).  A trace is a columnar, numpy-backed
sequence of instruction records carrying the instruction class, PC, data
address, and branch outcome.
"""

from repro.trace.record import (
    BRANCH,
    FP_OP,
    INT_OP,
    LOAD,
    SW_PREFETCH,
    STORE,
    InstrClass,
    TraceRecord,
)
from repro.trace.sampling import sample_windows, systematic_sample
from repro.trace.store import (
    SharedTrace,
    SharedTraceHandle,
    TraceAttachment,
    TraceStore,
    attach_trace,
    share_trace,
    trace_key,
)
from repro.trace.stream import Trace, TraceBuilder
from repro.trace.synth import (
    gaussian_pointer_chase,
    linked_list_addresses,
    lz_window_addresses,
    stencil_addresses,
    strided_addresses,
    zipf_addresses,
)

__all__ = [
    "BRANCH",
    "FP_OP",
    "INT_OP",
    "LOAD",
    "STORE",
    "SW_PREFETCH",
    "InstrClass",
    "SharedTrace",
    "SharedTraceHandle",
    "Trace",
    "TraceAttachment",
    "TraceStore",
    "attach_trace",
    "sample_windows",
    "share_trace",
    "systematic_sample",
    "trace_key",
    "TraceBuilder",
    "TraceRecord",
    "gaussian_pointer_chase",
    "linked_list_addresses",
    "lz_window_addresses",
    "stencil_addresses",
    "strided_addresses",
    "zipf_addresses",
]
