"""Instruction record format.

Five instruction classes are enough to drive the timing model:

* ``INT_OP`` / ``FP_OP`` — non-memory work, occupies issue/ROB slots only,
* ``LOAD`` / ``STORE``   — demand memory references (hit the L1 D cache),
* ``BRANCH``             — conditional branch with a taken/not-taken outcome,
* ``SW_PREFETCH``        — a compiler-inserted prefetch instruction (the
  Alpha ``ldq $r31`` idiom the paper describes): non-blocking, identified in
  the LSQ and routed to the pollution filter.

Records are stored columnar (structure-of-arrays) in :class:`~repro.trace
.stream.Trace`; :class:`TraceRecord` is the scalar view used at module
boundaries and in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class InstrClass(enum.IntEnum):
    INT_OP = 0
    FP_OP = 1
    LOAD = 2
    STORE = 3
    BRANCH = 4
    SW_PREFETCH = 5


# Short aliases: workload generators reference these constantly.
INT_OP = InstrClass.INT_OP
FP_OP = InstrClass.FP_OP
LOAD = InstrClass.LOAD
STORE = InstrClass.STORE
BRANCH = InstrClass.BRANCH
SW_PREFETCH = InstrClass.SW_PREFETCH

MEMORY_CLASSES = frozenset({InstrClass.LOAD, InstrClass.STORE, InstrClass.SW_PREFETCH})

#: Columnar dtype for a trace: one row per dynamic instruction.
TRACE_DTYPE = np.dtype(
    [
        ("iclass", np.uint8),
        ("pc", np.uint64),
        ("addr", np.uint64),
        ("taken", np.bool_),
    ]
)


@dataclass(frozen=True)
class TraceRecord:
    """Scalar view of one dynamic instruction."""

    iclass: InstrClass
    pc: int
    addr: int = 0
    taken: bool = False

    def __post_init__(self) -> None:
        if self.pc < 0 or self.addr < 0:
            raise ValueError("pc and addr must be non-negative")
        if self.iclass in MEMORY_CLASSES and self.addr == 0:
            raise ValueError(f"{self.iclass.name} record requires a data address")

    @property
    def is_memory(self) -> bool:
        return self.iclass in MEMORY_CLASSES

    @property
    def is_demand(self) -> bool:
        """Demand reference = an access the program actually needs (not a prefetch)."""
        return self.iclass in (InstrClass.LOAD, InstrClass.STORE)
