"""Shared-filesystem work queue: lease files, atomic claims, work stealing.

The distributed sweep backend (:mod:`repro.analysis.backend`) needs a
queue that any number of ``repro-sim worker`` processes — on this host
or on NFS peers — can drain with nothing in common but a directory.
:class:`FileQueue` is that queue, built entirely from the two shared-FS
primitives that are actually trustworthy:

* **atomic rename** for every ownership transition (claim and steal):
  ``os.rename`` succeeds for exactly one caller, so two workers racing
  for the same job cannot both win, with zero locks held;
* **atomic replace** for every record write (job files, done records,
  heartbeats), so readers never observe a partial file.

Directory layout under the queue root::

    jobs/<key>.json               submitted, unclaimed job records
    leases/<key>.g<gen>.<owner>.json   claimed: the job file, renamed
    done/<key>.json               outcome records (ok or failed)
    quarantine/<key>.json         sealed poison-job forensics records
    hb/<owner>.json               per-worker heartbeat counters
    stats/<owner>.json            per-worker drain statistics
    logs/<owner>.log              spawned-worker stdout/stderr

``<key>`` is the job's content hash (the same key the result cache and
run journal use), which is what makes every job *relocatable*: any
worker that claims the file can produce the bit-identical result, and a
duplicate execution (a false steal) converges on the same ``done/``
record.  All records are sealed with the run journal's per-record
sha256 (:func:`repro.analysis.checkpoint.seal_record`); a corrupt file
is quarantined, never trusted.

Lease protocol (the part that is easy to get wrong):

1. **Claim** — rename ``jobs/<key>.json`` to
   ``leases/<key>.g0.<owner>.json``.  The loser of a race gets
   ``FileNotFoundError`` and moves on.
2. **Heartbeat** — while holding any lease, the owner atomically
   replaces ``hb/<owner>.json`` with a strictly increasing *beat
   counter*.  No wall-clock timestamps cross the filesystem.
3. **Steal** — a worker watching another owner's beat counter *not
   change* for ``lease_ttl`` seconds of its **own** monotonic clock
   declares that owner dead and renames the lease to
   ``leases/<key>.g<gen+1>.<thief>.json``.  Renaming is the
   arbitration: one thief wins, the rest get ``FileNotFoundError``.
4. **Complete** — write ``done/<key>.json`` (atomic replace), then
   unlink the lease.  A worker that died between the two leaves a
   lease pointing at a finished job; claimers and thieves check
   ``done/`` first and simply retire such leases.

Clock-skew immunity falls out of step 3: staleness is judged purely by
*local elapsed time since the observed counter last changed*, so hosts
with fast, slow, or backwards clocks — and filesystems with lying
mtimes — cannot cause a false steal or an immortal lease.  A revived
owner whose lease was stolen discovers it harmlessly: its ``done/``
write is idempotent (same key, same deterministic result) and its
lease unlink finds the file already renamed away.

**Poison jobs.**  Steps 1–4 assume worker deaths are *about the
worker*.  A job that reliably kills its executor (a config that
segfaults a compiled kernel leg, an allocation that draws the OOM
killer) inverts that: every steal hands the grenade to the next
worker, and the lease generation climbs forever while the fleet dies
in rotation.  The generation counter in the lease filename is the
tell — it counts executions that ended in a dead owner.  When a stale
lease's *next* generation would exceed ``poison_threshold``, the
would-be thief (or a supervisor's :meth:`FileQueue.poison_sweep`)
renames the lease into ``quarantine/`` instead of executing it — the
same one-winner arbitration as a steal — and writes a sealed
forensics record: reason, generation, execution count, last owner,
the tail of that owner's log, and the job record itself so the job
can be resubmitted after the underlying fault is fixed
(``submit`` deliberately treats quarantined keys as unknown).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.checkpoint import record_intact, seal_record
from repro.analysis.parallel import SimulationJob, job_from_dict, job_to_dict
from repro.analysis.resilience import job_token
from repro.common.diskio import atomic_write_json

#: Fraction of the lease TTL between heartbeat writes.  Four beats per
#: TTL keeps a live owner comfortably ahead of any thief's staleness
#: timer while costing one small atomic write per interval.
_BEAT_FRACTION = 0.25

#: Highest lease generation still allowed to execute.  Generation ``g``
#: means ``g`` owners already died holding this job, so the default
#: tolerates ``DEFAULT_POISON_THRESHOLD + 1`` executions before the job
#: is declared poison and quarantined.
DEFAULT_POISON_THRESHOLD = 3

POISON_THRESHOLD_ENV = "REPRO_POISON_THRESHOLD"

#: Bytes of the last owner's log captured into the forensics record.
_LOG_TAIL_BYTES = 4096


def default_poison_threshold() -> int:
    try:
        value = int(os.environ.get(POISON_THRESHOLD_ENV, ""))
    except ValueError:
        return DEFAULT_POISON_THRESHOLD
    return value if value > 0 else DEFAULT_POISON_THRESHOLD


def new_worker_id() -> str:
    """A fresh filename-safe worker identity (also the heartbeat key)."""
    return "w" + uuid.uuid4().hex[:8]


def validate_queue_dir(path: os.PathLike | str, what: str = "--queue-dir") -> Path:
    """Check a queue directory is usable *before* the first claim.

    A bad queue dir used to surface as a ``FileNotFoundError`` deep
    inside the first claim round, long after the sweep was submitted.
    This front-door check turns the three common operator mistakes —
    a typo'd parent, a file where a directory should be, a read-only
    mount — into one actionable :class:`ValueError` naming the flag
    (or env var) that carried the bad value.  Returns the resolved
    path on success; the directory itself need not exist yet (the
    queue creates it), only a writable parent must.
    """
    root = Path(path)
    if root.exists():
        if not root.is_dir():
            raise ValueError(
                f"{what} {str(root)!r} exists but is not a directory"
            )
        if not os.access(root, os.W_OK | os.X_OK):
            raise ValueError(
                f"{what} {str(root)!r} is not writable; "
                "fix permissions or point at a writable directory"
            )
        return root
    parent = root.parent
    if not parent.is_dir():
        raise ValueError(
            f"{what} {str(root)!r} cannot be created: parent directory "
            f"{str(parent)!r} does not exist (typo in the path?)"
        )
    if not os.access(parent, os.W_OK | os.X_OK):
        raise ValueError(
            f"{what} {str(root)!r} cannot be created: parent directory "
            f"{str(parent)!r} is not writable"
        )
    return root


@dataclass(frozen=True)
class Claim:
    """One leased job: what to run and which lease file proves ownership."""

    key: str
    job: SimulationJob
    token: str
    path: Path
    generation: int
    stolen: bool = False


def _atomic_write_json(path: Path, payload: Dict) -> None:
    # Thin alias kept for the existing call sites (and netqueue's broker
    # state); the sealed-write implementation lives in repro.common.diskio
    # so every persistence module shares one audited path (RL007).
    atomic_write_json(path, payload)


def _load_json(path: Path) -> Optional[Dict]:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


class FileQueue:
    """One sweep's job queue rooted at a shared directory.

    Construct one instance per process; staleness observations (see the
    module docstring) are per-instance local state by design.  Every
    method is safe to call concurrently from any number of processes on
    the same root.
    """

    def __init__(
        self,
        root: os.PathLike | str,
        lease_ttl: float = 30.0,
        poison_threshold: Optional[int] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive (got {lease_ttl})")
        self.root = Path(root)
        self.lease_ttl = float(lease_ttl)
        self.poison_threshold = (
            poison_threshold if poison_threshold is not None else default_poison_threshold()
        )
        if self.poison_threshold <= 0:
            raise ValueError(
                f"poison_threshold must be positive (got {self.poison_threshold})"
            )
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.quarantine_dir = self.root / "quarantine"
        self.hb_dir = self.root / "hb"
        self.stats_dir = self.root / "stats"
        self.logs_dir = self.root / "logs"
        for directory in (
            self.jobs_dir, self.leases_dir, self.done_dir,
            self.quarantine_dir, self.hb_dir, self.stats_dir, self.logs_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        #: Done/job records rejected for a digest mismatch (read-side count).
        self.quarantined = 0
        #: Poison jobs this instance moved into ``quarantine/``.
        self.poisoned = 0
        #: owner -> (last observed beat payload, local monotonic time it
        #: was first observed).  The only state stealing depends on.
        self._observed: Dict[str, Tuple[Optional[int], float]] = {}
        self._beats = 0
        self._last_beat = 0.0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, jobs: Sequence[SimulationJob]) -> int:
        """Enqueue every job not already known; returns how many were new.

        A key with a job file, a live lease, or a done record is skipped,
        so resubmitting a sweep into an existing queue directory is the
        resume path: only the missing work is added.
        """
        known = self.known_keys()
        added = 0
        for job in jobs:
            key = job.key()
            if key in known:
                continue
            record = seal_record({
                "key": key,
                "token": job_token(job),
                "job": job_to_dict(job),
            })
            _atomic_write_json(self.jobs_dir / f"{key}.json", record)
            known.add(key)
            added += 1
        return added

    def known_keys(self) -> Set[str]:
        keys = {p.stem for p in self.jobs_dir.glob("*.json")}
        keys |= {p.name.split(".", 1)[0] for p in self.leases_dir.glob("*.json")}
        keys |= {p.stem for p in self.done_dir.glob("*.json")}
        return keys

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def heartbeat(self, worker: str, force: bool = False) -> bool:
        """Publish a fresh beat for ``worker`` (rate-limited to TTL/4).

        The ``stale-lease`` fault site models a worker whose heartbeat
        writes never reach the shared filesystem: a ``drop`` spec
        suppresses the write, so the worker looks dead to its peers
        while still running — exactly the condition work stealing must
        survive.  Returns whether a beat actually landed.
        """
        from repro.common.faults import fault_point

        now = time.monotonic()
        if not force and now - self._last_beat < self.lease_ttl * _BEAT_FRACTION:
            return False
        spec = fault_point("stale-lease", key=worker, attempt=self._beats)
        if spec is not None and spec.kind == "drop":
            return False
        self._beats += 1
        self._last_beat = now
        try:
            _atomic_write_json(self.hb_dir / f"{worker}.json", {"worker": worker, "beats": self._beats})
        except OSError:
            return False
        return True

    def _read_beats(self, owner: str) -> Optional[int]:
        data = _load_json(self.hb_dir / f"{owner}.json")
        if data is None:
            return None
        beats = data.get("beats")
        return beats if isinstance(beats, int) else None

    def _owner_is_stale(self, owner: str) -> bool:
        """Skew-immune staleness: has this owner's beat counter been
        unchanged for ``lease_ttl`` seconds of *our* monotonic clock?"""
        beats = self._read_beats(owner)
        now = time.monotonic()
        seen = self._observed.get(owner)
        if seen is None or seen[0] != beats:
            self._observed[owner] = (beats, now)
            return False
        return now - seen[1] >= self.lease_ttl

    # ------------------------------------------------------------------
    # Claiming and stealing
    # ------------------------------------------------------------------
    def _open_claim(self, path: Path, key: str, generation: int, stolen: bool) -> Optional[Claim]:
        record = _load_json(path)
        if record is None or not record_intact(record) or "job" not in record:
            # A corrupt job file cannot be run; retire it loudly in the
            # counters rather than crashing the drain loop.
            self.quarantined += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        try:
            job = job_from_dict(record["job"])
        except (KeyError, TypeError, ValueError):
            self.quarantined += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        token = record.get("token") or job_token(job)
        return Claim(key=key, job=job, token=token, path=path, generation=generation, stolen=stolen)

    def claim(self, worker: str, limit: int = 1) -> List[Claim]:
        """Atomically claim up to ``limit`` unclaimed jobs for ``worker``."""
        claims: List[Claim] = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            if len(claims) >= limit:
                break
            key = path.stem
            if self.is_done(key):
                # Finished under a previous lease; retire the duplicate.
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                continue
            target = self.leases_dir / f"{key}.g0.{worker}.json"
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # another worker won this rename
            except OSError:
                continue
            claim = self._open_claim(target, key, generation=0, stolen=False)
            if claim is not None:
                claims.append(claim)
        return claims

    def _parse_lease(self, path: Path) -> Optional[Tuple[str, int, str]]:
        parts = path.name[: -len(".json")].split(".")
        if len(parts) != 3 or not parts[1].startswith("g"):
            return None
        try:
            generation = int(parts[1][1:])
        except ValueError:
            return None
        return parts[0], generation, parts[2]

    def leases(self) -> List[Tuple[str, int, str, Path]]:
        """Every live lease as (key, generation, owner, path)."""
        out = []
        for path in sorted(self.leases_dir.glob("*.json")):
            parsed = self._parse_lease(path)
            if parsed is not None:
                out.append((*parsed, path))
        return out

    def steal(self, worker: str, limit: int = 1) -> List[Claim]:
        """Take over up to ``limit`` leases whose owners stopped beating.

        Observation-only on the first sighting of any owner: a lease is
        stealable only after this instance has watched the owner's beat
        counter stay frozen for a full TTL on its own clock.
        """
        claims: List[Claim] = []
        for key, generation, owner, path in self.leases():
            if len(claims) >= limit:
                break
            if owner == worker:
                continue
            if self.is_done(key):
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                continue
            if not self._owner_is_stale(owner):
                continue
            if generation + 1 > self.poison_threshold:
                # Executing this lease would be death number gen+2 for
                # the fleet; quarantine it instead of riding the steal
                # loop forever.
                self._quarantine_poison(key, generation, owner, path)
                continue
            target = self.leases_dir / f"{key}.g{generation + 1}.{worker}.json"
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # another thief won, or the owner completed
            except OSError:
                continue
            claim = self._open_claim(target, key, generation=generation + 1, stolen=True)
            if claim is not None:
                claims.append(claim)
        return claims

    # ------------------------------------------------------------------
    # Poison-job quarantine
    # ------------------------------------------------------------------
    def _log_tail(self, owner: str) -> str:
        """The last worker's final log bytes — the closest thing a dead
        subprocess leaves to a stack trace."""
        path = self.logs_dir / f"{owner}.log"
        try:
            with open(path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - _LOG_TAIL_BYTES))
                return fh.read().decode("utf-8", errors="replace")
        except OSError:
            return ""

    def _quarantine_poison(self, key: str, generation: int, owner: str, path: Path) -> bool:
        """Move one lease into quarantine; the rename picks one winner.

        Returns whether *this* caller performed the quarantine.
        """
        # The captured name keeps the lease's key/generation/owner so a
        # crash between this rename and the record write below loses no
        # information: the recovery pass in ``poison_sweep`` finishes
        # the record from the filename alone.
        captured = self.quarantine_dir / f"{key}.g{generation}.{owner}.lease"
        try:
            os.rename(path, captured)
        except OSError:
            return False  # another thief/supervisor got there first
        lease = _load_json(captured) or {}
        record = seal_record({
            "key": key,
            "reason": (
                f"poison job: {generation + 1} execution(s) each ended with a dead "
                f"worker (lease generation {generation}, threshold {self.poison_threshold})"
            ),
            "generation": generation,
            "executions": generation + 1,
            "last_owner": owner,
            "last_worker_log_tail": self._log_tail(owner),
            "token": lease.get("token", ""),
            "job": lease.get("job"),
        })
        _atomic_write_json(self.quarantine_dir / f"{key}.json", record)
        try:
            captured.unlink(missing_ok=True)
        except OSError:
            pass
        self.poisoned += 1
        return True

    def poison_sweep(self) -> int:
        """Quarantine every stale lease past the poison threshold.

        The supervisor's half of poison detection: it never executes
        jobs itself, so without this only a *worker* surviving long
        enough to attempt a steal could retire a poison job.  Uses the
        same per-instance staleness observations as :meth:`steal`.
        """
        swept = 0
        # Recovery: a captured lease without its forensics record means
        # a quarantiner died mid-quarantine; finish its paperwork.
        for stranded in sorted(self.quarantine_dir.glob("*.lease")):
            parts = stranded.name[: -len(".lease")].split(".")
            if len(parts) != 3 or not parts[1].startswith("g"):
                continue
            if (self.quarantine_dir / f"{parts[0]}.json").exists():
                try:
                    stranded.unlink(missing_ok=True)
                except OSError:
                    pass
                continue
            try:
                generation = int(parts[1][1:])
            except ValueError:
                continue
            lease = _load_json(stranded) or {}
            record = seal_record({
                "key": parts[0],
                "reason": (
                    f"poison job: {generation + 1} execution(s) each ended with a "
                    f"dead worker (lease generation {generation}, threshold "
                    f"{self.poison_threshold}; record recovered after a "
                    "quarantiner died mid-quarantine)"
                ),
                "generation": generation,
                "executions": generation + 1,
                "last_owner": parts[2],
                "last_worker_log_tail": self._log_tail(parts[2]),
                "token": lease.get("token", ""),
                "job": lease.get("job"),
            })
            _atomic_write_json(self.quarantine_dir / f"{parts[0]}.json", record)
            try:
                stranded.unlink(missing_ok=True)
            except OSError:
                pass
            self.poisoned += 1
            swept += 1
        for key, generation, owner, path in self.leases():
            if generation + 1 <= self.poison_threshold:
                continue
            if self.is_done(key):
                continue  # retired by claim/steal paths on sight
            if not self._owner_is_stale(owner):
                continue
            if self._quarantine_poison(key, generation, owner, path):
                swept += 1
        return swept

    def quarantine_record(self, key: str) -> Optional[Dict]:
        """The sealed quarantine record for ``key`` (``None`` if absent
        or failing its digest — a corrupt forensics record is worthless)."""
        record = _load_json(self.quarantine_dir / f"{key}.json")
        if record is None or not record_intact(record):
            return None
        return record

    def collect_quarantined(self) -> Dict[str, Dict]:
        """Every intact quarantine record, keyed by job key."""
        out = {}
        for path in sorted(self.quarantine_dir.glob("*.json")):
            record = self.quarantine_record(path.stem)
            if record is not None:
                out[path.stem] = record
        return out

    def release(self, claim: Claim) -> None:
        """Return a claimed job to the unclaimed pool (graceful shutdown)."""
        try:
            os.rename(claim.path, self.jobs_dir / f"{claim.key}.json")
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(self, claim: Claim, record: Dict) -> None:
        """Publish the outcome record for a claim and retire its lease.

        The ``done/`` write lands before the lease unlink, so a crash
        between the two strands only a lease pointing at finished work —
        which every claimer and thief retires on sight.
        """
        record = dict(record)
        record["key"] = claim.key
        record["generation"] = claim.generation
        seal_record(record)
        _atomic_write_json(self.done_dir / f"{claim.key}.json", record)
        try:
            claim.path.unlink(missing_ok=True)
        except OSError:
            pass

    def is_done(self, key: str) -> bool:
        return (self.done_dir / f"{key}.json").exists()

    def done_record(self, key: str) -> Optional[Dict]:
        """The sealed outcome for ``key``, or ``None`` (missing/corrupt).

        A record failing its digest is quarantined (counted and removed)
        so the job becomes claimable again instead of being trusted.
        """
        path = self.done_dir / f"{key}.json"
        record = _load_json(path)
        if record is None:
            return None
        if not record_intact(record) or "ok" not in record:
            self.quarantined += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        return record

    def collect_new(self, seen: Set[str]) -> Iterable[Tuple[str, Dict]]:
        """Yield (key, record) for done records not in ``seen`` (updated)."""
        for path in sorted(self.done_dir.glob("*.json")):
            key = path.stem
            if key in seen:
                continue
            record = self.done_record(key)
            if record is None:
                continue
            seen.add(key)
            yield key, record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outstanding(self) -> Tuple[int, int]:
        """(unclaimed job files, live leases) — (0, 0) means fully drained."""
        return (
            sum(1 for _ in self.jobs_dir.glob("*.json")),
            sum(1 for _ in self.leases_dir.glob("*.json")),
        )

    def counts(self) -> Dict[str, int]:
        jobs, leases = self.outstanding()
        return {
            "jobs": jobs,
            "leases": leases,
            "done": sum(1 for _ in self.done_dir.glob("*.json")),
            "quarantined": self.quarantined,
            # From the directory, not the instance counter: every
            # process sees the same poison verdicts.
            "poisoned": sum(1 for _ in self.quarantine_dir.glob("*.json")),
        }

    def write_stats(self, worker: str, stats: Dict) -> None:
        """Publish a worker's drain statistics (read by ``bench --sweep``)."""
        try:
            _atomic_write_json(self.stats_dir / f"{worker}.json", stats)
        except OSError:
            pass

    def read_stats(self) -> List[Dict]:
        out = []
        for path in sorted(self.stats_dir.glob("*.json")):
            data = _load_json(path)
            if data is not None:
                out.append(data)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.counts()
        return (
            f"FileQueue({str(self.root)!r}, jobs={c['jobs']}, "
            f"leases={c['leases']}, done={c['done']})"
        )
