"""Text-mode figure rendering.

The paper's results are bar charts; this module renders the same data as
unicode bar charts in the terminal so every figure can be *seen*, not just
tabulated, without a plotting dependency.  Two chart shapes cover all 14
figures:

* :func:`grouped_bars` — benchmarks on the y-axis, one bar per scenario
  (Figures 1, 2, 4-9, 13-16),
* :func:`series_lines` — one row per benchmark, one column per sweep point
  (Figures 10-12), rendered as banded intensity.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"
_FULL = "█"


def _bar(value: float, scale: float, width: int) -> str:
    """Render ``value`` as a bar of at most ``width`` cells."""
    if scale <= 0 or value <= 0:
        return ""
    cells = value / scale * width
    if math.isinf(cells):
        return _FULL * width + "∞"
    whole = int(cells)
    frac = cells - whole
    out = _FULL * min(whole, width)
    if whole < width and frac > 0:
        out += _BLOCKS[int(frac * 8)]
    return out


def grouped_bars(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal grouped bar chart.

    ``groups`` maps row label (benchmark) -> {series label: value}.
    Series order follows the first row's insertion order.
    """
    if not groups:
        return title
    series = list(next(iter(groups.values())).keys())
    finite = [
        v
        for row in groups.values()
        for v in row.values()
        if not math.isinf(v) and not math.isnan(v)
    ]
    scale = max(finite) if finite else 1.0
    label_w = max(len(s) for s in series)
    row_w = max(len(g) for g in groups)

    lines = [title, ""]
    for group, row in groups.items():
        for i, s in enumerate(series):
            value = row.get(s, 0.0)
            prefix = group.ljust(row_w) if i == 0 else " " * row_w
            shown = "inf" if math.isinf(value) else value_format.format(value)
            lines.append(f"{prefix}  {s.ljust(label_w)} {_bar(value, scale, width):<{width + 1}} {shown}")
        lines.append("")
    return "\n".join(lines)


def series_lines(
    title: str,
    rows: Mapping[str, Sequence[float]],
    columns: Sequence[str],
    width: int = 8,
    value_format: str = "{:.2f}",
) -> str:
    """Sweep chart: one row per benchmark, one mini-bar per sweep point."""
    if not rows:
        return title
    finite = [v for vs in rows.values() for v in vs if not math.isinf(v)]
    scale = max(finite) if finite else 1.0
    row_w = max(len(r) for r in rows)
    col_w = max(width, *(len(c) for c in columns)) + 1

    header = " " * row_w + "".join(c.rjust(col_w) for c in columns)
    lines = [title, "", header]
    for name, values in rows.items():
        cells = []
        for v in values:
            shown = value_format.format(v) if not math.isinf(v) else "inf"
            bar = _bar(v, scale, max(1, width - len(shown) - 1))
            cells.append(f"{bar} {shown}".rjust(col_w))
        lines.append(name.ljust(row_w) + "".join(cells))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend: ▁▂▃▄▅▆▇█ per value (used in sweep summaries)."""
    marks = "▁▂▃▄▅▆▇█"
    finite = [v for v in values if not math.isinf(v) and not math.isnan(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo or 1.0
    out = []
    for v in values:
        if math.isinf(v) or math.isnan(v):
            out.append("?")
        else:
            out.append(marks[int((v - lo) / span * (len(marks) - 1))])
    return "".join(out)


def normalised_rows(
    raw: Dict[str, Dict[str, float]], reference_series: str
) -> Dict[str, Dict[str, float]]:
    """Normalise every row's values by that row's ``reference_series`` value
    (how the paper's figures normalise to the no-filter case)."""
    out: Dict[str, Dict[str, float]] = {}
    for group, row in raw.items():
        ref = row.get(reference_series, 0.0)
        out[group] = {k: (v / ref if ref else 0.0) for k, v in row.items()}
    return out
