"""Experiment drivers and reporting.

* :mod:`repro.analysis.metrics` — derived metrics (reductions, ratios,
  means) shared by every figure,
* :mod:`repro.analysis.sweep` — run matrices over workloads / filters /
  configurations, including the two-pass oracle and static-filter protocols,
* :mod:`repro.analysis.report` — paper-style text tables.
"""

from repro.analysis.energy import EnergyBreakdown, EnergyModel, energy_comparison
from repro.analysis.experiments import ExperimentResult, ExperimentSuite, markdown_report
from repro.analysis.export import result_to_dict, results_to_csv, results_to_json
from repro.analysis.figures import grouped_bars, series_lines, sparkline
from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    normalised,
    percent_change,
    reduction_percent,
)
from repro.analysis.report import Table, render_comparison
from repro.analysis.sweep import (
    FilterSetup,
    compare_filters,
    run_oracle,
    run_static,
    run_workload,
    sweep_history_sizes,
    sweep_l1_ports,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "ExperimentResult",
    "ExperimentSuite",
    "FilterSetup",
    "Table",
    "grouped_bars",
    "markdown_report",
    "result_to_dict",
    "results_to_csv",
    "results_to_json",
    "series_lines",
    "sparkline",
    "arithmetic_mean",
    "compare_filters",
    "energy_comparison",
    "geometric_mean",
    "normalised",
    "percent_change",
    "reduction_percent",
    "render_comparison",
    "run_oracle",
    "run_static",
    "run_workload",
    "sweep_history_sizes",
    "sweep_l1_ports",
]
