"""Pluggable execution backends for batch simulation runs.

:func:`repro.analysis.resilience.execute_batch` owns everything that
must be true of *every* batch — the journal/cache prefilter, retry
policy, per-job outcome records, crash-consistent journaling.  What it
does **not** own is where the simulations physically run.  That is an
:class:`ExecutionBackend`:

* :class:`PoolBackend` (the default, ``"pool"``) — the in-process
  ``ProcessPoolExecutor`` ladder this repo has always used: pool →
  fresh pool → serial, shared-memory traces, suspect quarantine.
* :class:`SharedFSBackend` (``"shared-fs"``) — a shared-filesystem
  work queue (:mod:`repro.analysis.workqueue`) drainable by any number
  of ``repro-sim worker`` processes on any host that can see the
  directory.  The submitting process publishes the jobs, optionally
  spawns local workers, *participates in the drain itself* (so a sweep
  completes even if every spawned worker dies — stale leases get
  stolen), then folds the sealed ``done/`` records back into the
  batch's outcomes, cache, and journal.
* :class:`TCPBackend` (``"tcp"``) — the same queue protocol over a
  length-prefixed JSON TCP connection to ``repro-sim broker``
  (:mod:`repro.analysis.netqueue`), for workers that share no
  filesystem with the submitter.  Retries with capped backoff, per-op
  idempotency, and honest ``unclaimed`` outcomes on broker loss keep
  the bit-identical-resume guarantee across resets, stalls, and
  partitions.

The contract every backend must honour (and the chaos suite enforces):
**swapping backends never changes results** — jobs are pure functions
of their content-hashed keys, so the same sweep through ``pool``,
``shared-fs``, or plain serial execution is bit-identical.  Backends
differ only in throughput, fault envelope, and where the CPUs are.

Selection: ``run_jobs(..., backend=...)`` accepts an instance, a
registered name, or ``None``; ``None`` defers to the ``REPRO_BACKEND``
environment variable (unset → the built-in pool path with zero new
overhead).  Third-party backends register with
:func:`register_backend` — see ``docs/extending.md`` for the
checklist.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
import uuid
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.workqueue import FileQueue

BACKEND_ENV = "REPRO_BACKEND"
QUEUE_DIR_ENV = "REPRO_QUEUE_DIR"
QUEUE_WORKERS_ENV = "REPRO_QUEUE_WORKERS"
LEASE_TTL_ENV = "REPRO_LEASE_TTL"
QUEUE_BATCH_ENV = "REPRO_QUEUE_BATCH"


class ExecutionBackend(ABC):
    """Where a batch's pending jobs physically execute.

    ``execute`` receives the resilience engine's mutable batch state
    (``repro.analysis.resilience._Batch``) and the indices still
    pending after the journal/cache prefilter.  It must drive every
    pending index to a terminal state — ``batch.complete(i, result)``
    on success, ``batch.record_failure(...)`` + ``batch.give_up(i)``
    on permanent failure — and may call ``batch.degrade(event)`` to
    report degradations.  It must not touch non-pending outcomes.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def execute(self, batch, pending: Sequence[int], workers: int, share_traces: bool) -> None:
        """Run ``batch.jobs[i]`` for every ``i`` in ``pending``."""


class PoolBackend(ExecutionBackend):
    """The built-in in-process pool with its full degradation ladder."""

    name = "pool"

    def execute(self, batch, pending: Sequence[int], workers: int, share_traces: bool) -> None:
        from repro.analysis.resilience import _pool_phase, _serial_phase

        if workers <= 1 or len(pending) == 1:
            _serial_phase(batch, pending)
        else:
            _pool_phase(batch, list(pending), workers, share_traces)


class SharedFSBackend(ExecutionBackend):
    """Drain a batch through a shared-filesystem work queue.

    Parameters
    ----------
    queue_dir:
        Queue root.  ``None`` creates a throwaway directory (removed
        after the drain); pointing several processes — or several
        *sweeps*, for resume — at the same directory is the whole
        point.  An existing queue's ``done/`` records are honoured, so
        re-running a sweep against its old queue dir only executes the
        missing jobs.
    spawn:
        Local ``repro-sim worker`` subprocesses to launch for the
        drain.  ``None`` spawns ``workers - 1`` (the submitting process
        is itself the remaining drainer).  ``0`` spawns none — external
        workers (other hosts, or a test harness) are expected, but the
        parent still drains, so progress never depends on them.
    lease_ttl:
        Seconds of heartbeat silence before a worker's leases become
        stealable.
    batch:
        Jobs claimed per worker per round — the amortization knob:
        larger batches give each worker more group-mates sharing a
        trace acquisition (see :mod:`repro.analysis.worker`).
    poison_threshold:
        Maximum lease generation allowed to execute before a job is
        quarantined as poison (default: the queue's own default; see
        :mod:`repro.analysis.workqueue`).
    deadline:
        Global wall-clock budget in seconds for the drain.  Workers
        stop *claiming* at the deadline (in-flight jobs finish or time
        out); jobs never claimed come back as honest ``unclaimed``
        partial-results outcomes that a later ``--resume`` completes.
        A deadline already set on the batch (``sweep --deadline``)
        takes precedence.
    supervise:
        Run the drain under a :class:`~repro.analysis.supervisor.FleetSupervisor`
        instead of the parent participating: the parent only monitors,
        restarts crashed/pressure-exited workers with backoff, and
        quarantines poison jobs it observes from outside.  Requires at
        least one spawned worker (forced up to 1 if needed).

    After ``execute`` returns, ``last_counts`` / ``last_worker_stats``
    / ``last_parent_stats`` / ``last_supervisor`` hold the drain's
    telemetry for ``repro-sim bench --sweep``.
    """

    name = "shared-fs"

    def __init__(
        self,
        queue_dir: Optional[os.PathLike | str] = None,
        spawn: Optional[int] = None,
        lease_ttl: float = 30.0,
        batch: int = 8,
        poll: float = 0.1,
        poison_threshold: Optional[int] = None,
        deadline: Optional[float] = None,
        supervise: bool = False,
        max_restarts: int = 10,
    ) -> None:
        if spawn is not None and spawn < 0:
            raise ValueError(f"spawn must be >= 0 (got {spawn})")
        if batch < 1:
            raise ValueError(f"batch must be >= 1 (got {batch})")
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds (got {deadline})")
        self.queue_dir = Path(queue_dir) if queue_dir is not None else None
        self.spawn = spawn
        self.lease_ttl = lease_ttl
        self.batch = batch
        self.poll = poll
        self.poison_threshold = poison_threshold
        self.deadline = deadline
        self.supervise = supervise
        self.max_restarts = max_restarts
        self.last_counts: Dict = {}
        self.last_worker_stats: List[Dict] = []
        self.last_parent_stats: Dict = {}
        self.last_supervisor: Dict = {}

    # ------------------------------------------------------------------
    def _spawn_worker(self, queue: FileQueue, index: int, batch,
                      deadline_at: Optional[float] = None):
        """Launch one ``repro-sim worker`` subprocess against the queue.

        Best-effort by design: a host that cannot spawn (sandbox, fork
        limits) degrades to the parent draining alone.  Workers log to
        the queue's ``logs/`` directory and exit when the queue drains.
        """
        from repro.analysis.supervisor import spawn_worker

        name = f"spawn{index}-{uuid.uuid4().hex[:6]}"
        deadline_s = None
        if deadline_at is not None:
            deadline_s = max(0.0, deadline_at - time.monotonic())
        store = getattr(batch, "trace_store", None)
        return spawn_worker(
            queue,
            name,
            batch=self.batch,
            poll=self.poll,
            retries=max(0, batch.policy.max_attempts - 1),
            timeout=batch.policy.timeout,
            deadline_s=deadline_s,
            trace_store_dir=store.directory if store is not None else None,
        )

    @staticmethod
    def _reap(procs) -> None:
        for proc, log in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            finally:
                log.close()

    def _apply(self, batch, indices: List[int], record: Dict) -> None:
        """Fold one sealed done record into every outcome sharing its key."""
        from repro.analysis.result_cache import result_from_dict

        if record.get("ok"):
            try:
                result = result_from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                for index in indices:
                    batch.record_failure(index, "exception", "corrupt done record payload", 0.0)
                    batch.give_up(index)
                return
            for index in indices:
                # Replay failed attempts that preceded the success, so the
                # outcome's history matches what a pool run would report.
                for attempt in record.get("attempts") or []:
                    batch.record_failure(
                        index,
                        str(attempt.get("kind", "exception")),
                        str(attempt.get("error", "failed")),
                        float(attempt.get("elapsed", 0.0)),
                    )
                batch.complete(index, result)
            return
        attempts = record.get("attempts") or [
            {"kind": "exception", "error": record.get("error", "failed"), "elapsed": 0.0}
        ]
        for index in indices:
            for attempt in attempts:
                batch.record_failure(
                    index,
                    str(attempt.get("kind", "exception")),
                    str(attempt.get("error", "failed")),
                    float(attempt.get("elapsed", 0.0)),
                )
            batch.give_up(index)

    def execute(self, batch, pending: Sequence[int], workers: int, share_traces: bool) -> None:
        from repro.analysis.worker import drain_queue

        # Inside a pool worker already (nested fan-out): spawning more
        # processes would oversubscribe quadratically, exactly like a
        # nested pool — run serially instead.
        if os.environ.get("REPRO_POOL_WORKER"):
            from repro.analysis.resilience import _serial_phase

            batch.degrade("shared-fs: nested inside a pool worker; ran serially")
            _serial_phase(batch, pending)
            return

        owns_dir = self.queue_dir is None
        root = self.queue_dir or Path(tempfile.mkdtemp(prefix="repro-queue-"))
        queue = FileQueue(root, lease_ttl=self.lease_ttl, poison_threshold=self.poison_threshold)
        key_to_indices: Dict[str, List[int]] = {}
        for index in pending:
            key_to_indices.setdefault(batch.outcome(index).key, []).append(index)
        # One queue job per distinct key; duplicates fan back out on apply.
        queue.submit([batch.jobs[indices[0]] for indices in key_to_indices.values()])

        # A deadline set on the batch (sweep --deadline) wins; otherwise
        # the backend's own budget starts ticking now.
        deadline_at = getattr(batch, "deadline_at", None)
        if deadline_at is None and self.deadline is not None:
            deadline_at = time.monotonic() + self.deadline

        if self.supervise:
            self._drain_supervised(batch, queue, workers, deadline_at)
        else:
            self._drain_participating(batch, queue, workers, deadline_at, drain_queue)

        deadline_hit = bool(
            getattr(batch.report, "deadline_hit", False)
            or (deadline_at is not None and time.monotonic() >= deadline_at)
        )
        if deadline_hit:
            batch.report.deadline_hit = True

        self._fold_outcomes(batch, queue, key_to_indices, deadline_hit)
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)

    def _fold_outcomes(self, batch, queue, key_to_indices: Dict[str, List[int]],
                       deadline_hit: bool, disconnected: bool = False,
                       done_records: Optional[Dict[str, Dict]] = None,
                       quarantined_records: Optional[Dict[str, Dict]] = None) -> None:
        """Fold the queue's records into the batch's outcomes.

        Shared by the filesystem and TCP drains: done records complete
        (or permanently fail) their outcomes, quarantine records become
        journaled poison failures, and keys with no record become
        honest ``unclaimed`` outcomes when the drain was cut short
        (deadline, or a broker that went unreachable) — *not* journaled,
        so ``--resume`` completes exactly the missing work.  The TCP
        backend prefetches both record maps (collection itself can fail
        over the network); ``None`` means fetch from the queue here.
        """
        if quarantined_records is None:
            quarantined_records = queue.collect_quarantined()
        if done_records is None:
            done_records = dict(queue.collect_new(set()))
        applied = set()
        for key, record in done_records.items():
            indices = key_to_indices.get(key)
            if indices is None:
                continue  # a previous sweep's job sharing this queue dir
            applied.add(key)
            self._apply(batch, indices, record)
        poisoned_jobs = 0
        unclaimed_jobs = 0
        for key, indices in key_to_indices.items():
            if key in applied:
                continue
            record = quarantined_records.get(key)
            if record is not None:
                # Poison job: every execution killed its worker.  The
                # sealed quarantine record is the outcome — a permanent,
                # journaled failure carrying the forensics.
                reason = str(record.get("reason", "quarantined as a poison job"))
                for index in indices:
                    batch.record_failure(index, "poisoned", reason, 0.0)
                    batch.outcome(index).quarantined = True
                    batch.give_up(index)
                poisoned_jobs += len(indices)
                continue
            if deadline_hit or disconnected:
                # Never claimed (or its record never collected): not a
                # failure, just not attempted from the batch's point of
                # view.  Left out of the journal so --resume runs it —
                # and a restarted broker's ``submit`` skips keys whose
                # done records already landed, so nothing re-executes.
                for index in indices:
                    batch.mark_unclaimed(index)
                unclaimed_jobs += len(indices)
                continue
            # Drained queue but no intact done record (quarantined on
            # read, or lost to the filesystem): an honest failure beats
            # a silent hang.
            for index in indices:
                batch.record_failure(index, "exception", "queue drained with no done record", 0.0)
                batch.give_up(index)
        if poisoned_jobs:
            batch.degrade(
                f"{self.name}: {poisoned_jobs} job(s) quarantined as poison "
                f"(forensics under {queue.quarantine_dir})"
            )
        if unclaimed_jobs:
            cause = "the broker went unreachable" if disconnected else "deadline"
            batch.degrade(
                f"{self.name}: {cause} left {unclaimed_jobs} job(s) unclaimed; "
                "re-run with --resume to complete them"
            )
        if queue.quarantined:
            batch.degrade(f"{self.name}: {queue.quarantined} corrupt queue record(s) quarantined")

    def _drain_participating(self, batch, queue: FileQueue, workers: int,
                             deadline_at, drain_queue) -> None:
        """Default drain: spawn helpers, then the parent drains too."""
        from repro.common.diskio import PressureGuard

        spawn = self.spawn if self.spawn is not None else max(0, workers - 1)
        procs = []
        for i in range(spawn):
            try:
                procs.append(self._spawn_worker(queue, i, batch, deadline_at))
            except OSError as exc:
                batch.degrade(f"shared-fs: could not spawn worker {i} ({exc!r})")
                break
        try:
            # The parent drains too: with zero live workers the sweep
            # still finishes, and stale leases of dead workers are stolen.
            stats = drain_queue(
                queue,
                worker="parent-" + uuid.uuid4().hex[:6],
                batch=self.batch,
                policy=batch.policy,
                trace_store=batch.trace_store,
                poll=self.poll,
                guard=PressureGuard(queue.root, key=f"{queue.root}|parent"),
                deadline=deadline_at,
            )
            self.last_parent_stats = stats.to_dict()
            for event in stats.degradations:
                batch.degrade(f"shared-fs: parent: {event}")
        finally:
            self._reap(procs)
            self.last_counts = queue.counts()
            self.last_worker_stats = queue.read_stats()

    def _drain_supervised(self, batch, queue: FileQueue, workers: int,
                          deadline_at) -> None:
        """Supervised drain: the parent only monitors (see the supervisor
        module).  Crucially it claims nothing, so poison jobs cannot kill
        it — the opposite trade-off from the participating drain."""
        from repro.analysis.supervisor import FleetSupervisor

        fleet = self.spawn if self.spawn is not None else max(1, workers - 1)
        fleet = max(1, fleet)  # a supervisor with no workers drains nothing
        store = getattr(batch, "trace_store", None)
        supervisor = FleetSupervisor(
            queue,
            workers=fleet,
            batch=self.batch,
            poll=self.poll,
            worker_poll=self.poll,
            retries=max(0, batch.policy.max_attempts - 1),
            timeout=batch.policy.timeout,
            deadline=(max(0.0, deadline_at - time.monotonic())
                      if deadline_at is not None else None),
            max_restarts=self.max_restarts,
            trace_store_dir=store.directory if store is not None else None,
        )
        report = supervisor.run()
        self.last_supervisor = report.to_dict()
        self.last_counts = queue.counts()
        self.last_worker_stats = queue.read_stats()
        self.last_parent_stats = {}
        if report.deadline_hit:
            batch.report.deadline_hit = True
        if report.restarts:
            batch.degrade(
                f"shared-fs: supervisor restarted workers {report.restarts} time(s) "
                f"({report.crash_restarts} crash, {report.pressure_restarts} pressure)"
            )
        if report.stopped == "fleet-exhausted":
            batch.degrade(
                "shared-fs: supervisor fleet exhausted its restart budget "
                "before the queue drained"
            )


class TCPBackend(SharedFSBackend):
    """Drain a batch through a TCP broker — no shared filesystem needed.

    The submitting process connects a
    :class:`~repro.analysis.netqueue.NetQueue` to ``repro-sim broker``,
    publishes the batch's jobs, optionally spawns local ``repro-sim
    worker --broker`` subprocesses, participates in the drain itself,
    and folds the collected done records back into the batch — the
    same shape as :class:`SharedFSBackend`, with the queue on the far
    side of a socket.  Remote hosts join the same drain by pointing
    their own workers at the broker.

    Failure envelope: client calls retry with capped backoff + seeded
    jitter inside ``retry``; a broker unreachable past that budget
    turns the drain into honest ``unclaimed`` outcomes (never
    journaled), so ``sweep --resume`` against a restarted broker
    completes exactly the missing work.  ``last_transport`` and
    ``batch.report.transport`` carry the wire-health counters for
    ``bench --sweep``.
    """

    name = "tcp"

    def __init__(
        self,
        broker: str,
        spawn: Optional[int] = None,
        batch: int = 8,
        poll: float = 0.1,
        deadline: Optional[float] = None,
        retry=None,
        call_timeout: Optional[float] = None,
    ) -> None:
        from repro.analysis.netqueue import parse_broker_spec

        super().__init__(queue_dir=None, spawn=spawn, batch=batch, poll=poll,
                         deadline=deadline)
        self.broker_host, self.broker_port = parse_broker_spec(broker)
        self.retry = retry
        self.call_timeout = call_timeout
        self.last_transport: Dict[str, int] = {}

    @property
    def broker_spec(self) -> str:
        return f"{self.broker_host}:{self.broker_port}"

    def _spawn_worker(self, queue, index: int, batch,
                      deadline_at: Optional[float] = None,
                      logs_dir: Optional[Path] = None):
        from repro.analysis.supervisor import spawn_worker

        name = f"spawn{index}-{uuid.uuid4().hex[:6]}"
        deadline_s = None
        if deadline_at is not None:
            deadline_s = max(0.0, deadline_at - time.monotonic())
        store = getattr(batch, "trace_store", None)
        return spawn_worker(
            queue,
            name,
            batch=self.batch,
            poll=self.poll,
            retries=max(0, batch.policy.max_attempts - 1),
            timeout=batch.policy.timeout,
            deadline_s=deadline_s,
            trace_store_dir=store.directory if store is not None else None,
            broker=self.broker_spec,
            logs_dir=logs_dir,
        )

    def execute(self, batch, pending: Sequence[int], workers: int, share_traces: bool) -> None:
        from repro.analysis.netqueue import BrokerError, BrokerUnreachable, NetQueue
        from repro.analysis.worker import drain_queue

        if os.environ.get("REPRO_POOL_WORKER"):
            from repro.analysis.resilience import _serial_phase

            batch.degrade("tcp: nested inside a pool worker; ran serially")
            _serial_phase(batch, pending)
            return

        queue = NetQueue(self.broker_host, self.broker_port,
                         retry=self.retry, call_timeout=self.call_timeout)
        # Fail fast and actionably: an unreachable or misconfigured
        # broker surfaces here, before anything is submitted or spawned.
        queue.hello()
        key_to_indices: Dict[str, List[int]] = {}
        for index in pending:
            key_to_indices.setdefault(batch.outcome(index).key, []).append(index)
        # One queue job per distinct key; a restarted broker's queue
        # already holding done records for some keys skips them — that
        # is the resume path.
        queue.submit([batch.jobs[indices[0]] for indices in key_to_indices.values()])

        deadline_at = getattr(batch, "deadline_at", None)
        if deadline_at is None and self.deadline is not None:
            deadline_at = time.monotonic() + self.deadline

        disconnected = self._drain_tcp(batch, queue, workers, deadline_at, drain_queue)

        deadline_hit = bool(
            getattr(batch.report, "deadline_hit", False)
            or (deadline_at is not None and time.monotonic() >= deadline_at)
        )
        if deadline_hit:
            batch.report.deadline_hit = True

        # Collection is itself a network op; a broker lost *after* the
        # drain must still leave the batch in a resumable state.
        done_records: Dict[str, Dict] = {}
        quarantined_records: Dict[str, Dict] = {}
        try:
            done_records = dict(queue.collect_new(set()))
            quarantined_records = queue.collect_quarantined()
        except (BrokerUnreachable, BrokerError) as exc:
            disconnected = True
            batch.degrade(
                f"tcp: broker unreachable while collecting results ({exc}); "
                "uncollected jobs left for --resume"
            )
        self._fold_outcomes(batch, queue, key_to_indices, deadline_hit,
                            disconnected=disconnected,
                            done_records=done_records,
                            quarantined_records=quarantined_records)
        try:
            queue.hello()  # refresh broker_restarts for the health report
        except (BrokerUnreachable, BrokerError):
            pass
        self.last_transport = {
            "reconnects": queue.reconnects,
            "retried_calls": queue.retried_calls,
            "replayed_ops": queue.replayed_ops,
            "broker_restarts": queue.broker_restarts,
        }
        batch.report.transport = dict(self.last_transport)
        queue.close()

    def _drain_tcp(self, batch, queue, workers: int, deadline_at, drain_queue) -> bool:
        """Spawn TCP workers, drain as the parent; True if the broker
        went unreachable past the retry budget."""
        from repro.analysis.netqueue import BrokerError, BrokerUnreachable
        from repro.common.diskio import PressureGuard

        spawn = self.spawn if self.spawn is not None else max(0, workers - 1)
        logs_dir = Path(tempfile.mkdtemp(prefix="repro-net-logs-")) if spawn else None
        procs = []
        for i in range(spawn):
            try:
                procs.append(self._spawn_worker(queue, i, batch, deadline_at, logs_dir))
            except OSError as exc:
                batch.degrade(f"tcp: could not spawn worker {i} ({exc!r})")
                break
        disconnected = False
        try:
            stats = drain_queue(
                queue,
                worker="parent-" + uuid.uuid4().hex[:6],
                batch=self.batch,
                policy=batch.policy,
                trace_store=batch.trace_store,
                poll=self.poll,
                guard=PressureGuard(queue.root, key=f"{queue.root}|parent"),
                deadline=deadline_at,
            )
            self.last_parent_stats = stats.to_dict()
            if stats.stopped == "disconnected":
                disconnected = True
            for event in stats.degradations:
                batch.degrade(f"tcp: parent: {event}")
        finally:
            self._reap(procs)
            try:
                self.last_counts = queue.counts()
                self.last_worker_stats = queue.read_stats()
            except (BrokerUnreachable, BrokerError):
                disconnected = True
                self.last_counts = {}
                self.last_worker_stats = []
        return disconnected


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (later wins, like env vars)."""
    _REGISTRY[name] = factory


def _shared_fs_from_env() -> SharedFSBackend:
    """A :class:`SharedFSBackend` configured from ``REPRO_QUEUE_*`` vars."""

    def _num(env: str, cast, default):
        raw = os.environ.get(env)
        if not raw:
            return default
        try:
            return cast(raw)
        except ValueError:
            raise ValueError(f"{env}={raw!r} is not a valid {cast.__name__}") from None

    queue_dir = os.environ.get(QUEUE_DIR_ENV) or None
    if queue_dir is not None:
        from repro.analysis.workqueue import validate_queue_dir

        queue_dir = validate_queue_dir(queue_dir, what=QUEUE_DIR_ENV)
    return SharedFSBackend(
        queue_dir=queue_dir,
        spawn=_num(QUEUE_WORKERS_ENV, int, None),
        lease_ttl=_num(LEASE_TTL_ENV, float, 30.0),
        batch=_num(QUEUE_BATCH_ENV, int, 8),
    )


def _tcp_from_env() -> "TCPBackend":
    """A :class:`TCPBackend` configured from ``REPRO_BROKER`` and friends."""
    from repro.analysis.netqueue import BROKER_ENV, net_timeout_from_env

    broker = os.environ.get(BROKER_ENV)
    if not broker:
        raise ValueError(
            f"backend 'tcp' needs a broker address: set {BROKER_ENV}=HOST:PORT "
            "(or pass --broker on the command line)"
        )
    spawn_raw = os.environ.get(QUEUE_WORKERS_ENV)
    spawn = None
    if spawn_raw:
        try:
            spawn = int(spawn_raw)
        except ValueError:
            raise ValueError(f"{QUEUE_WORKERS_ENV}={spawn_raw!r} is not a valid int") from None
    batch_raw = os.environ.get(QUEUE_BATCH_ENV)
    batch = 8
    if batch_raw:
        try:
            batch = int(batch_raw)
        except ValueError:
            raise ValueError(f"{QUEUE_BATCH_ENV}={batch_raw!r} is not a valid int") from None
    # parse_broker_spec inside TCPBackend validates the address; the
    # timeout env is validated here too so a typo fails pre-submit.
    net_timeout_from_env()
    return TCPBackend(broker=broker, spawn=spawn, batch=batch)


register_backend("pool", PoolBackend)
register_backend("shared-fs", _shared_fs_from_env)
register_backend("tcp", _tcp_from_env)


def backend_names() -> List[str]:
    return sorted(_REGISTRY)


def resolve_backend(spec=None) -> Optional[ExecutionBackend]:
    """Turn a backend spec into an instance.

    ``None`` consults ``REPRO_BACKEND`` (still unset → ``None``, i.e.
    the built-in pool path without any backend object); a string is
    looked up in the registry; an :class:`ExecutionBackend` instance
    passes through.  An unknown name raises with the known names — a
    typo in ``REPRO_BACKEND`` must fail loudly, not silently serialise.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV)
        if not spec:
            return None
    factory = _REGISTRY.get(spec)
    if factory is None:
        raise ValueError(
            f"unknown execution backend {spec!r}; registered: {', '.join(backend_names())}"
        )
    return factory()
