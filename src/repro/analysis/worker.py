"""The queue worker: claim, steal, amortize, execute, publish.

:func:`drain_queue` is the body of ``repro-sim worker`` and of the
parent process's own participation in a shared-FS sweep
(:class:`repro.analysis.backend.SharedFSBackend`).  One call drains a
:class:`~repro.analysis.workqueue.FileQueue` until it is empty: claim a
batch of jobs, steal from dead peers when the unclaimed pool runs dry,
run everything, publish sealed ``done/`` records, repeat.

**Batch amortization** is the perf heart of this module.  Simulation
jobs sharing a trace are far cheaper together than apart: synthesising
(or loading) the trace dominates short runs, and engine warm-up (JIT
compilation, attribute caches) repeats per fresh process.  So each
claimed batch is grouped by ``(engine, trace parameters)`` and each
group acquires its trace exactly **once**; members after the first pay
only the simulation itself.  :class:`WorkerStats` separates
first-of-group from rest-of-group wall time so ``repro-sim bench
--sweep`` can report the amortization win instead of asserting it.

Fault sites (chaos-tested, registered in :mod:`repro.common.faults`):

* ``worker-death`` fires *outside* the per-job try/except, after a
  lease is held and before its job runs — a ``raise`` spec propagates
  out of :func:`drain_queue` with leases still held (an in-process
  simulated death for tests), and an ``exit`` spec hard-kills a real
  worker process mid-lease.  Either way the queue's steal path must
  recover the work.
* ``stale-lease`` lives inside :meth:`FileQueue.heartbeat`: a ``drop``
  spec silently discards heartbeat writes, so a perfectly healthy
  worker *looks* dead to its peers and its leases get stolen — the
  duplicate execution that follows must converge bit-identically.
* ``pressure`` lives inside the optional
  :class:`~repro.common.diskio.PressureGuard` checked at the top of
  every claim round: ``enospc``/``mem-pressure`` specs make a healthy
  worker behave as if its disk or memory ran out, which must produce a
  clean drain-and-exit (``stats.stopped == "pressure"``), never a
  death mid-write.

The ``worker-death`` site key is the job token *followed by the worker
name*, so chaos plans can target either axis: ``match=<token>`` kills
every executor of one job (a poison job), ``match=<worker>`` kills one
worker incarnation wherever it is in its batch (a mid-lease death).

A background daemon thread heartbeats every quarter lease-TTL so a
legitimately long job is never mistaken for a dead owner.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.netqueue import BrokerUnreachable
from repro.analysis.parallel import _trace_params, execute_job
from repro.analysis.resilience import (
    DEFAULT_POLICY,
    JobAttempt,
    JobTimeout,
    RetryPolicy,
    _serial_deadline,
)
from repro.analysis.result_cache import result_to_dict
from repro.analysis.workqueue import _BEAT_FRACTION, Claim, FileQueue, new_worker_id
from repro.common.diskio import PressureGuard
from repro.common.faults import fault_point
from repro.trace.store import TraceStore


@dataclass
class WorkerStats:
    """One worker's ledger for a drain: throughput plus amortization split."""

    worker: str
    claimed: int = 0
    stolen: int = 0
    executed: int = 0
    ok: int = 0
    failed: int = 0
    #: Distinct (engine, trace) groups run — each paid trace acquisition once.
    groups: int = 0
    #: Jobs that reused a group-mate's trace instead of acquiring their own.
    trace_reuses: int = 0
    trace_acquire_s: float = 0.0
    #: Wall time split: first job of each group (pays warm-up) vs the rest.
    first_job_s: float = 0.0
    rest_job_s: float = 0.0
    first_jobs: int = 0
    rest_jobs: int = 0
    idle_polls: int = 0
    drain_s: float = 0.0
    #: Why the drain stopped early: ``"pressure"``, ``"deadline"``,
    #: ``"heartbeat"`` (the background heartbeat thread died),
    #: ``"disconnected"`` (a network queue's broker stayed unreachable
    #: past the retry budget), or ``None`` for a normal empty-queue (or
    #: max-jobs) exit.
    stopped: Optional[str] = None
    #: The background heartbeat thread died (exception storm or a
    #: BaseException); the drain stopped claiming rather than run on a
    #: decaying lease.
    heartbeat_crashed: bool = False
    #: Transport health (zero for filesystem queues): connections
    #: re-established, calls that needed a retry, and retried *mutating*
    #: calls — each replayed op is a live exercise of idempotency.
    reconnects: int = 0
    retried_calls: int = 0
    replayed_ops: int = 0
    #: Pressure-guard checks performed (0 when no guard was attached).
    pressure_checks: int = 0
    #: Corrupt job/done records this worker's queue instance quarantined.
    queue_quarantined: int = 0
    #: Poison jobs this worker's queue instance moved into quarantine/.
    poisoned: int = 0
    degradations: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return asdict(self)

    @property
    def amortization(self) -> Optional[float]:
        """Mean first-of-group time over mean rest-of-group time (>1 is a win)."""
        if not self.first_jobs or not self.rest_jobs or not self.rest_job_s:
            return None
        return (self.first_job_s / self.first_jobs) / (self.rest_job_s / self.rest_jobs)


class _Heartbeat(threading.Thread):
    """Daemon that beats on the worker's behalf while jobs run.

    A beat that fails is retried on the next interval; what must never
    happen is the thread dying *silently* — a worker with a dead
    heartbeat looks dead to its peers, keeps claiming anyway, and gets
    stolen from mid-job.  So the thread survives any single failure,
    trips ``crashed`` after :data:`_CRASH_AFTER` consecutive ones (a
    beat has been missed for most of a TTL by then) or on any
    BaseException, and the drain loop checks the flag before every
    claim round.
    """

    #: Consecutive failed beats before the thread declares itself dead.
    #: Three misses at TTL/4 cadence leaves one beat of margin before
    #: peers may judge the lease stale.
    _CRASH_AFTER = 3

    def __init__(self, queue: FileQueue, worker: str) -> None:
        super().__init__(daemon=True, name=f"repro-hb-{worker}")
        self._queue = queue
        self._worker = worker
        self._halt = threading.Event()
        self.crashed = False
        self.last_error: Optional[str] = None
        self._consecutive_failures = 0

    def run(self) -> None:
        try:
            while not self._halt.is_set():
                try:
                    self._queue.heartbeat(self._worker, force=True)
                except Exception as exc:  # noqa: BLE001 - survive one bad beat
                    self._consecutive_failures += 1
                    self.last_error = repr(exc)
                    if self._consecutive_failures >= self._CRASH_AFTER:
                        self.crashed = True
                        return
                else:
                    self._consecutive_failures = 0
                self._halt.wait(self._queue.lease_ttl * _BEAT_FRACTION)
        except BaseException as exc:  # noqa: BLE001 - never die silently
            self.last_error = repr(exc)
            self.crashed = True
            raise

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


def _run_claim(
    claim: Claim,
    trace,
    policy: RetryPolicy,
    worker: str,
    stats: WorkerStats,
) -> Tuple[Dict, bool]:
    """One claim under the retry policy; returns (done record, ok).

    Mirrors the serial attempt loop of the resilience engine: seeded
    backoff between tries, SIGALRM deadline where the platform allows,
    the ``worker`` fault site on every attempt.  The outcome — success
    or exhausted failure — becomes a queue ``done/`` record either way,
    so the parent sees the same attempt history a pool backend would
    have reported.
    """
    attempts: List[Dict] = []
    warned = False
    while True:
        attempt = len(attempts)
        if attempt:
            time.sleep(policy.delay(attempt, claim.token))
        started = time.monotonic()
        try:
            with _serial_deadline(policy.timeout) as armed:
                if policy.timeout and not armed and not warned:
                    warned = True
                    stats.degradations.append(
                        f"timeout not enforceable for {claim.token} on this platform; "
                        "falling back to a post-hoc monotonic check between jobs"
                    )
                fault_point("worker", key=claim.token, attempt=attempt)
                result = execute_job(claim.job, trace=trace)
            if (
                policy.timeout
                and not armed
                and time.monotonic() - started > policy.timeout
            ):
                # SIGALRM could not interrupt this job (non-main thread
                # or non-Unix), so the budget is enforced after the
                # fact: the completed result is discarded and the job
                # charged a timeout attempt, matching what an armed
                # deadline would have reported.
                raise JobTimeout()
        except JobTimeout:
            attempts.append(
                JobAttempt(
                    attempt, "timeout", f"exceeded {policy.timeout}s (queue worker)",
                    time.monotonic() - started,
                ).to_dict()
            )
        except Exception as exc:  # noqa: BLE001 - per-job isolation
            attempts.append(
                JobAttempt(attempt, "exception", repr(exc), time.monotonic() - started).to_dict()
            )
        else:
            return (
                {
                    "ok": True,
                    "result": result_to_dict(result),
                    "attempts": attempts,
                    "worker": worker,
                },
                True,
            )
        if len(attempts) >= policy.max_attempts:
            return (
                {
                    "ok": False,
                    "error": attempts[-1]["error"],
                    "attempts": attempts,
                    "worker": worker,
                },
                False,
            )


def _run_claims(
    queue: FileQueue,
    claims: List[Claim],
    policy: RetryPolicy,
    trace_store: Optional[TraceStore],
    worker: str,
    stats: WorkerStats,
) -> None:
    """Run a claimed batch, grouped so each distinct trace is acquired once."""
    groups: Dict[Tuple, List[Claim]] = {}
    for claim in claims:
        groups.setdefault((claim.job.engine_name, _trace_params(claim.job)), []).append(claim)

    for (_, params), members in sorted(groups.items()):
        stats.groups += 1
        acquire_started = time.monotonic()
        try:
            if trace_store is not None:
                trace = trace_store.get_or_build(*params)
            else:
                from repro.workloads import cached_trace

                trace = cached_trace(*params)
        except Exception as exc:  # noqa: BLE001 - fail the group's jobs, not the worker
            for claim in members:
                queue.complete(
                    claim,
                    {
                        "ok": False,
                        "error": f"trace acquisition failed: {exc!r}",
                        "attempts": [],
                        "worker": worker,
                    },
                )
                stats.executed += 1
                stats.failed += 1
            continue
        acquire_cost = time.monotonic() - acquire_started
        stats.trace_acquire_s += acquire_cost
        stats.trace_reuses += len(members) - 1

        for position, claim in enumerate(members):
            # Deliberately OUTSIDE the per-job try/except: a worker-death
            # fault must take the whole worker down with the lease still
            # held, so the steal path (not local retry) recovers the job.
            # Key = token + worker name (see the module docstring).
            fault_point("worker-death", key=claim.token + worker, attempt=stats.executed)
            job_started = time.monotonic()
            record, ok = _run_claim(claim, trace, policy, worker, stats)
            elapsed = time.monotonic() - job_started
            queue.complete(claim, record)
            stats.executed += 1
            if ok:
                stats.ok += 1
            else:
                stats.failed += 1
            if position == 0:
                # The first job of a group carries the trace acquisition —
                # that is exactly the warm-up the rest of the group
                # amortizes away, so charge it here and nowhere else.
                stats.first_jobs += 1
                stats.first_job_s += elapsed + acquire_cost
            else:
                stats.rest_jobs += 1
                stats.rest_job_s += elapsed


def drain_queue(
    queue: FileQueue,
    worker: Optional[str] = None,
    batch: int = 8,
    policy: Optional[RetryPolicy] = None,
    trace_store: Optional[TraceStore] = None,
    poll: float = 0.2,
    exit_when_empty: bool = True,
    max_jobs: Optional[int] = None,
    guard: Optional[PressureGuard] = None,
    deadline: Optional[float] = None,
) -> WorkerStats:
    """Drain ``queue`` until it is empty (or ``max_jobs`` have run).

    The loop: claim up to ``batch`` unclaimed jobs; if that comes up
    short, steal from owners whose heartbeats have gone stale; run the
    batch grouped by (engine, trace); publish done records; repeat.
    With nothing claimable but leases still live elsewhere, the worker
    idles on ``poll`` — either the owners finish or their leases go
    stale and get stolen, so a drain always terminates.

    ``exit_when_empty=False`` keeps the worker alive as a standing
    drainer (the ``repro-sim worker --keep-alive`` mode) — it must then
    be stopped externally.  ``max_jobs`` bounds total executions, for
    tests and canary workers.

    ``guard`` enables resource-pressure checks at the top of every
    claim round: when it reports pressure the worker stops claiming and
    exits cleanly (``stats.stopped = "pressure"``) with whatever it
    already published intact — no lease is held mid-write when the disk
    fills.  ``deadline`` (a ``time.monotonic()`` timestamp) likewise
    stops *claiming* once reached while letting the in-flight batch
    finish (``stats.stopped = "deadline"``); unclaimed jobs stay in the
    queue for a later resume.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1 (got {batch})")
    worker = worker or new_worker_id()
    policy = policy or DEFAULT_POLICY
    stats = WorkerStats(worker=worker)
    started = time.monotonic()
    heartbeat = _Heartbeat(queue, worker)
    try:
        queue.heartbeat(worker, force=True)
    except Exception:  # noqa: BLE001 - a net queue's broker may be down now
        pass  # the heartbeat thread keeps trying; claims surface real loss
    heartbeat.start()
    try:
        while True:
            if max_jobs is not None and stats.executed >= max_jobs:
                break
            if heartbeat.crashed:
                # Claiming with a dead heartbeat invites a steal mid-job;
                # stop cleanly with everything already published intact.
                stats.stopped = "heartbeat"
                stats.heartbeat_crashed = True
                stats.degradations.append(
                    f"heartbeat thread died ({heartbeat.last_error}); "
                    "stopped claiming to avoid running on a decaying lease"
                )
                break
            if deadline is not None and time.monotonic() >= deadline:
                stats.stopped = "deadline"
                stats.degradations.append(
                    f"deadline: stopped claiming after {time.monotonic() - started:.1f}s"
                )
                break
            if guard is not None:
                reason = guard.check()
                stats.pressure_checks = guard.checks
                if reason is not None:
                    stats.stopped = "pressure"
                    stats.degradations.append(f"pressure-exit: {reason}")
                    break
            limit = batch
            if max_jobs is not None:
                limit = min(limit, max_jobs - stats.executed)
            try:
                claims = queue.claim(worker, limit=limit)
                if len(claims) < limit:
                    claims += queue.steal(worker, limit=limit - len(claims))
                if not claims:
                    jobs_left, leases_left = queue.outstanding()
                    if jobs_left == 0 and leases_left == 0 and exit_when_empty:
                        break
                    stats.idle_polls += 1
                    time.sleep(poll)
                    continue
                stats.claimed += sum(1 for c in claims if not c.stolen)
                stats.stolen += sum(1 for c in claims if c.stolen)
                _run_claims(queue, claims, policy, trace_store, worker, stats)
            except BrokerUnreachable as exc:
                # The queue's own retry budget is spent: stop claiming
                # and exit cleanly.  Completed work is already published
                # (or will be redelivered to us on reconnect); held
                # leases go stale and get stolen — the same recovery
                # path as a worker death, without the death.
                stats.stopped = "disconnected"
                stats.degradations.append(f"broker unreachable: {exc}")
                break
            stats.drain_s = time.monotonic() - started
            queue.write_stats(worker, stats.to_dict())
    finally:
        heartbeat.stop()
        stats.drain_s = time.monotonic() - started
        stats.queue_quarantined = queue.quarantined
        stats.poisoned = queue.poisoned
        stats.heartbeat_crashed = stats.heartbeat_crashed or heartbeat.crashed
        # Transport health: duck-typed so FileQueue (no such counters)
        # reports zeros and NetQueue reports its wire statistics.
        stats.reconnects = getattr(queue, "reconnects", 0)
        stats.retried_calls = getattr(queue, "retried_calls", 0)
        stats.replayed_ops = getattr(queue, "replayed_ops", 0)
        queue.write_stats(worker, stats.to_dict())
    return stats
