"""Central registry of distributed-layer process exit codes.

A worker's exit code is a one-byte protocol between three parties that
share no memory: the ``repro-sim worker`` process that dies, the
:class:`~repro.analysis.supervisor.FleetSupervisor` that triages the
death, and the chaos harness that injects it.  PRs 7-9 grew that
protocol as scattered integer literals (``return 75`` here,
``os._exit(70)`` there), which is exactly how one side drifts: a new
exit code added to the worker is a crash to a supervisor that never
heard of it.  This module is the single registry both sides import;
lint rule RL008 enforces it in both directions — every ``sys.exit`` /
``os._exit`` literal in the distributed layer must resolve to a
constant defined here, and the supervisor's triage must explicitly
handle every code the registry says deserves more than the generic
crash branch.

The values follow ``sysexits.h`` where a precedent exists:

* :data:`EXIT_PRESSURE` mirrors ``EX_TEMPFAIL`` (75): the worker is
  fine, the world around it (disk, memory, network) is not — respawn
  on the base backoff without charging the crash budget.
* :data:`EXIT_CHAOS_DEATH` mirrors ``EX_SOFTWARE`` (70): the fault
  harness's injected hard death, indistinguishable from a real crash
  by design (the supervisor must treat it as one).
"""

from __future__ import annotations

from typing import Dict

#: Clean exit: the queue drained (or the drain hit its max-jobs bound)
#: with no failed jobs.
EXIT_OK = 0

#: The drain finished but at least one job exhausted its retry budget.
EXIT_JOBS_FAILED = 1

#: User error (bad flag value, invalid config): one actionable message,
#: nothing to respawn.  Matches the argparse convention.
EXIT_USAGE = 2

#: Injected hard worker death (``exit`` fault kind, ``os._exit``);
#: mirrors BSD ``EX_SOFTWARE``.  Deliberately *not* special-cased by
#: the supervisor: a chaos death must exercise the real crash path.
EXIT_CHAOS_DEATH = 70

#: Clean drain-and-exit under resource pressure, a dead heartbeat
#: thread, or a broker unreachable past the retry budget; mirrors BSD
#: ``EX_TEMPFAIL`` (try again later).
EXIT_PRESSURE = 75

#: Every registered code with a one-line description.  The dict keys
#: are the named constants above (never bare literals) so the lint
#: extractor resolves names and values together.
CODES: Dict[int, str] = {
    EXIT_OK: "clean drain: queue empty (or max-jobs reached), no failures",
    EXIT_JOBS_FAILED: "drain finished with at least one exhausted job",
    EXIT_USAGE: "user error: invalid flag value or configuration",
    EXIT_CHAOS_DEATH: "injected hard worker death (chaos 'exit' fault)",
    EXIT_PRESSURE: "temporary-failure exit: pressure, heartbeat death, or lost broker",
}

#: Codes the supervisor must triage *explicitly* — by comparing against
#: the named constant, not via the generic crash branch.  RL008 fails
#: when the supervisor module stops referencing one of these, and when
#: a supervisor comparison uses a code not registered in :data:`CODES`.
SUPERVISED: Dict[int, str] = {
    EXIT_OK: "retire on a drained queue; respawn when work remains",
    EXIT_PRESSURE: "respawn on base backoff without charging the crash budget",
}


def describe(code: int) -> str:
    """Human-readable name for an exit code (generic for unregistered)."""
    return CODES.get(code, f"unregistered exit code {code} (treated as a crash)")
