"""Persistent, content-addressed result cache.

Simulation runs are pure functions of ``(workload, config, n_insts, seed,
software_prefetch, engine)`` plus the model itself, so their results can be
stored on disk and reused across processes and sessions.  Each result lives
in one JSON file named by the SHA-256 of a canonical encoding of all run
inputs plus :data:`MODEL_VERSION` — bumping the version tag invalidates
every cached result at once, which is the escape hatch whenever a change to
the simulator alters its outputs.

Cache location, in priority order: an explicit ``directory`` argument, the
``REPRO_CACHE_DIR`` environment variable, then ``~/.cache/repro/``.

Only the serialisable subset of :class:`~repro.core.simulator
.SimulationResult` is stored (every scalar, both tally structures, and the
flattened stats tree); :func:`result_from_dict` rebuilds an equivalent
result object, so cached and fresh results are interchangeable for all
reporting code.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.common.config import SimulationConfig
from repro.common.diskio import PressureGuard, atomic_write_json, sweep_stale_tmp
from repro.common.faults import fault_point
from repro.common.stats import Stats
from repro.core.classifier import PrefetchTally
from repro.core.simulator import SimulationResult
from repro.mem.cache import FillSource

#: Bump whenever a model change alters simulation outputs: every key derived
#: with the new tag misses against results stored under the old one.
MODEL_VERSION = "1"

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _canonical(obj: Any) -> Any:
    """Reduce config values to JSON-stable primitives (enums by value)."""
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def config_fingerprint(config: SimulationConfig) -> Dict[str, Any]:
    """The config as a canonical, JSON-serialisable nested dict.

    ``sanitize`` is excluded: the invariant sanitizer is read-only, so a
    sanitized run produces bit-identical counters to an unsanitized one
    and both must resolve to the same cache key.
    """
    data = _canonical(dataclasses.asdict(config))
    data.pop("sanitize", None)
    return data


def run_key(
    workload: str,
    config: SimulationConfig,
    n_insts: int = 100_000,
    seed: int = 0,
    software_prefetch: bool = True,
    engine: str = "pipeline",
    version: str = MODEL_VERSION,
) -> str:
    """Stable content hash of one simulation run's complete inputs."""
    payload = {
        "version": version,
        "workload": workload,
        "config": config_fingerprint(config),
        "n_insts": n_insts,
        "seed": seed,
        "software_prefetch": software_prefetch,
        "engine": engine,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# SimulationResult <-> plain dict
# ----------------------------------------------------------------------
def _tally_to_dict(tally: PrefetchTally) -> Dict[str, int]:
    return dataclasses.asdict(tally)


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return {
        "trace_name": result.trace_name,
        "filter_name": result.filter_name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "prefetch": _tally_to_dict(result.prefetch),
        "per_source": {
            src.name: _tally_to_dict(t) for src, t in result.per_source.items()
        },
        "l1_demand_accesses": result.l1_demand_accesses,
        "l1_demand_misses": result.l1_demand_misses,
        "l2_demand_accesses": result.l2_demand_accesses,
        "l2_demand_misses": result.l2_demand_misses,
        "l1_prefetch_fills": result.l1_prefetch_fills,
        "prefetch_line_traffic": result.prefetch_line_traffic,
        "demand_line_traffic": result.demand_line_traffic,
        "stats": result.stats.flat(),
    }


def _stats_from_flat(flat: Dict[str, float]) -> Stats:
    stats = Stats()
    for dotted, value in flat.items():
        parts = dotted.split(".")
        group = stats
        for name in parts[:-1]:
            group = group[name]
        group.set(parts[-1], value)
    return stats


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        trace_name=data["trace_name"],
        filter_name=data["filter_name"],
        instructions=int(data["instructions"]),
        cycles=int(data["cycles"]),
        prefetch=PrefetchTally(**data["prefetch"]),
        per_source={
            FillSource[name]: PrefetchTally(**t)
            for name, t in data["per_source"].items()
        },
        l1_demand_accesses=int(data["l1_demand_accesses"]),
        l1_demand_misses=int(data["l1_demand_misses"]),
        l2_demand_accesses=int(data["l2_demand_accesses"]),
        l2_demand_misses=int(data["l2_demand_misses"]),
        l1_prefetch_fills=int(data["l1_prefetch_fills"]),
        prefetch_line_traffic=int(data["prefetch_line_traffic"]),
        demand_line_traffic=int(data["demand_line_traffic"]),
        stats=_stats_from_flat(data["stats"]),
    )


# ----------------------------------------------------------------------
# Artifact integrity
# ----------------------------------------------------------------------
#: JSON key carrying the entry's own digest (excluded from the digest).
DIGEST_KEY = "sha256"


def payload_digest(data: Dict[str, Any]) -> str:
    """SHA-256 over the canonical encoding of an entry (minus its digest)."""
    body = {k: v for k, v in data.items() if k != DIGEST_KEY}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
def default_cache_dir() -> Path:
    env = os.environ.get(_CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


#: Size budget for the cache directory, e.g. ``64k`` / ``200m`` / ``2g``
#: (or a plain byte count).  Unset means unbounded — the pre-budget
#: behaviour.
_BUDGET_ENV = "REPRO_CACHE_BUDGET"


def parse_budget(text: Optional[str]) -> Optional[int]:
    """Parse a size budget: bytes with an optional k/m/g suffix.

    ``None``/empty means no budget.  A malformed or nonpositive value
    raises — a user who sets ``REPRO_CACHE_BUDGET=10gb`` wants a bounded
    cache, not a silently unbounded one.
    """
    if text is None:
        return None
    raw = str(text).strip().lower()
    if not raw:
        return None
    multiplier = 1
    if raw[-1] in "kmg":
        multiplier = {"k": 1024, "m": 1024**2, "g": 1024**3}[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"cache budget must be bytes with an optional k/m/g suffix (got {text!r})"
        ) from None
    budget = int(value * multiplier)
    if budget <= 0:
        raise ValueError(f"cache budget must be positive (got {text!r})")
    return budget


def default_budget() -> Optional[int]:
    return parse_budget(os.environ.get(_BUDGET_ENV))


class ResultCache:
    """Content-addressed JSON store of simulation results.

    ``get`` is tolerant by design: a missing, corrupt, or structurally
    stale file is treated as a miss (and a corrupt file is removed), so a
    killed process or a format change can never wedge the cache.
    Quarantined entries are *counted* (``.stats``, surfaced by
    ``repro-sim bench``) so a degraded disk is distinguishable from a
    cold cache; construction also sweeps temp files orphaned by killed
    writers.

    With a size ``budget`` (explicit bytes, or the
    ``REPRO_CACHE_BUDGET`` environment variable — ``64k``/``200m``/
    ``2g``), the directory is kept under budget by least-recently-used
    eviction: every hit bumps its entry's mtime, and each write evicts
    oldest-read entries until the total fits.  Eviction is
    multi-process safe — an exclusive (non-blocking) lock file
    serialises evictors, and a process finding the lock busy simply
    skips its turn, since the holder is already shrinking the same
    directory.  Evictions are counted in ``.stats`` next to the
    quarantine counters.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike | str] = None,
        budget: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.budget_bytes = budget if budget is not None else default_budget()
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise ValueError(f"cache budget must be positive (got {self.budget_bytes})")
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.evicted = 0
        self.pressure_skipped = 0
        # Disk-only guard: a ballooning RSS is the *runner's* problem
        # (workers drain and exit); persisting finished results is not.
        self._pressure = PressureGuard(self.directory, max_rss_bytes=None)
        self.stale_tmp_removed = sweep_stale_tmp(self.directory)

    @property
    def stats(self) -> Dict[str, int]:
        """Health counters: corruption shows up here, not as cold misses."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "evicted": self.evicted,
            "pressure_skipped": self.pressure_skipped,
            "budget_bytes": self.budget_bytes or 0,
            "stale_tmp_removed": self.stale_tmp_removed,
        }

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResult]:
        path = self._path(key)
        try:
            with open(path) as fh:
                data = json.load(fh)
            stored = data.get(DIGEST_KEY)
            if stored != payload_digest(data):
                # Bit rot, truncation, or a pre-digest entry: either way
                # the bytes cannot be trusted as a simulation result.
                raise ValueError("artifact digest mismatch")
            result = result_from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            self.quarantined += 1
            self.misses += 1
            return None
        try:
            os.utime(path)  # LRU bump: a hit is a "use" for the evictor
        except OSError:
            pass
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        if self._pressure.check() is not None:
            # A nearly-full disk turns every write into a potential torn
            # entry; skipping is safe (the cache is a pure memo) and the
            # counter keeps the skip honest.
            self.pressure_skipped += 1
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        data = result_to_dict(result)
        data[DIGEST_KEY] = payload_digest(data)
        try:
            atomic_write_json(path, data)  # readers never see partial files
            spec = fault_point("cache", key=key)
            if spec is not None and spec.kind in ("corrupt-cache", "corrupt-artifact"):
                if spec.kind == "corrupt-cache":
                    # A deliberately torn write: the fault models exactly
                    # the bytes the sealed-write helpers exist to prevent.
                    path.write_text("\x00 injected corruption")  # repro-lint: disable=RL007
                else:
                    # Valid JSON, wrong bytes: only the digest check can
                    # tell this apart from a genuine result.
                    data["instructions"] = int(data.get("instructions", 0)) + 1
                    path.write_text(json.dumps(data))  # repro-lint: disable=RL007
        except OSError:
            pass  # a lost memo write is a future miss, not an error
        self._enforce_budget()

    def _enforce_budget(self) -> int:
        """Evict least-recently-used entries until the directory fits.

        Serialised across processes by a non-blocking exclusive lock: if
        another process holds it, that process is already shrinking this
        directory, so the current writer skips its turn rather than
        block a sweep on janitorial work.  Entries are ranked by mtime
        — which :meth:`get` bumps on every hit — so what goes first is
        what nothing has read for longest, never the entry just written
        (its mtime is the newest in the directory).
        """
        if self.budget_bytes is None:
            return 0
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-Unix fallback
            fcntl = None
        try:
            # Append mode: creates the lock file without truncating and
            # carries no record contents, so it stays outside the
            # sealed-write (RL007) contract that "w" writes opt into.
            lock = open(self.directory / ".evict.lock", "a")
        except OSError:
            return 0
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(lock.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    return 0  # another process is already evicting
            entries = []
            total = 0
            for path in self.directory.glob("*.json"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
                total += st.st_size
            entries.sort(key=lambda e: (e[0], e[2].name))
            removed = 0
            for _, size, path in entries:
                if total <= self.budget_bytes:
                    break
                try:
                    path.unlink()
                except FileNotFoundError:
                    # A concurrent reader/evictor already freed it: the
                    # bytes are gone (count toward the budget math) but
                    # the eviction is *theirs* (don't count it here —
                    # two evictors must never double-count one file).
                    total -= size
                    continue
                except OSError:
                    continue
                total -= size
                removed += 1
            self.evicted += removed
            return removed
        finally:
            lock.close()

    def clear(self) -> int:
        """Delete every cached result; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.directory)!r}, hits={self.hits}, misses={self.misses})"
