"""The paper's experiment registry.

One entry per table/figure in the paper (plus the in-text experiments),
each runnable on demand and returning a structured
:class:`ExperimentResult` with the measured rows, a text figure, the
paper's reference numbers, and a reproduction verdict.  The registry is
what ``benchmarks/`` asserts against and what regenerates
``EXPERIMENTS.md``::

    python -m repro.analysis.experiments --insts 120000 --out EXPERIMENTS.md

Results are memoised within a suite so experiments sharing simulations
(Figures 4-6 are three views of one comparison) run them once.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.checkpoint import RunJournal
from repro.analysis.figures import grouped_bars, series_lines, sparkline
from repro.analysis.metrics import arithmetic_mean, percent_change, reduction_percent
from repro.analysis.parallel import SimulationJob, default_workers, run_jobs
from repro.analysis.resilience import RetryPolicy
from repro.analysis.report import Table
from repro.analysis.result_cache import ResultCache
from repro.common.config import FilterKind, SimulationConfig
from repro.core.simulator import SimulationResult
from repro.workloads import get_workload, workload_names

HISTORY_SIZES = (1024, 2048, 4096, 8192, 16384)
PORT_COUNTS = (3, 4, 5)


@dataclass
class ExperimentResult:
    """Everything needed to report one paper artifact."""

    exp_id: str
    title: str
    paper_reference: str
    table: Table
    summary: Dict[str, float] = field(default_factory=dict)
    figure: Optional[str] = None
    notes: str = ""

    def render(self, with_figure: bool = True) -> str:
        parts = [f"[{self.exp_id}] {self.title}", "", self.table.render(), ""]
        if self.summary:
            parts.append("measured: " + ", ".join(f"{k}={v:.3g}" for k, v in self.summary.items()))
        parts.append(f"paper:    {self.paper_reference}")
        if self.notes:
            parts.append(f"notes:    {self.notes}")
        if with_figure and self.figure:
            parts += ["", self.figure]
        return "\n".join(parts)


class ExperimentSuite:
    """Runs the paper's experiments at a configurable scale."""

    def __init__(
        self,
        n_insts: int = 150_000,
        warmup: Optional[int] = None,
        seed: int = 0,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        engine: Optional[str] = None,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        backend=None,
    ) -> None:
        self.n_insts = n_insts
        self.warmup = warmup if warmup is not None else int(n_insts * 0.4)
        self.seed = seed
        self.workers = workers
        self.cache = cache
        #: resilience knobs, threaded into every ``run_jobs`` batch: the
        #: retry/timeout policy and the crash-consistent run journal a
        #: killed suite resumes from (see repro.analysis.resilience).
        self.policy = policy
        self.journal = journal
        #: execution backend for every batch (see repro.analysis.backend);
        #: ``None`` defers to REPRO_BACKEND and then the in-process pool.
        self.backend = backend
        #: engine tier for every run in the suite; ``None`` defers to each
        #: config.  The vector tier suits classification-level experiments
        #: (filter comparisons, table sweeps); keep IPC/port/buffer figures
        #: on the pipeline tier — see docs/architecture.md, "Engine tiers".
        self.engine = engine
        self.benches = workload_names()
        #: in-memory memo, keyed by the run's stable content hash (the same
        #: key the disk cache uses), so experiments sharing simulations run
        #: them once per suite regardless of config object identity.
        self._runs: Dict[str, SimulationResult] = {}

    # ------------------------------------------------------------------
    # Simulation plumbing (memoised)
    # ------------------------------------------------------------------
    def base_config(self, l1_kb: int = 8) -> SimulationConfig:
        builder = {8: SimulationConfig.paper_default, 32: SimulationConfig.paper_32kb, 16: SimulationConfig.paper_16kb}
        try:
            cfg = builder[l1_kb]()
        except KeyError:
            raise ValueError(f"unsupported L1 size {l1_kb}KB") from None
        return cfg.with_warmup(self.warmup)

    def _job(self, workload: str, config: SimulationConfig, software_prefetch: bool = True) -> SimulationJob:
        return SimulationJob(workload, config, self.n_insts, self.seed, software_prefetch, self.engine)

    def _ensure(self, specs: Sequence[SimulationJob]) -> None:
        """Run (in one parallel batch) every spec not already memoised."""
        fresh: List[SimulationJob] = []
        seen = set()
        for job in specs:
            key = job.key()
            if key not in self._runs and key not in seen:
                seen.add(key)
                fresh.append(job)
        if not fresh:
            return
        results = run_jobs(
            fresh,
            workers=self.workers,
            cache=self.cache,
            policy=self.policy,
            journal=self.journal,
            backend=self.backend,
        )
        for job, result in zip(fresh, results):
            self._runs[job.key()] = result

    def run(self, workload: str, config: SimulationConfig, software_prefetch: bool = True) -> SimulationResult:
        job = self._job(workload, config, software_prefetch)
        key = job.key()
        if key not in self._runs:
            self._ensure([job])
        return self._runs[key]

    def comparison(self, l1_kb: int = 8) -> Dict[str, Dict[FilterKind, SimulationResult]]:
        cfg = self.base_config(l1_kb)
        kinds = (FilterKind.NONE, FilterKind.PA, FilterKind.PC)
        self._ensure(
            [self._job(name, cfg.with_filter(kind=kind)) for name in self.benches for kind in kinds]
        )
        return {
            name: {kind: self.run(name, cfg.with_filter(kind=kind)) for kind in kinds}
            for name in self.benches
        }

    # ------------------------------------------------------------------
    # Experiments
    # ------------------------------------------------------------------
    def table1(self) -> ExperimentResult:
        cfg = SimulationConfig.paper_default()
        table = Table("Table 1 — system configuration", ["parameter", "value"], mean_row=False)
        for line in cfg.describe().splitlines():
            if line.startswith("  "):
                name, _, value = line.strip().partition("  ")
                table.add_row(name.strip(), [value.strip()])
            else:
                table.add_row(f"[{line.strip()}]", [""])
        return ExperimentResult(
            "T1",
            "System configuration",
            "8-wide OoO, 128 ROB / 64 LSQ, 8KB DM L1 (1cy, 3 ports), 512KB 4-way L2 (15cy), "
            "150cy memory, 64-entry prefetch queue, 4096-entry (1KB) history table",
            table,
        )

    def table2(self) -> ExperimentResult:
        cfg = self.base_config().with_prefetch(nsp=False, sdp=False, software=False)
        table = Table(
            "Table 2 — benchmark properties (prefetch off)",
            ["benchmark", "L1 miss", "L1 paper", "L2 miss", "L2 paper"],
            mean_row=False,
        )
        self._ensure([self._job(name, cfg, software_prefetch=False) for name in self.benches])
        l1_err = []
        for name in self.benches:
            r = self.run(name, cfg, software_prefetch=False)
            info = get_workload(name).info
            table.add_row(name, [r.l1_miss_rate, info.paper_l1_miss, r.l2_miss_rate, info.paper_l2_miss])
            l1_err.append(abs(r.l1_miss_rate - info.paper_l1_miss))
        return ExperimentResult(
            "T2",
            "Benchmark properties",
            "L1 miss 4.1-21.6%; L2 split into near-zero (bh/em3d/fpppp) vs 20-32% "
            "(perimeter/gap/gzip/mcf) groups",
            table,
            summary={"mean |L1 - paper|": arithmetic_mean(l1_err)},
        )

    def figure1(self) -> ExperimentResult:
        cmp8 = self.comparison(8)
        table = Table("Figure 1 — prefetch effectiveness (no filter)", ["benchmark", "good frac", "bad frac"])
        chart_rows = {}
        fracs = []
        for name in self.benches:
            t = cmp8[name][FilterKind.NONE].prefetch
            total = max(1, t.good + t.bad)
            table.add_row(name, [t.good / total, t.bad / total])
            chart_rows[name] = {"good": t.good / total, "bad": t.bad / total}
            fracs.append(t.bad / total)
        return ExperimentResult(
            "F1",
            "Effectiveness of prefetches",
            "average 48% of prefetches are bad; >50% in 4 of 10 benchmarks",
            table,
            summary={"mean bad fraction": arithmetic_mean(fracs)},
            figure=grouped_bars("good vs bad prefetch fractions", chart_rows, width=30),
        )

    def figure2(self) -> ExperimentResult:
        cmp8 = self.comparison(8)
        table = Table("Figure 2 — L1 traffic distribution", ["benchmark", "prefetch/normal ratio"])
        rows = {}
        for name in self.benches:
            r = cmp8[name][FilterKind.NONE]
            table.add_row(name, [r.prefetch_to_normal_ratio])
            rows[name] = {"pf/normal": r.prefetch_to_normal_ratio}
        values = [cmp8[n][FilterKind.NONE].prefetch_to_normal_ratio for n in self.benches]
        return ExperimentResult(
            "F2",
            "Traffic distribution of L1 cache",
            "prefetch/normal access ratio 0.29 (gzip) to 0.57 (ijpeg), mean 0.41",
            table,
            summary={"mean ratio": arithmetic_mean(values)},
            figure=grouped_bars("prefetch share of L1 traffic", rows, width=30),
        )

    def _counts_figure(self, l1_kb: int, exp_id: str, paper: str) -> ExperimentResult:
        cmp_ = self.comparison(l1_kb)
        table = Table(
            f"Figure {exp_id[1:]} — prefetch counts, {l1_kb}KB L1 (normalised to no-filter good)",
            ["benchmark", "bad none", "bad PA", "bad PC", "good PA", "good PC"],
        )
        bad_pa, bad_pc, good_pa, good_pc = [], [], [], []
        for name in self.benches:
            none = cmp_[name][FilterKind.NONE].prefetch
            pa = cmp_[name][FilterKind.PA].prefetch
            pc = cmp_[name][FilterKind.PC].prefetch
            ref = max(1, none.good)
            table.add_row(name, [none.bad / ref, pa.bad / ref, pc.bad / ref, pa.good / ref, pc.good / ref])
            bad_pa.append(reduction_percent(none.bad, pa.bad))
            bad_pc.append(reduction_percent(none.bad, pc.bad))
            good_pa.append(reduction_percent(none.good, pa.good))
            good_pc.append(reduction_percent(none.good, pc.good))
        return ExperimentResult(
            exp_id,
            f"Prefetch miss/hit counts, {l1_kb}KB D-cache",
            paper,
            table,
            summary={
                "bad reduction PA %": arithmetic_mean(bad_pa),
                "bad reduction PC %": arithmetic_mean(bad_pc),
                "good reduction PA %": arithmetic_mean(good_pa),
                "good reduction PC %": arithmetic_mean(good_pc),
            },
        )

    def figure4(self) -> ExperimentResult:
        return self._counts_figure(8, "F4", "bad -97% (PA) / -98% (PC); good -51% / -48%; bandwidth -75% / -74%")

    def figure7(self) -> ExperimentResult:
        return self._counts_figure(32, "F7", "bad -91% (PA) / -92% (PC); good only -35% / -27% (better preserved)")

    def _ratio_figure(self, l1_kb: int, exp_id: str, paper: str) -> ExperimentResult:
        cmp_ = self.comparison(l1_kb)
        table = Table(
            f"Figure {exp_id[1:]} — bad/good prefetch ratio, {l1_kb}KB L1",
            ["benchmark", "none", "PA", "PC"],
        )
        reds_pa, reds_pc = [], []
        chart = {}
        for name in self.benches:
            rn = cmp_[name][FilterKind.NONE].prefetch.bad_good_ratio
            rpa = cmp_[name][FilterKind.PA].prefetch.bad_good_ratio
            rpc = cmp_[name][FilterKind.PC].prefetch.bad_good_ratio
            table.add_row(name, [rn, rpa, rpc])
            chart[name] = {"none": rn, "PA": rpa, "PC": rpc}
            if rn not in (0.0, float("inf")):
                if rpa != float("inf"):
                    reds_pa.append(reduction_percent(rn, rpa))
                if rpc != float("inf"):
                    reds_pc.append(reduction_percent(rn, rpc))
        return ExperimentResult(
            exp_id,
            f"Bad/good prefetch ratios, {l1_kb}KB D-cache",
            paper,
            table,
            summary={
                "ratio reduction PA %": arithmetic_mean(reds_pa),
                "ratio reduction PC %": arithmetic_mean(reds_pc),
            },
            figure=grouped_bars("bad/good ratio by filter", chart, width=30),
        )

    def figure5(self) -> ExperimentResult:
        return self._ratio_figure(8, "F5", "ratio reduced 70% (PA) / 91% (PC)")

    def figure8(self) -> ExperimentResult:
        return self._ratio_figure(32, "F8", "ratio reduced 75% (PA) / 93% (PC)")

    def _ipc_figure(self, l1_kb: int, exp_id: str, paper: str) -> ExperimentResult:
        cmp_ = self.comparison(l1_kb)
        table = Table(f"Figure {exp_id[1:]} — IPC, {l1_kb}KB L1", ["benchmark", "none", "PA", "PC"])
        sp_pa, sp_pc = [], []
        chart = {}
        for name in self.benches:
            n = cmp_[name][FilterKind.NONE].ipc
            pa = cmp_[name][FilterKind.PA].ipc
            pc = cmp_[name][FilterKind.PC].ipc
            table.add_row(name, [n, pa, pc])
            chart[name] = {"none": n, "PA": pa, "PC": pc}
            sp_pa.append(percent_change(n, pa))
            sp_pc.append(percent_change(n, pc))
        return ExperimentResult(
            exp_id,
            f"IPC comparison, {l1_kb}KB D-cache",
            paper,
            table,
            summary={
                "mean speedup PA %": arithmetic_mean(sp_pa),
                "mean speedup PC %": arithmetic_mean(sp_pc),
            },
            figure=grouped_bars("IPC by filter", chart, width=30),
        )

    def figure6(self) -> ExperimentResult:
        return self._ipc_figure(8, "F6", "IPC +8.2% (PA) / +9.1% (PC); no-filter always worst")

    def figure9(self) -> ExperimentResult:
        return self._ipc_figure(32, "F9", "IPC +7.0% (PA) / +8.1% (PC); no-filter always worst")

    def _history_sweep(self) -> Dict[str, Dict[int, SimulationResult]]:
        cfg = self.base_config().with_filter(kind=FilterKind.PA)
        self._ensure(
            [
                self._job(name, cfg.with_filter(table_entries=s))
                for name in self.benches
                for s in HISTORY_SIZES
            ]
        )
        return {
            name: {s: self.run(name, cfg.with_filter(table_entries=s)) for s in HISTORY_SIZES}
            for name in self.benches
        }

    def figure10(self) -> ExperimentResult:
        sweep = self._history_sweep()
        table = Table(
            "Figure 10 — good prefetches vs history size (normalised to 4K)",
            ["benchmark"] + [f"{s // 1024}K" for s in HISTORY_SIZES],
        )
        rows = {}
        for name in self.benches:
            ref = max(1, sweep[name][4096].prefetch.good)
            values = [sweep[name][s].prefetch.good / ref for s in HISTORY_SIZES]
            table.add_row(name, values)
            rows[name] = values
        fig = series_lines(
            "good prefetches vs table size", rows, [f"{s // 1024}K" for s in HISTORY_SIZES]
        )
        return ExperimentResult(
            "F10",
            "Good prefetches vs history table size",
            "longer history preserves more good prefetches; gap/gzip/mcf size-insensitive",
            table,
            figure=fig,
        )

    def figure11(self) -> ExperimentResult:
        sweep = self._history_sweep()
        table = Table(
            "Figure 11 — bad prefetches vs history size (normalised to 4K)",
            ["benchmark"] + [f"{s // 1024}K" for s in HISTORY_SIZES],
        )
        for name in self.benches:
            ref = max(1, sweep[name][4096].prefetch.bad)
            table.add_row(name, [sweep[name][s].prefetch.bad / ref for s in HISTORY_SIZES])
        return ExperimentResult(
            "F11",
            "Bad prefetches vs history table size",
            "can rise with table size (fresh entries default to allow); absolute numbers small",
            table,
        )

    def figure12(self) -> ExperimentResult:
        sweep = self._history_sweep()
        table = Table(
            "Figure 12 — IPC vs history size (PA filter)",
            ["benchmark"] + [f"{s // 1024}K" for s in HISTORY_SIZES],
        )
        per_size = {s: [] for s in HISTORY_SIZES}
        trend = {}
        for name in self.benches:
            values = [sweep[name][s].ipc for s in HISTORY_SIZES]
            table.add_row(name, values)
            trend[name] = sparkline(values)
            for s, v in zip(HISTORY_SIZES, values):
                per_size[s].append(v)
        means = {s: arithmetic_mean(v) for s, v in per_size.items()}
        return ExperimentResult(
            "F12",
            "IPC vs history table size",
            "+6% from 2K to 4K entries; <1% beyond 4K (saturation)",
            table,
            summary={f"mean IPC {s // 1024}K": m for s, m in means.items()},
            notes="trends: " + " ".join(f"{n}:{t}" for n, t in trend.items()),
        )

    def _port_sweep(self) -> Dict[str, Dict[int, SimulationResult]]:
        self._ensure(
            [
                self._job(name, SimulationConfig.paper_ports(p, FilterKind.PA).with_warmup(self.warmup))
                for name in self.benches
                for p in PORT_COUNTS
            ]
        )
        return {
            name: {
                p: self.run(name, SimulationConfig.paper_ports(p, FilterKind.PA).with_warmup(self.warmup))
                for p in PORT_COUNTS
            }
            for name in self.benches
        }

    def figure13(self) -> ExperimentResult:
        sweep = self._port_sweep()
        table = Table(
            "Figure 13 — bad/good ratio vs L1 ports (PA filter)",
            ["benchmark", "3 ports", "4 ports", "5 ports"],
        )
        for name in self.benches:
            table.add_row(name, [sweep[name][p].prefetch.bad_good_ratio for p in PORT_COUNTS])
        return ExperimentResult(
            "F13",
            "Bad/good prefetch ratios vs number of L1 ports",
            "ratio drops 6% from 3 to 4 ports, 2% more from 4 to 5 (port pressure delays prefetches)",
            table,
        )

    def figure14(self) -> ExperimentResult:
        sweep = self._port_sweep()
        table = Table(
            "Figure 14 — IPC vs L1 ports (PA filter)", ["benchmark", "3 ports", "4 ports", "5 ports"]
        )
        per_port = {p: [] for p in PORT_COUNTS}
        for name in self.benches:
            values = [sweep[name][p].ipc for p in PORT_COUNTS]
            table.add_row(name, values)
            for p, v in zip(PORT_COUNTS, values):
                per_port[p].append(v)
        means = {p: arithmetic_mean(v) for p, v in per_port.items()}
        return ExperimentResult(
            "F14",
            "IPC vs number of L1 ports",
            "+4% from 3 to 4 ports, <1% from 4 to 5 (ports cost latency; >4 not worth it)",
            table,
            summary={f"mean IPC {p}p": m for p, m in means.items()},
        )

    def _buffer_runs(self) -> Dict[str, Dict[Tuple[FilterKind, bool], SimulationResult]]:
        cfg = self.base_config()
        self._ensure(
            [
                self._job(name, base if not buffered else base.with_buffer())
                for name in self.benches
                for base in (cfg.with_filter(kind=FilterKind.PA), cfg.with_filter(kind=FilterKind.PC))
                for buffered in (False, True)
            ]
        )
        out = {}
        for name in self.benches:
            row = {}
            for kind in (FilterKind.PA, FilterKind.PC):
                row[(kind, False)] = self.run(name, cfg.with_filter(kind=kind))
                row[(kind, True)] = self.run(name, cfg.with_filter(kind=kind).with_buffer())
            out[name] = row
        return out

    def figure15(self) -> ExperimentResult:
        runs = self._buffer_runs()
        table = Table(
            "Figure 15 — bad/good ratio with dedicated prefetch buffer",
            ["benchmark", "PA", "PA+buf", "PC", "PC+buf"],
        )
        for name in self.benches:
            table.add_row(
                name,
                [
                    runs[name][(FilterKind.PA, False)].prefetch.bad_good_ratio,
                    runs[name][(FilterKind.PA, True)].prefetch.bad_good_ratio,
                    runs[name][(FilterKind.PC, False)].prefetch.bad_good_ratio,
                    runs[name][(FilterKind.PC, True)].prefetch.bad_good_ratio,
                ],
            )
        return ExperimentResult(
            "F15",
            "Bad/good ratios with a dedicated prefetch buffer",
            "the 16-entry buffer degrades the filters' effectiveness in most programs",
            table,
        )

    def figure16(self) -> ExperimentResult:
        runs = self._buffer_runs()
        table = Table(
            "Figure 16 — IPC with dedicated prefetch buffer",
            ["benchmark", "PA", "PA+buf", "PC", "PC+buf"],
        )
        deltas = []
        for name in self.benches:
            pa = runs[name][(FilterKind.PA, False)].ipc
            pab = runs[name][(FilterKind.PA, True)].ipc
            table.add_row(
                name,
                [pa, pab, runs[name][(FilterKind.PC, False)].ipc, runs[name][(FilterKind.PC, True)].ipc],
            )
            deltas.append(percent_change(pa, pab))
        return ExperimentResult(
            "F16",
            "IPC with a dedicated prefetch buffer",
            "adding the buffer loses 9% (PA) / 10% (PC) IPC versus the filters alone",
            table,
            summary={"mean IPC change from buffer (PA) %": arithmetic_mean(deltas)},
        )

    def section3_oracle(self) -> ExperimentResult:
        cmp8 = self.comparison(8)
        cfg = self.base_config().with_filter(kind=FilterKind.ORACLE)
        self._ensure([self._job(name, cfg) for name in self.benches])
        table = Table(
            "Section 3 — oracle elimination of bad prefetches",
            ["benchmark", "IPC none", "IPC oracle", "bad red %", "good kept %"],
        )
        bad_reds = []
        for name in self.benches:
            none = cmp8[name][FilterKind.NONE]
            orc = self.run(name, cfg)
            bad_red = reduction_percent(none.prefetch.bad, orc.prefetch.bad)
            good_kept = 100 - reduction_percent(none.prefetch.good, orc.prefetch.good)
            table.add_row(name, [none.ipc, orc.ipc, bad_red, good_kept])
            bad_reds.append(bad_red)
        return ExperimentResult(
            "S3",
            "Oracle (artificial) elimination of bad prefetches",
            "motivates the filter: eliminating bad prefetches recovers the pollution loss",
            table,
            summary={"mean bad reduction %": arithmetic_mean(bad_reds)},
        )

    def section521_prefetchers(self) -> ExperimentResult:
        table = Table(
            "Section 5.2.1 — per-prefetcher filtering (PA)",
            ["machine", "accuracy none", "bad red %", "good red %"],
            mean_row=False,
        )
        summary = {}
        scenarios = (("NSP", dict(sdp=False, software=False)), ("SDP", dict(nsp=False, software=False)))
        self._ensure(
            [
                self._job(name, cfg)
                for _, overrides in scenarios
                for base in (self.base_config().with_prefetch(**overrides),)
                for cfg in (base, base.with_filter(kind=FilterKind.PA))
                for name in self.benches
            ]
        )
        for label, overrides in scenarios:
            cfg = self.base_config().with_prefetch(**overrides)
            accs, bad_reds, good_reds = [], [], []
            for name in self.benches:
                none = self.run(name, cfg).prefetch
                filt = self.run(name, cfg.with_filter(kind=FilterKind.PA)).prefetch
                if none.classified:
                    accs.append(none.accuracy)
                bad_reds.append(reduction_percent(none.bad, filt.bad))
                good_reds.append(reduction_percent(none.good, filt.good))
            row = [arithmetic_mean(accs), arithmetic_mean(bad_reds), arithmetic_mean(good_reds)]
            table.add_row(label, row)
            summary[f"{label} accuracy"] = row[0]
        return ExperimentResult(
            "S1",
            "Filtering NSP and SDP separately",
            "NSP good/bad 1.8, filter -97.5% bad / -48.1% good; SDP good/bad 11.7, "
            "filter -68.3% bad / -61.9% good (accurate prefetchers filter worse)",
            table,
            summary=summary,
        )

    def section521_cache_vs_table(self) -> ExperimentResult:
        cmp8 = self.comparison(8)
        cfg16 = self.base_config(16)
        self._ensure([self._job(name, cfg16) for name in self.benches])
        table = Table(
            "Section 5.2.1 — 1KB history table vs 16KB L1",
            ["benchmark", "8KB none", "8KB+PA", "16KB none"],
        )
        fgain, cgain = [], []
        for name in self.benches:
            none = cmp8[name][FilterKind.NONE].ipc
            pa = cmp8[name][FilterKind.PA].ipc
            big = self.run(name, cfg16).ipc
            table.add_row(name, [none, pa, big])
            fgain.append(percent_change(none, pa))
            cgain.append(percent_change(none, big))
        return ExperimentResult(
            "S2",
            "Adding a 1KB history table vs doubling the L1",
            "16KB L1 gains ~20%; the 1KB table is the more area-efficient option",
            table,
            summary={
                "mean gain +1KB table %": arithmetic_mean(fgain),
                "mean gain +8KB cache %": arithmetic_mean(cgain),
            },
        )

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def registry(self) -> Dict[str, Callable[[], ExperimentResult]]:
        return {
            "t1": self.table1,
            "t2": self.table2,
            "f1": self.figure1,
            "f2": self.figure2,
            "f4": self.figure4,
            "f5": self.figure5,
            "f6": self.figure6,
            "f7": self.figure7,
            "f8": self.figure8,
            "f9": self.figure9,
            "f10": self.figure10,
            "f11": self.figure11,
            "f12": self.figure12,
            "f13": self.figure13,
            "f14": self.figure14,
            "f15": self.figure15,
            "f16": self.figure16,
            "s1": self.section521_prefetchers,
            "s2": self.section521_cache_vs_table,
            "s3": self.section3_oracle,
        }

    def run_experiment(self, exp_id: str) -> ExperimentResult:
        try:
            fn = self.registry()[exp_id.lower()]
        except KeyError:
            raise ValueError(f"unknown experiment {exp_id!r}; known: {sorted(self.registry())}") from None
        return fn()

    def run_all(self, ids: Optional[Sequence[str]] = None) -> List[ExperimentResult]:
        reg = self.registry()
        ids = list(ids) if ids else list(reg)
        return [reg[i]() for i in ids]


#: Qualitative reproduction verdicts, stable across scales/seeds (they
#: describe shapes the benchmark suite asserts).  Kept here so regenerating
#: the report preserves the analysis alongside the fresh numbers.
_VERDICTS = [
    ("T1", "reproduced exactly", "all Table 1 parameters are the config defaults"),
    ("T2", "reproduced", "mean |L1 miss - paper| ≈ 0.01; both L2 groups (near-zero vs capacity-bound) correct; "
     "em3d is the L1 outlier in both columns"),
    ("F1", "reproduced", "roughly half of unfiltered prefetches are bad; pointer benchmarks "
     "(perimeter/gcc/gap/mcf ≈ 0.9) pollute far more than streams (ijpeg/fpppp ≈ 0.1-0.3)"),
    ("F2", "shape reproduced, magnitude lower", "prefetch traffic is a visible share of L1 traffic "
     "(mean ≈ 0.17 vs paper 0.41); em3d reaches the paper's band (0.57). Shorter traces + "
     "calibrated miss rates generate fewer triggers than 300M-instruction runs"),
    ("F4", "reproduced", "filters remove the large majority of bad prefetches while losing a "
     "substantial minority of good ones — the paper's central trade-off"),
    ("F5", "reproduced", "bad/good ratio falls steeply under both filters for 9-10 of 10 benchmarks"),
    ("F6", "partially reproduced", "mean IPC improves with PA filtering and em3d gains >50%; the paper's "
     "+8-9% mean is not reached because one benchmark (gzip) diverges — see Known divergences"),
    ("F7", "reproduced (softer)", "bad prefetches fall much harder than good ones at 32KB; good "
     "prefetches are preserved at least as well as at 8KB, as the paper argues"),
    ("F8", "reproduced (softer)", "ratio reduction positive; magnitude below the paper's 75% because the "
     "32KB cache evicts less, giving the filter less feedback at this scale"),
    ("F9", "reproduced", "filters at or above the no-filter baseline for most benchmarks at 32KB"),
    ("F10", "reproduced", "longer tables preserve at least as many good prefetches; several benchmarks "
     "are size-insensitive, as in the paper"),
    ("F11", "reproduced", "filtered bad counts stay far below the unfiltered baseline at every size"),
    ("F12", "reproduced", "IPC saturates at the paper's 4096-entry design point (<5% change beyond)"),
    ("F13", "reproduced", "4→5 ports changes the bad/good ratio less than 3→4 (diminishing returns)"),
    ("F14", "reproduced", "port returns diminish and are taxed by added latency, matching the paper's "
     "conclusion that >4 ports are not worth the area"),
    ("F15", "reproduced", "the 16-entry buffer shifts classification outcomes and does not improve the filters"),
    ("F16", "reproduced", "adding the buffer is not a win on average (paper: -9/-10%)"),
    ("S1", "partially reproduced", "the filter removes the majority of NSP's bad prefetches and helps NSP "
     "more than SDP (the paper's accuracy-vs-filterability relation); SDP's large accuracy advantage "
     "(good/bad 11.7 vs 1.8) is muted at this trace scale — its confirmation gate only keeps it on par"),
    ("S2", "reproduced", "doubling the L1 helps more in absolute IPC, but the 1KB table achieves a "
     "nonnegative gain at 1/8th the storage — the paper's area-efficiency argument"),
    ("S3", "reproduced", "the oracle removes most bad prefetches while keeping a better good/bad "
     "trade-off than any realisable filter"),
]

_DIVERGENCES = """\
## Known divergences

* **gzip under filtering (affects F6/F9 means).**  In our synthetic gzip the
  sequential input stream dominates and NSP hides nearly every memory-level
  miss on it, so unfiltered prefetching *doubles* gzip's IPC; both filters
  then remove enough of those good prefetches to regress it.  Two substrate
  differences drive this: (a) the synthetic trace concentrates the stream in
  a handful of static PCs, so the PC filter's 2-bit entries — which stop
  receiving feedback once they latch reject — absorb into the reject state
  and never recover (in the paper's traces thousands of static instructions
  alias into the 4096-entry table and keep refreshing entries); (b) the
  paper's gzip gains less from prefetching to begin with (it reports the
  lowest prefetch-traffic ratio, 0.29).  Excluding gzip, our mean PA/PC
  speedups land in the paper's direction on every remaining benchmark.
* **Prefetch traffic magnitude (F2).**  Our mean prefetch/normal ratio is
  ~0.17 vs the paper's 0.41 even with degree-2 prefetching; matching the
  paper's Table 2 miss rates on 10^5-instruction traces necessarily
  generates fewer prefetch triggers than 3×10^8-instruction runs whose
  pollution feeds back into more misses.
* **32KB magnitudes (F7/F8).**  Directionally correct; reductions are
  smaller than the paper's because a 32KB L1 on short traces evicts (and
  therefore classifies) far fewer prefetches.
"""


def markdown_report(results: Sequence[ExperimentResult], suite: ExperimentSuite) -> str:
    """Render the EXPERIMENTS.md document from a full run."""
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Reproduction of every table and figure in Zhuang & Lee (ICPP 2003).",
        f"Scale: {suite.n_insts} instructions per run, {suite.warmup} warmup, seed {suite.seed} "
        "(the paper: 300M instructions on SimpleScalar/Alpha).  Absolute numbers",
        "differ at this scale; the asserted reproduction target is the *shape* —",
        "who wins, trend directions, saturation points.  Regenerate with:",
        "",
        "```",
        f"python -m repro.analysis.experiments --insts {suite.n_insts} --seed {suite.seed} --out EXPERIMENTS.md",
        "```",
        "",
        "## Reproduction summary",
        "",
        "| artifact | verdict | evidence |",
        "|---|---|---|",
    ]
    ran = {r.exp_id for r in results}
    for exp_id, verdict, evidence in _VERDICTS:
        if exp_id in ran:
            lines.append(f"| {exp_id} | {verdict} | {evidence} |")
    lines += ["", _DIVERGENCES, ""]
    for r in results:
        lines.append(f"## {r.exp_id} — {r.title}")
        lines.append("")
        lines.append(f"**Paper:** {r.paper_reference}")
        lines.append("")
        if r.summary:
            lines.append("**Measured:** " + ", ".join(f"{k} = {v:.3g}" for k, v in r.summary.items()))
            lines.append("")
        lines.append("```")
        lines.append(r.table.render())
        lines.append("```")
        if r.notes:
            lines.append("")
            lines.append(r.notes)
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="run the paper's experiments")
    parser.add_argument("--insts", type=int, default=150_000)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--out", help="write a markdown report to this file")
    parser.add_argument(
        "--workers", type=int, default=1, help="parallel simulation processes (0 = one per CPU)"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read or write the on-disk result cache"
    )
    args = parser.parse_args(argv)

    workers = args.workers if args.workers > 0 else default_workers()
    cache = None if args.no_cache else ResultCache()
    suite = ExperimentSuite(args.insts, args.warmup, args.seed, workers=workers, cache=cache)
    results = suite.run_all(args.ids)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown_report(results, suite))
        print(f"wrote {args.out}")
    else:
        for r in results:
            print(r.render())
            print("\n" + "=" * 72 + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
