"""Result serialisation: JSON/CSV export of simulation results.

Downstream users (plotting scripts, regression tracking, spreadsheet
comparisons against the paper) need results out of Python objects.  This
module flattens :class:`~repro.core.simulator.SimulationResult` into plain
dictionaries and renders batches as JSON documents or CSV tables with one
row per run.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.core.simulator import SimulationResult
from repro.mem.cache import FillSource

#: Scalar fields exported for every run, in CSV column order.
RESULT_FIELDS = (
    "trace_name",
    "filter_name",
    "instructions",
    "cycles",
    "ipc",
    "l1_miss_rate",
    "l2_miss_rate",
    "prefetch_to_normal_ratio",
    "bad_good_ratio",
    "l1_demand_accesses",
    "l1_demand_misses",
    "l2_demand_accesses",
    "l2_demand_misses",
    "l1_prefetch_fills",
    "prefetch_line_traffic",
    "demand_line_traffic",
)

_TALLY_FIELDS = ("generated", "squashed", "filtered", "dropped", "issued", "good", "bad")


def result_to_dict(result: SimulationResult, include_sources: bool = True) -> Dict[str, object]:
    """Flatten a result into JSON-ready scalars.

    ``include_sources`` adds per-prefetcher tallies under
    ``nsp_good``-style keys (Section 5.2.1's per-source analysis).
    """
    out: Dict[str, object] = {}
    for field in RESULT_FIELDS:
        value = getattr(result, field)
        if isinstance(value, float) and value == float("inf"):
            value = None  # JSON has no infinity
        out[field] = value
    for field in _TALLY_FIELDS:
        out[f"prefetch_{field}"] = getattr(result.prefetch, field)
    if include_sources:
        for source in (FillSource.NSP, FillSource.SDP, FillSource.SOFTWARE, FillSource.STRIDE):
            tally = result.per_source[source]
            prefix = source.name.lower()
            for field in _TALLY_FIELDS:
                out[f"{prefix}_{field}"] = getattr(tally, field)
    return out


def results_to_json(results: Iterable[SimulationResult], indent: int = 2) -> str:
    """A JSON array, one object per run."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_to_csv(results: Sequence[SimulationResult], include_sources: bool = False) -> str:
    """A CSV table, one row per run (stable column order)."""
    if not results:
        return ""
    rows: List[Mapping[str, object]] = [result_to_dict(r, include_sources) for r in results]
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(cell(row[c]) for c in columns))
    return "\n".join(lines)


def counters_to_csv(result: SimulationResult) -> str:
    """Every raw hardware counter of a run (the full stats tree)."""
    return result.stats.to_csv()
