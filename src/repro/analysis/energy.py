"""Event-based energy accounting.

The paper motivates pollution filtering partly by energy: ineffective
prefetches "lead to performance loss and unnecessary energy consumption".
This module puts numbers on that claim with a standard event-energy model
(the CACTI-style approach): every architectural event carries a per-event
energy cost, and a run's energy is the dot product of its event counts
with those costs.

The default cost table uses widely-quoted relative magnitudes for a
~130 nm-era design (the paper's timeframe): an L2 access costs ~10× an L1
access, a DRAM access ~100×.  Absolute joules are not the point — the
*ratios between machines* (filtered vs unfiltered) are, and those are
insensitive to the exact table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.simulator import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs in picojoules (relative magnitudes matter)."""

    l1_access: float = 10.0       # per L1 read/write/fill
    l2_access: float = 100.0      # per L2 access
    memory_access: float = 1000.0  # per DRAM line fetch
    bus_per_line: float = 50.0    # per line moved on the memory bus
    table_lookup: float = 0.5     # per history-table lookup/update
    static_per_cycle: float = 2.0  # leakage + clock per cycle

    def energy_of(self, result: SimulationResult) -> "EnergyBreakdown":
        """Compute a run's energy from its counters."""
        c = result.stats.flat()

        def g(key: str) -> float:
            return c.get(key, 0.0)

        l1_events = (
            result.l1_demand_accesses
            + g("mem.l1.demand_fill")
            + g("mem.l1.prefetch_fill")
        )
        l2_events = (
            g("mem.l2.demand_read_hit")
            + g("mem.l2.demand_read_miss")
            + g("mem.l2.demand_write_hit")
            + g("mem.l2.demand_write_miss")
            + g("mem.l2.demand_fill")
        )
        mem_events = (
            g("mem.mem_bus.lines_demand_fill")
            + g("mem.mem_bus.lines_prefetch_fill")
            + g("mem.mem_bus.lines_writeback")
        )
        bus_lines = mem_events + g("mem.l1_bus.lines_demand_fill") + g(
            "mem.l1_bus.lines_prefetch_fill"
        ) + g("mem.l1_bus.lines_writeback")
        table_events = (
            g("filter.table.lookup_good")
            + g("filter.table.lookup_bad")
            + g("filter.table.train_good")
            + g("filter.table.train_bad")
        )
        return EnergyBreakdown(
            l1=l1_events * self.l1_access,
            l2=l2_events * self.l2_access,
            memory=mem_events * self.memory_access,
            bus=bus_lines * self.bus_per_line,
            filter_table=table_events * self.table_lookup,
            static=result.cycles * self.static_per_cycle,
            instructions=result.instructions,
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component for one run (picojoules)."""

    l1: float
    l2: float
    memory: float
    bus: float
    filter_table: float
    static: float
    instructions: int

    @property
    def dynamic(self) -> float:
        return self.l1 + self.l2 + self.memory + self.bus + self.filter_table

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    @property
    def energy_per_instruction(self) -> float:
        return self.total / self.instructions if self.instructions else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "l1": self.l1,
            "l2": self.l2,
            "memory": self.memory,
            "bus": self.bus,
            "filter_table": self.filter_table,
            "static": self.static,
            "total": self.total,
            "epi": self.energy_per_instruction,
        }


def energy_comparison(
    results: Dict[str, SimulationResult], model: EnergyModel | None = None
) -> Dict[str, EnergyBreakdown]:
    """Energy breakdowns for a set of labelled runs (same workload)."""
    model = model if model is not None else EnergyModel()
    return {label: model.energy_of(r) for label, r in results.items()}
