"""Parallel execution of independent simulation runs.

Every experiment in this repository decomposes into independent
``(workload, config, filter)`` simulations, so the natural speedup lever is
process-level fan-out: :func:`run_jobs` executes a batch of
:class:`SimulationJob` descriptions across a ``ProcessPoolExecutor`` and
returns results in submission order regardless of completion order.

Design points:

* **Determinism** — results are keyed back to their submission index, so
  ``run_jobs(jobs)[i]`` always corresponds to ``jobs[i]`` no matter which
  worker finished first; and every job is itself a pure function of its
  fields (trace synthesis is seeded).
* **Serial fallback** — ``workers<=1``, a single pending job, or a broken
  process pool (e.g. a sandbox that forbids ``fork``) all degrade to plain
  in-process execution with identical results.
* **Cache integration** — with a :class:`~repro.analysis.result_cache
  .ResultCache` attached, cached keys are served without touching a worker
  and fresh results are written back, so a warm cache turns a whole suite
  into pure disk reads.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.result_cache import ResultCache, run_key
from repro.common.config import SimulationConfig
from repro.core.simulator import SimulationResult

_WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class SimulationJob:
    """One independent simulation, fully described by plain data.

    The job (not a live simulator) is what crosses the process boundary:
    workers rebuild the machine from the config, which keeps the pickled
    payload tiny and sidesteps every unpicklable hardware-model handle.
    """

    workload: str
    config: SimulationConfig
    n_insts: int = 100_000
    seed: int = 0
    software_prefetch: bool = True
    engine: str = "pipeline"

    def key(self) -> str:
        """The job's content hash — also its result-cache address."""
        return run_key(
            self.workload,
            self.config,
            self.n_insts,
            self.seed,
            self.software_prefetch,
            self.engine,
        )


def execute_job(job: SimulationJob) -> SimulationResult:
    """Run one job in the current process (the worker entry point).

    Imported lazily to keep this module import-light for the executor's
    child processes and free of an import cycle with the sweep drivers.
    """
    from repro.analysis.sweep import run_workload

    return run_workload(
        job.workload,
        job.config,
        job.n_insts,
        job.seed,
        job.engine,
        job.software_prefetch,
    )


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env override, else the CPU count."""
    env = os.environ.get(_WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _run_serial(
    pending: Sequence[tuple[int, SimulationJob]],
    results: List[Optional[SimulationResult]],
    cache: Optional[ResultCache],
) -> None:
    for index, job in pending:
        result = execute_job(job)
        results[index] = result
        if cache is not None:
            cache.put(job.key(), result)


def run_jobs(
    jobs: Sequence[SimulationJob],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[SimulationResult]:
    """Execute ``jobs``; returns results aligned with the input order.

    ``workers=None`` picks :func:`default_workers`; ``workers<=1`` runs
    serially in-process.  With ``cache`` set, cached jobs are never
    executed and fresh results are persisted.
    """
    if workers is None:
        workers = default_workers()

    results: List[Optional[SimulationResult]] = [None] * len(jobs)
    pending: List[tuple[int, SimulationJob]] = []
    for index, job in enumerate(jobs):
        cached = cache.get(job.key()) if cache is not None else None
        if cached is not None:
            results[index] = cached
        else:
            pending.append((index, job))

    if not pending:
        return results  # type: ignore[return-value]

    if workers <= 1 or len(pending) == 1:
        _run_serial(pending, results, cache)
        return results  # type: ignore[return-value]

    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            future_index: Dict = {
                pool.submit(execute_job, job): index for index, job in pending
            }
            not_done = set(future_index)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_index[future]
                    result = future.result()
                    results[index] = result
                    if cache is not None:
                        cache.put(jobs[index].key(), result)
    except (OSError, RuntimeError):
        # A pool that cannot start or that died mid-flight (missing fork
        # support, resource limits, killed worker): finish the remaining
        # jobs serially — same results, just slower.
        remaining = [(i, job) for i, job in pending if results[i] is None]
        _run_serial(remaining, results, cache)

    return results  # type: ignore[return-value]
