"""Parallel execution of independent simulation runs.

Every experiment in this repository decomposes into independent
``(workload, config, filter)`` simulations, so the natural speedup lever is
process-level fan-out: :func:`run_jobs` executes a batch of
:class:`SimulationJob` descriptions across a ``ProcessPoolExecutor`` and
returns results in submission order regardless of completion order.

Design points:

* **Determinism** — results are keyed back to their submission index, so
  ``run_jobs(jobs)[i]`` always corresponds to ``jobs[i]`` no matter which
  worker finished first; and every job is itself a pure function of its
  fields (trace synthesis is seeded).
* **Serial fallback** — ``workers=1``, a single pending job, a broken
  process pool (e.g. a sandbox that forbids ``fork``), or running *inside*
  a pool worker already (nested fan-out would oversubscribe the machine
  quadratically) all degrade to plain in-process execution with identical
  results.
* **Fault tolerance** — execution is delegated to
  :func:`repro.analysis.resilience.execute_batch`: a worker exception or
  a broken/hung pool fails only the job concerned (retried under a
  :class:`~repro.analysis.resilience.RetryPolicy`), surviving results
  are kept, and with a :class:`~repro.analysis.checkpoint.RunJournal`
  attached a killed batch resumes where it died.  ``run_jobs`` raises
  :class:`~repro.analysis.resilience.JobsFailedError` (carrying the full
  per-job report) only after the rest of the batch has completed and
  been persisted.
* **Bounded fan-out** — worker counts above ``os.cpu_count()`` are
  clamped (extra processes only add memory pressure and context
  switches), and nonpositive requests are rejected loudly rather than
  silently serialised.
* **Cache integration** — with a :class:`~repro.analysis.result_cache
  .ResultCache` attached, cached keys are served without touching a worker
  and fresh results are written back, so a warm cache turns a whole suite
  into pure disk reads.
* **Zero-copy traces** — before fanning out, the parent materialises each
  distinct trace once (through a :class:`~repro.trace.store.TraceStore`
  when given one) and publishes it via POSIX shared memory; workers map
  the columns in place instead of regenerating multi-megabyte traces per
  process.  If shared memory is unavailable the batch still runs —
  workers just synthesise their own traces as before.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.checkpoint import RunJournal
from repro.analysis.resilience import (
    BatchReport,
    JobsFailedError,
    RetryPolicy,
    execute_batch,
)
from repro.analysis.result_cache import ResultCache, run_key
from repro.common.config import SimulationConfig
from repro.core.simulator import SimulationResult
from repro.trace.store import SharedTrace, SharedTraceHandle, TraceStore, attach_trace, share_trace

_WORKERS_ENV = "REPRO_WORKERS"

#: Set in every pool worker's environment; its presence tells a nested
#: ``run_jobs`` call that it is already inside the fan-out and must run
#: serially instead of forking a second pool per worker.
_POOL_WORKER_ENV = "REPRO_POOL_WORKER"


@dataclass(frozen=True)
class SimulationJob:
    """One independent simulation, fully described by plain data.

    The job (not a live simulator) is what crosses the process boundary:
    workers rebuild the machine from the config, which keeps the pickled
    payload tiny and sidesteps every unpicklable hardware-model handle.
    ``engine=None`` defers to ``config.engine`` — the two spellings hash
    to the same cache key, so a sweep can name its engine either way.
    """

    workload: str
    config: SimulationConfig
    n_insts: int = 100_000
    seed: int = 0
    software_prefetch: bool = True
    engine: Optional[str] = None

    @property
    def engine_name(self) -> str:
        return self.engine if self.engine is not None else self.config.engine

    def key(self) -> str:
        """The job's content hash — also its result-cache address."""
        return run_key(
            self.workload,
            self.config,
            self.n_insts,
            self.seed,
            self.software_prefetch,
            self.engine_name,
        )


def job_to_dict(job: SimulationJob) -> Dict:
    """A job as JSON-serialisable plain data (for shared-FS queue files)."""
    return {
        "workload": job.workload,
        "config": job.config.to_dict(),
        "n_insts": job.n_insts,
        "seed": job.seed,
        "software_prefetch": job.software_prefetch,
        "engine": job.engine,
    }


def job_from_dict(data: Dict) -> SimulationJob:
    """Rebuild a :class:`SimulationJob` from :func:`job_to_dict` output.

    The config is revalidated on reconstruction, so a tampered or stale
    queue file fails loudly at claim time instead of inside a run.
    """
    return SimulationJob(
        workload=data["workload"],
        config=SimulationConfig.from_dict(data["config"]),
        n_insts=int(data["n_insts"]),
        seed=int(data["seed"]),
        software_prefetch=bool(data["software_prefetch"]),
        engine=data.get("engine"),
    )


def execute_job(
    job: SimulationJob,
    trace_handle: Optional[SharedTraceHandle] = None,
    trace=None,
) -> SimulationResult:
    """Run one job in the current process (the worker entry point).

    ``trace_handle`` maps a parent-owned shared-memory trace instead of
    regenerating it; ``trace`` passes one in-process.  The import is lazy
    to keep this module light for the executor's child processes and free
    of an import cycle with the sweep drivers.
    """
    from repro.analysis.sweep import run_workload

    if trace is None and trace_handle is not None:
        attachment = attach_trace(trace_handle)
        try:
            return run_workload(
                job.workload,
                job.config,
                job.n_insts,
                job.seed,
                job.engine,
                job.software_prefetch,
                trace=attachment.trace,
            )
        finally:
            attachment.detach()
    return run_workload(
        job.workload,
        job.config,
        job.n_insts,
        job.seed,
        job.engine,
        job.software_prefetch,
        trace=trace,
    )


def _validated(workers: int, source: str) -> int:
    if workers <= 0:
        raise ValueError(
            f"{source} must be a positive worker count (got {workers}); "
            "use workers=1 for serial execution"
        )
    return min(workers, os.cpu_count() or 1)


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env override, else the CPU count.

    The override is clamped to the machine's CPU count; a nonpositive
    value raises (a user asking for 0 or -2 workers is a mistake, not a
    request for serial mode), and a malformed value falls back to the
    CPU count.
    """
    env = os.environ.get(_WORKERS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            value = None
        if value is not None:
            return _validated(value, f"{_WORKERS_ENV}={env}")
    return os.cpu_count() or 1


def _mark_pool_worker() -> None:
    """Pool initializer: brand the worker so nested fan-out stays serial."""
    os.environ[_POOL_WORKER_ENV] = "1"


def _trace_params(job: SimulationJob) -> Tuple[str, int, int, bool]:
    return (job.workload, job.n_insts, job.seed, job.software_prefetch)


def _share_pending_traces(
    pending: Sequence[tuple[int, SimulationJob]],
    trace_store: Optional[TraceStore],
) -> Dict[Tuple[str, int, int, bool], SharedTrace]:
    """Publish each distinct pending trace once via shared memory.

    Best-effort: a platform without (enough) shared memory returns what
    was shared so far and the rest of the batch falls back to per-worker
    synthesis.  Any *unexpected* failure closes the segments shared so
    far before propagating — a raising batch never strands ``/dev/shm``
    segments (an ``atexit`` guard in :mod:`repro.trace.store` backstops
    even that).
    """
    shared: Dict[Tuple[str, int, int, bool], SharedTrace] = {}
    try:
        for _, job in pending:
            params = _trace_params(job)
            if params in shared:
                continue
            try:
                if trace_store is not None:
                    trace = trace_store.get_or_build(*params)
                else:
                    from repro.workloads import cached_trace

                    trace = cached_trace(*params)
                shared[params] = share_trace(trace)
            except OSError:
                break
    except BaseException:
        for entry in shared.values():
            entry.close()
        raise
    return shared


def run_jobs(
    jobs: Sequence[SimulationJob],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace_store: Optional[TraceStore] = None,
    share_traces: bool = True,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    return_report: bool = False,
    backend=None,
    deadline: Optional[float] = None,
) -> List[SimulationResult] | BatchReport:
    """Execute ``jobs``; returns results aligned with the input order.

    ``workers=None`` picks :func:`default_workers`; explicit counts are
    validated and clamped to the CPU count; ``workers=1`` runs serially
    in-process (as does any call made from inside a pool worker).  With
    ``cache`` set, cached jobs are never executed and fresh results are
    persisted.  With ``trace_store`` set, traces come from (and are saved
    to) the on-disk store instead of being synthesised per call; with
    ``share_traces`` (the default), parallel workers additionally map
    each distinct trace from parent-owned shared memory instead of
    building their own copy.

    Failure semantics (see :mod:`repro.analysis.resilience`): each job
    is retried under ``policy`` (default:
    :data:`~repro.analysis.resilience.DEFAULT_POLICY`); jobs already
    recorded in ``journal`` are skipped and fresh completions are
    journaled as they land.  If any job fails permanently, the rest of
    the batch still completes and persists before a
    :class:`~repro.analysis.resilience.JobsFailedError` (carrying the
    per-job :class:`~repro.analysis.resilience.BatchReport`) is raised.
    Pass ``return_report=True`` to receive the report instead — no
    exception, failed jobs appear as ``ok=False`` outcomes.

    ``backend`` selects the execution substrate (see
    :mod:`repro.analysis.backend`): ``None`` defers to the
    ``REPRO_BACKEND`` environment variable and then the default
    in-process pool; a string (``"pool"`` / ``"shared-fs"``) resolves
    through the backend registry; an
    :class:`~repro.analysis.backend.ExecutionBackend` instance is used
    as-is.  Every backend honours the same cache/journal/policy
    semantics — swapping backends never changes results, only where the
    simulations physically run.

    ``deadline`` (seconds) bounds the whole batch: once it expires no
    new job starts; in-flight jobs finish (or hit their own timeout)
    and jobs never started come back as honest ``unclaimed`` outcomes
    that a journaled re-run completes (graceful degradation, not an
    abort).
    """
    if backend is not None or os.environ.get("REPRO_BACKEND"):
        from repro.analysis.backend import resolve_backend

        backend = resolve_backend(backend)
    report = execute_batch(
        jobs,
        workers=workers,
        cache=cache,
        trace_store=trace_store,
        share_traces=share_traces,
        policy=policy,
        journal=journal,
        backend=backend,
        deadline=deadline,
    )
    if return_report:
        return report
    if report.failures:
        raise JobsFailedError(report)
    return [o.result for o in report.outcomes]
