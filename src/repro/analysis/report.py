"""Paper-style text tables.

Every bench prints one of these: benchmarks down the rows (Table 2 order),
scenarios across the columns, a mean row at the bottom — the textual
equivalent of the paper's bar charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.analysis.metrics import arithmetic_mean


@dataclass
class Table:
    """A simple column-aligned text table with an optional mean row."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    mean_row: bool = True
    float_format: str = "{:.3f}"

    def add_row(self, label: str, values: Sequence[object]) -> None:
        if len(values) != len(self.columns) - 1:
            raise ValueError(
                f"row {label!r} has {len(values)} values for {len(self.columns) - 1} data columns"
            )
        self.rows.append([label, *values])

    def _fmt(self, value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if value in (float("inf"), float("-inf")):
                return "inf"
            return self.float_format.format(value)
        return str(value)

    def render(self) -> str:
        body = [[self._fmt(cell) for cell in row] for row in self.rows]
        if self.mean_row and self.rows:
            means: List[str] = ["mean"]
            for c in range(1, len(self.columns)):
                numeric = [row[c] for row in self.rows if isinstance(row[c], (int, float))]
                means.append(self._fmt(arithmetic_mean([float(v) for v in numeric])) if numeric else "-")
            body.append(means)
        widths = [
            max(len(self.columns[c]), *(len(r[c]) for r in body)) if body else len(self.columns[c])
            for c in range(len(self.columns))
        ]
        lines = [self.title, ""]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def render_comparison(
    title: str,
    row_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    float_format: str = "{:.3f}",
) -> str:
    """Render named series (columns) against row labels (benchmarks)."""
    table = Table(title, ["benchmark", *series.keys()], float_format=float_format)
    for i, label in enumerate(row_labels):
        table.add_row(label, [values[i] for values in series.values()])
    return table.render()


def format_metric_map(results: Dict[str, float], unit: str = "") -> str:
    width = max(len(k) for k in results) if results else 0
    return "\n".join(f"{k.ljust(width)}  {v:.4f}{unit}" for k, v in results.items())


def make_series(
    row_keys: Sequence[object],
    results: Dict[object, object],
    extract: Callable[[object], float],
) -> List[float]:
    """Pull one metric out of a result dict in row order."""
    return [extract(results[k]) for k in row_keys]
