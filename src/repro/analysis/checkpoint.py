"""Crash-consistent run journal: checkpoint/resume for sweeps.

A long sweep that dies at job 437 of 450 should not owe the machine 437
re-simulations.  :class:`RunJournal` is an append-only JSONL file, one
line per finished job, keyed by the job's content hash (the same key
the result cache uses).  ``run_jobs``/``execute_batch`` consult it
before running anything and append to it as each job completes, so a
crashed or Ctrl-C'd sweep resumes by replaying the journal and running
only what is missing — ``repro-sim sweep --resume <run-id>``.

Crash-consistency contract:

* **Append-only, one JSON object per line.**  A record is durable once
  its line is written: each append is a single ``write`` followed by
  ``flush`` + ``fsync``, so a crash can at worst leave one torn line at
  the *tail* of the file.
* **Corrupt-tail tolerance.**  :meth:`RunJournal.load` parses line by
  line and discards anything that does not parse or does not look like
  a journal record — a torn tail (or an editor's stray newline) costs
  that one record, never the journal.
* **Last writer wins.**  Replaying keeps the latest record per key, so
  a resumed run that re-executes a previously *failed* job simply
  appends its new outcome; nothing is ever rewritten in place.

Failed jobs are journaled too (``ok=false`` plus the attempt history)
for observability, but only successes count as "done" for resume — a
resume retries every failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.result_cache import (
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.common.faults import fault_point
from repro.core.simulator import SimulationResult

_RECORD_VERSION = 1

#: Per-line integrity field.  Records written before this field existed
#: have no digest and are accepted as legacy; a *wrong* digest is always
#: quarantined.
_DIGEST_KEY = "sha256"


def _record_digest(record: Dict[str, Any]) -> str:
    """Canonical SHA-256 of a journal record, digest field excluded."""
    body = {k: v for k, v in record.items() if k != _DIGEST_KEY}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def seal_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp a record with the version tag and its own integrity digest.

    The journal's per-line format doubles as the shared-FS work queue's
    per-file format (job files, done records): one JSON object carrying
    a ``sha256`` of its own canonical encoding.  Mutates and returns
    ``record`` for call-site convenience.
    """
    record["v"] = _RECORD_VERSION
    record[_DIGEST_KEY] = _record_digest(record)
    return record


def record_intact(record: Dict[str, Any]) -> bool:
    """Whether a sealed record's digest matches its content.

    Records without a digest predate per-record integrity and are
    accepted as legacy, mirroring :meth:`RunJournal.load`.
    """
    stored = record.get(_DIGEST_KEY)
    return stored is None or stored == _record_digest(record)


def runs_dir() -> Path:
    """Where journals live: ``<cache dir>/runs`` (REPRO_CACHE_DIR aware)."""
    return default_cache_dir() / "runs"


def new_run_id() -> str:
    """A fresh, collision-safe run id (printed by the CLI for --resume)."""
    return "run-" + uuid.uuid4().hex[:10]


def journal_path(run_id: str, directory: Optional[os.PathLike | str] = None) -> Path:
    base = Path(directory) if directory is not None else runs_dir()
    return base / f"{run_id}.jsonl"


class RunJournal:
    """Append-only JSONL journal of one run's per-job outcomes."""

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        self.appended = 0
        # Line numbers already quarantined, so repeated ``load()`` calls
        # (resume consults the journal more than once) count each corrupt
        # line exactly once.
        self._quarantined_lines: set[int] = set()

    @property
    def quarantined(self) -> int:
        """Distinct journal lines rejected for a digest mismatch."""
        return len(self._quarantined_lines)

    @classmethod
    def for_run(cls, run_id: str, directory: Optional[os.PathLike | str] = None) -> "RunJournal":
        return cls(journal_path(run_id, directory))

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        seal_record(record)
        spec = fault_point("journal", key=str(record.get("key", "")))
        if spec is not None and spec.kind == "corrupt-artifact":
            # Still valid JSON, still shaped like a record — only the
            # digest check can tell this line has been tampered with.
            record = dict(record, v=_RECORD_VERSION + 1)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self.appended += 1

    def record_success(self, key: str, result: SimulationResult) -> None:
        self._append({"key": key, "ok": True, "result": result_to_dict(result)})

    def record_failure(self, key: str, error: str, attempts: Optional[List[Dict[str, Any]]] = None) -> None:
        self._append({"key": key, "ok": False, "error": error, "attempts": attempts or []})

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """Replay the journal: latest raw record per key, torn tail tolerated.

        Lines carrying a ``sha256`` field are verified against their own
        content and *quarantined* (skipped and counted, exactly once per
        line) on mismatch — resume then re-runs those jobs rather than
        trusting a tampered outcome.  Lines without the field predate
        per-line digests and are accepted as-is.
        """
        records: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.path) as fh:
                for lineno, line in enumerate(fh):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn/corrupt line: skip, keep replaying
                    if not isinstance(record, dict) or "key" not in record or "ok" not in record:
                        continue
                    stored = record.get(_DIGEST_KEY)
                    if stored is not None and stored != _record_digest(record):
                        self._quarantined_lines.add(lineno)
                        continue
                    records[record["key"]] = record
        except FileNotFoundError:
            pass
        except OSError:
            pass
        return records

    def completed(self) -> Dict[str, SimulationResult]:
        """Key -> result for every journaled *success* (what resume skips)."""
        done: Dict[str, SimulationResult] = {}
        for key, record in self.load().items():
            if not record.get("ok"):
                continue
            try:
                done[key] = result_from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                continue  # stale/foreign record shape: treat as not done
        return done

    def failed(self) -> Dict[str, Dict[str, Any]]:
        """Key -> raw record for every key whose *latest* record is a failure."""
        return {k: r for k, r in self.load().items() if not r.get("ok")}

    def domains(self) -> Dict[str, int]:
        """Failure-domain histogram over the journal's *latest* records.

        Counts the kind of each failed record's last attempt (falling
        back to ``"exception"``), so a resume banner can say *what* is
        failing — ``{"timeout": 3, "poisoned": 1}`` reads very
        differently from ``{"worker-death": 4}``.  Successes are
        excluded; an empty dict means nothing is currently failing.
        """
        histogram: Dict[str, int] = {}
        for record in self.failed().values():
            attempts = record.get("attempts") or []
            last = attempts[-1] if attempts else {}
            kind = str(last.get("kind", "exception")) if isinstance(last, dict) else "exception"
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunJournal({str(self.path)!r}, appended={self.appended})"
