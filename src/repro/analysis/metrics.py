"""Derived metrics used across the figures.

The paper reports most results as *normalised* quantities (Figure 4
normalises everything to the no-filter good-prefetch count; Figures 10/11
normalise to the 4096-entry table) and as *reduction percentages* ("97% of
bad prefetches are eliminated").  These helpers pin those definitions down
once so every bench computes them identically.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def reduction_percent(baseline: float, value: float) -> float:
    """Percentage of ``baseline`` removed: 100 * (baseline - value) / baseline.

    Zero baseline (nothing to reduce) reports 0 by convention, so averaging
    across benchmarks with no prefetches of some class stays meaningful.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - value) / baseline


def percent_change(baseline: float, value: float) -> float:
    """Signed percentage change (IPC improvements: positive = faster)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (value - baseline) / baseline


def normalised(values: Sequence[float], reference: float) -> list[float]:
    """Scale a series by a reference value (figures' normalised bars)."""
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def arithmetic_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if not math.isinf(v) and not math.isnan(v)]
    return sum(vals) / len(vals) if vals else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geomean over positive finite values (standard for speedup summaries)."""
    vals = [v for v in values if v > 0 and not math.isinf(v)]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def safe_ratio(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return float("inf") if numerator else 0.0
    return numerator / denominator
