"""Experiment drivers: single runs, filter comparisons, parameter sweeps.

Everything an experiment needs above :class:`~repro.core.simulator
.Simulator`: trace acquisition, two-pass protocols (oracle / static
filter), and the three sweeps the paper's Sections 5.3–5.5 perform.
All drivers are deterministic given (workload, n_insts, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.config import FilterKind, SimulationConfig
from repro.core.simulator import SimulationResult, Simulator
from repro.filters.oracle import OracleFilter, OracleProfileBuilder
from repro.filters.static_filter import ProfilingObserver, StaticFilter
from repro.trace.stream import Trace
from repro.workloads import cached_trace


@dataclass(frozen=True)
class FilterSetup:
    """A named filter scenario within a comparison (one bar group)."""

    label: str
    kind: FilterKind
    config: Optional[SimulationConfig] = None


def _trace_for(workload: str, n_insts: int, seed: int, software_prefetch: bool = True) -> Trace:
    return cached_trace(workload, n_insts, seed, software_prefetch)


def run_workload(
    workload: str,
    config: SimulationConfig,
    n_insts: int = 100_000,
    seed: int = 0,
    engine: str = "pipeline",
    software_prefetch: bool = True,
) -> SimulationResult:
    """One run of one benchmark under one configuration.

    Dispatches to the two-pass protocols automatically when the config asks
    for the ORACLE or STATIC filter.
    """
    trace = _trace_for(workload, n_insts, seed, software_prefetch)
    kind = config.filter.kind
    if kind is FilterKind.ORACLE:
        return run_oracle(trace, config, engine)
    if kind is FilterKind.STATIC:
        return run_static(trace, config, engine)
    return Simulator(config, engine=engine).run(trace)


def run_oracle(trace: Trace, config: SimulationConfig, engine: str = "pipeline") -> SimulationResult:
    """Two-pass oracle: profile with no filtering, replay dropping bad ones."""
    profiler = OracleProfileBuilder()
    Simulator(config, filter_=profiler, engine=engine).run(trace)
    oracle = OracleFilter(profiler.profile)
    return Simulator(config, filter_=oracle, engine=engine).run(trace)


def run_static(trace: Trace, config: SimulationConfig, engine: str = "pipeline") -> SimulationResult:
    """Two-pass static filter: offline profile, then PC-set filtering."""
    observer = ProfilingObserver()
    Simulator(config, filter_=observer, engine=engine).run(trace)
    static = StaticFilter(observer.profile, config.filter.static_bad_fraction)
    return Simulator(config, filter_=static, engine=engine).run(trace)


def compare_filters(
    workload: str,
    base_config: SimulationConfig,
    kinds: Sequence[FilterKind] = (FilterKind.NONE, FilterKind.PA, FilterKind.PC),
    n_insts: int = 100_000,
    seed: int = 0,
    engine: str = "pipeline",
) -> Dict[FilterKind, SimulationResult]:
    """The paper's core comparison: the same machine under several filters."""
    out: Dict[FilterKind, SimulationResult] = {}
    for kind in kinds:
        cfg = base_config.with_filter(kind=kind)
        out[kind] = run_workload(workload, cfg, n_insts, seed, engine)
    return out


def sweep_history_sizes(
    workload: str,
    base_config: SimulationConfig,
    entries: Sequence[int] = (1024, 2048, 4096, 8192, 16384),
    n_insts: int = 100_000,
    seed: int = 0,
    engine: str = "pipeline",
) -> Dict[int, SimulationResult]:
    """Section 5.3: history-table size sensitivity (PA filter by default)."""
    out: Dict[int, SimulationResult] = {}
    for size in entries:
        cfg = base_config.with_filter(table_entries=size)
        out[size] = run_workload(workload, cfg, n_insts, seed, engine)
    return out


def sweep_l1_ports(
    workload: str,
    ports: Sequence[int] = (3, 4, 5),
    filter_kind: FilterKind = FilterKind.PA,
    n_insts: int = 100_000,
    seed: int = 0,
    engine: str = "pipeline",
) -> Dict[int, SimulationResult]:
    """Section 5.4: L1 port-count sensitivity (latency rises with ports)."""
    out: Dict[int, SimulationResult] = {}
    for p in ports:
        cfg = SimulationConfig.paper_ports(p, filter_kind)
        out[p] = run_workload(workload, cfg, n_insts, seed, engine)
    return out


def run_all_workloads(
    workloads: Sequence[str],
    config: SimulationConfig,
    n_insts: int = 100_000,
    seed: int = 0,
    engine: str = "pipeline",
) -> List[SimulationResult]:
    return [run_workload(w, config, n_insts, seed, engine) for w in workloads]
