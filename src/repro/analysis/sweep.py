"""Experiment drivers: single runs, filter comparisons, parameter sweeps.

Everything an experiment needs above :class:`~repro.core.simulator
.Simulator`: trace acquisition, two-pass protocols (oracle / static
filter), and the three sweeps the paper's Sections 5.3–5.5 perform.
All drivers are deterministic given (workload, n_insts, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.checkpoint import RunJournal
from repro.analysis.parallel import SimulationJob, run_jobs
from repro.analysis.resilience import RetryPolicy
from repro.analysis.result_cache import ResultCache
from repro.common.config import FilterKind, SimulationConfig
from repro.core.simulator import SimulationResult, Simulator
from repro.filters.oracle import OracleFilter, OracleProfileBuilder
from repro.filters.static_filter import ProfilingObserver, StaticFilter
from repro.trace.stream import Trace
from repro.workloads import cached_trace


@dataclass(frozen=True)
class FilterSetup:
    """A named filter scenario within a comparison (one bar group)."""

    label: str
    kind: FilterKind
    config: Optional[SimulationConfig] = None


def _trace_for(workload: str, n_insts: int, seed: int, software_prefetch: bool = True) -> Trace:
    return cached_trace(workload, n_insts, seed, software_prefetch)


def run_workload(
    workload: str,
    config: SimulationConfig,
    n_insts: int = 100_000,
    seed: int = 0,
    engine: Optional[str] = None,
    software_prefetch: bool = True,
    trace: Optional[Trace] = None,
) -> SimulationResult:
    """One run of one benchmark under one configuration.

    Dispatches to the two-pass protocols automatically when the config asks
    for the ORACLE or STATIC filter.  ``engine=None`` defers to
    ``config.engine``; a pre-built ``trace`` (e.g. from a
    :class:`~repro.trace.store.TraceStore` or a shared-memory mapping)
    skips trace synthesis entirely.
    """
    if trace is None:
        trace = _trace_for(workload, n_insts, seed, software_prefetch)
    kind = config.filter.kind
    if kind is FilterKind.ORACLE:
        return run_oracle(trace, config, engine)
    if kind is FilterKind.STATIC:
        return run_static(trace, config, engine)
    return Simulator(config, engine=engine).run(trace)


def run_oracle(trace: Trace, config: SimulationConfig, engine: Optional[str] = None) -> SimulationResult:
    """Two-pass oracle: profile with no filtering, replay dropping bad ones."""
    profiler = OracleProfileBuilder()
    Simulator(config, filter_=profiler, engine=engine).run(trace)
    oracle = OracleFilter(profiler.profile)
    return Simulator(config, filter_=oracle, engine=engine).run(trace)


def run_static(trace: Trace, config: SimulationConfig, engine: Optional[str] = None) -> SimulationResult:
    """Two-pass static filter: offline profile, then PC-set filtering."""
    observer = ProfilingObserver()
    Simulator(config, filter_=observer, engine=engine).run(trace)
    static = StaticFilter(observer.profile, config.filter.static_bad_fraction)
    return Simulator(config, filter_=static, engine=engine).run(trace)


def compare_filters(
    workload: str,
    base_config: SimulationConfig,
    kinds: Sequence[FilterKind] = (FilterKind.NONE, FilterKind.PA, FilterKind.PC),
    n_insts: int = 100_000,
    seed: int = 0,
    engine: Optional[str] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    backend=None,
) -> Dict[FilterKind, SimulationResult]:
    """The paper's core comparison: the same machine under several filters."""
    jobs = [
        SimulationJob(workload, base_config.with_filter(kind=kind), n_insts, seed, True, engine)
        for kind in kinds
    ]
    results = run_jobs(
        jobs, workers=workers, cache=cache, policy=policy, journal=journal, backend=backend
    )
    return dict(zip(kinds, results))


def sweep_history_sizes(
    workload: str,
    base_config: SimulationConfig,
    entries: Sequence[int] = (1024, 2048, 4096, 8192, 16384),
    n_insts: int = 100_000,
    seed: int = 0,
    engine: Optional[str] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    backend=None,
    deadline: Optional[float] = None,
) -> Dict[int, SimulationResult]:
    """Section 5.3: history-table size sensitivity (PA filter by default)."""
    jobs = [
        SimulationJob(workload, base_config.with_filter(table_entries=size), n_insts, seed, True, engine)
        for size in entries
    ]
    results = run_jobs(
        jobs, workers=workers, cache=cache, policy=policy, journal=journal,
        backend=backend, deadline=deadline,
    )
    return dict(zip(entries, results))


def sweep_l1_ports(
    workload: str,
    ports: Sequence[int] = (3, 4, 5),
    filter_kind: FilterKind = FilterKind.PA,
    n_insts: int = 100_000,
    seed: int = 0,
    engine: Optional[str] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    backend=None,
    deadline: Optional[float] = None,
) -> Dict[int, SimulationResult]:
    """Section 5.4: L1 port-count sensitivity (latency rises with ports)."""
    jobs = [
        SimulationJob(workload, SimulationConfig.paper_ports(p, filter_kind), n_insts, seed, True, engine)
        for p in ports
    ]
    results = run_jobs(
        jobs, workers=workers, cache=cache, policy=policy, journal=journal,
        backend=backend, deadline=deadline,
    )
    return dict(zip(ports, results))


def run_all_workloads(
    workloads: Sequence[str],
    config: SimulationConfig,
    n_insts: int = 100_000,
    seed: int = 0,
    engine: Optional[str] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    backend=None,
) -> List[SimulationResult]:
    jobs = [SimulationJob(w, config, n_insts, seed, True, engine) for w in workloads]
    return run_jobs(
        jobs, workers=workers, cache=cache, policy=policy, journal=journal, backend=backend
    )
