"""Fleet supervision for shared-filesystem queue workers.

PR 7's ``repro-sim worker`` processes are deliberately disposable: the
queue's steal path guarantees *correctness* when one dies, but nothing
guarantees *throughput* — a fleet of fire-and-forget workers decays
monotonically, and an unattended overnight sweep can end with one
survivor grinding through a million-point grid alone.  The
:class:`FleetSupervisor` is the missing process: it spawns ``N``
workers over an existing :class:`~repro.analysis.workqueue.FileQueue`,
watches their exit codes, and keeps the fleet at strength.

What the supervisor does with each exit code:

* **0 with work remaining** — the worker saw a momentarily-empty queue
  (every job leased elsewhere) or hit its own deadline; respawn after
  the base backoff.
* **75** (:data:`WORKER_EXIT_PRESSURE`) — the worker drained-and-exited
  cleanly under disk/memory pressure.  Respawn after the base backoff
  without escalating: pressure is about the host, not the worker, and
  the next incarnation's guard re-checks it.
* **anything else** — a crash (the ``worker-death`` chaos exit uses
  70).  Respawn with *capped exponential backoff* on consecutive
  crashes, so a hard-failing host is retried politely instead of
  fork-bombed.

Each slot has a restart budget (``max_restarts``); a slot that spends
it is retired with a report entry, and a fleet whose every slot is
retired stops the supervisor (``stopped = "fleet-exhausted"``) rather
than spinning forever.

**Poison jobs** are the supervisor's second job.  A job that kills
every executor climbs the lease-generation ladder (see the workqueue
module docstring); worker-side stealing already quarantines such
leases, but workers that keep dying may never live long enough to
observe staleness.  The supervisor is long-lived by construction, so
every monitor tick runs :meth:`FileQueue.poison_sweep`, which
quarantines any stale lease whose next generation would exceed the
threshold — without ever executing the job itself (the supervisor
claims nothing, which is what makes it immune).

Worker incarnations are named ``s<slot>r<respawn>-<hex>`` — unique per
incarnation (heartbeat counters must never be reused across a death)
and greppable by chaos plans: ``match=s1r0`` targets slot 1's first
incarnation exactly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Dict, List, Optional, Tuple

from repro.analysis.exitcodes import EXIT_OK, EXIT_PRESSURE, describe
from repro.analysis.workqueue import FileQueue

#: ``repro-sim worker`` exit code for a clean drain-and-exit under
#: resource pressure (mirrors BSD's ``EX_TEMPFAIL``: try again later).
#: Kept as a module-level alias of the registry constant so existing
#: importers keep working; RL008 resolves the alias to the registry.
WORKER_EXIT_PRESSURE = EXIT_PRESSURE

#: Respawns allowed per slot before it is retired.
DEFAULT_MAX_RESTARTS = 10


def spawn_worker(
    queue: FileQueue,
    name: str,
    batch: int = 8,
    poll: float = 0.1,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
    deadline_s: Optional[float] = None,
    trace_store_dir: Optional[os.PathLike | str] = None,
    extra_env: Optional[Dict[str, str]] = None,
    broker: Optional[str] = None,
    logs_dir: Optional[os.PathLike | str] = None,
) -> Tuple[subprocess.Popen, IO]:
    """Launch one ``repro-sim worker`` subprocess against ``queue``.

    Shared by the supervisor and the queue-backed backends so every
    spawned worker gets the same environment (PYTHONPATH threading,
    log file under the queue's ``logs/``, queue-derived lease TTL and
    poison threshold).  With ``broker`` set (``HOST:PORT``), the worker
    drains over TCP instead of the shared filesystem — ``queue`` then
    only supplies defaults (TTL, threshold, log dir), which a
    :class:`~repro.analysis.netqueue.NetQueue` mirrors from the
    broker's own queue.  ``logs_dir`` overrides where the worker log
    lands (TCP workers have no shared queue directory to log into).
    Raises ``OSError`` when the host cannot spawn.
    """
    cmd = [sys.executable, "-m", "repro.cli", "worker"]
    if broker is not None:
        cmd += ["--broker", str(broker)]
    else:
        cmd += ["--queue-dir", str(queue.root)]
    cmd += [
        "--name", name,
        "--lease-ttl", str(queue.lease_ttl),
        "--batch", str(batch),
        "--poll", str(poll),
    ]
    if queue.poison_threshold is not None:
        cmd += ["--poison-threshold", str(queue.poison_threshold)]
    if retries is not None:
        cmd += ["--retries", str(retries)]
    if timeout is not None:
        cmd += ["--timeout", str(timeout)]
    if deadline_s is not None:
        cmd += ["--deadline", str(max(0.0, deadline_s))]
    if trace_store_dir is not None:
        cmd += ["--trace-store", str(trace_store_dir)]
    env = dict(os.environ)
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    if extra_env:
        env.update(extra_env)
    log_root = Path(logs_dir) if logs_dir is not None else queue.logs_dir
    log_root.mkdir(parents=True, exist_ok=True)
    log = open(log_root / f"{name}.log", "w")
    try:
        proc = subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT, env=env)
    except OSError:
        log.close()
        raise
    return proc, log


@dataclass
class _Slot:
    """One position in the fleet and the incarnation currently filling it."""

    index: int
    name: str = ""
    proc: Optional[subprocess.Popen] = None
    log: Optional[IO] = None
    spawns: int = 0
    crash_restarts: int = 0
    pressure_restarts: int = 0
    consecutive_crashes: int = 0
    retired: bool = False
    next_spawn_at: Optional[float] = None
    exit_codes: List[int] = field(default_factory=list)

    @property
    def restarts(self) -> int:
        return max(0, self.spawns - 1)


@dataclass
class SupervisorReport:
    """What one supervised drain did: fleet telemetry plus the verdict."""

    workers: int
    stopped: str = ""  # "drained" | "deadline" | "fleet-exhausted"
    drained: bool = False
    deadline_hit: bool = False
    restarts: int = 0
    crash_restarts: int = 0
    pressure_restarts: int = 0
    retired_slots: int = 0
    poisoned: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    slot_exit_codes: List[List[int]] = field(default_factory=list)
    events: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict:
        from dataclasses import asdict

        return asdict(self)


class FleetSupervisor:
    """Spawn, monitor, and restart a fleet of queue workers.

    The supervisor never claims or executes jobs — it watches
    subprocesses and the queue's directories, which is exactly what
    keeps it alive through poison jobs and lets its staleness
    observations mature (see the module docstring).  ``run()`` blocks
    until the queue drains, the ``deadline`` (seconds) expires, or
    every slot has spent its restart budget.
    """

    def __init__(
        self,
        queue: FileQueue,
        workers: int = 2,
        batch: int = 8,
        poll: float = 0.1,
        worker_poll: float = 0.1,
        retries: Optional[int] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        backoff_base: float = 0.25,
        backoff_factor: float = 2.0,
        backoff_max: float = 10.0,
        shutdown_grace: float = 30.0,
        trace_store_dir: Optional[os.PathLike | str] = None,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"a fleet needs at least one worker (got {workers})")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0 (got {max_restarts})")
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds (got {deadline})")
        self.queue = queue
        self.workers = workers
        self.batch = batch
        self.poll = poll
        self.worker_poll = worker_poll
        self.retries = retries
        self.timeout = timeout
        self.deadline = deadline
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.shutdown_grace = shutdown_grace
        self.trace_store_dir = trace_store_dir
        self.extra_env = extra_env
        #: The live slots while ``run()`` is executing (for tests and
        #: tooling that needs to reach a worker process mid-drain).
        self.slots: List[_Slot] = []

    # ------------------------------------------------------------------
    def _spawn(self, slot: _Slot, report: SupervisorReport,
               deadline_at: Optional[float]) -> None:
        slot.name = f"s{slot.index}r{slot.spawns}-{uuid.uuid4().hex[:4]}"
        deadline_s = None
        if deadline_at is not None:
            deadline_s = max(0.0, deadline_at - time.monotonic())
        try:
            slot.proc, slot.log = spawn_worker(
                self.queue,
                slot.name,
                batch=self.batch,
                poll=self.worker_poll,
                retries=self.retries,
                timeout=self.timeout,
                deadline_s=deadline_s,
                trace_store_dir=self.trace_store_dir,
                extra_env=self.extra_env,
            )
        except OSError as exc:
            slot.retired = True
            report.events.append(f"slot {slot.index}: spawn failed ({exc!r}); retired")
            return
        slot.spawns += 1
        slot.next_spawn_at = None

    def _close_log(self, slot: _Slot) -> None:
        if slot.log is not None:
            try:
                slot.log.close()
            except OSError:
                pass
            slot.log = None

    def _on_exit(self, slot: _Slot, code: int, report: SupervisorReport,
                 now: float, deadline_at: Optional[float]) -> None:
        """Decide a dead incarnation's slot fate: respawn (when?) or retire."""
        slot.proc = None
        self._close_log(slot)
        slot.exit_codes.append(code)
        jobs_left, leases_left = self.queue.outstanding()
        if code == 0 and jobs_left == 0 and leases_left == 0:
            slot.retired = True  # normal end-of-queue exit
            return
        if deadline_at is not None and now >= deadline_at:
            slot.retired = True  # no point respawning into an expired sweep
            return
        if slot.restarts >= self.max_restarts:
            slot.retired = True
            report.retired_slots += 1
            report.events.append(
                f"slot {slot.index}: restart budget ({self.max_restarts}) spent "
                f"(exit codes {slot.exit_codes}); retired"
            )
            return
        if code == WORKER_EXIT_PRESSURE:
            slot.consecutive_crashes = 0
            report.pressure_restarts += 1
            backoff = self.backoff_base
            reason = "pressure exit"
        elif code == EXIT_OK:
            slot.consecutive_crashes = 0
            backoff = self.backoff_base
            reason = "clean exit with work remaining"
        else:
            slot.consecutive_crashes += 1
            report.crash_restarts += 1
            backoff = min(
                self.backoff_max,
                self.backoff_base
                * self.backoff_factor ** (slot.consecutive_crashes - 1),
            )
            reason = f"crash (exit {code}: {describe(code)})"
        report.restarts += 1
        slot.next_spawn_at = now + backoff
        report.events.append(
            f"slot {slot.index}: {slot.name} {reason}; respawn in {backoff:.2f}s"
        )

    def _tend(self, report: SupervisorReport, deadline_at: Optional[float]) -> None:
        now = time.monotonic()
        for slot in self.slots:
            if slot.retired:
                continue
            if slot.proc is None:
                if slot.next_spawn_at is not None and now >= slot.next_spawn_at:
                    self._spawn(slot, report, deadline_at)
                continue
            code = slot.proc.poll()
            if code is not None:
                self._on_exit(slot, code, report, now, deadline_at)

    def _shutdown(self, report: SupervisorReport) -> None:
        """Reap every live incarnation: grace period, then escalate."""
        deadline = time.monotonic() + self.shutdown_grace
        for slot in self.slots:
            if slot.proc is None:
                self._close_log(slot)
                continue
            try:
                slot.proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                slot.proc.terminate()
                try:
                    slot.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    slot.proc.kill()
                    slot.proc.wait()
                report.events.append(f"slot {slot.index}: {slot.name} terminated at shutdown")
            if slot.proc.returncode is not None:
                slot.exit_codes.append(slot.proc.returncode)
            slot.proc = None
            self._close_log(slot)

    # ------------------------------------------------------------------
    def run(self) -> SupervisorReport:
        report = SupervisorReport(workers=self.workers)
        started = time.monotonic()
        deadline_at = started + self.deadline if self.deadline is not None else None
        self.slots = [_Slot(index=i) for i in range(self.workers)]
        poisoned_seen = self.queue.counts().get("poisoned", 0)
        try:
            for slot in self.slots:
                self._spawn(slot, report, deadline_at)
            while True:
                self.queue.poison_sweep()
                # Attribute every new quarantine record, whether this
                # sweep produced it or a worker's steal() did.
                poisoned_now = self.queue.counts().get("poisoned", 0)
                if poisoned_now > poisoned_seen:
                    report.events.append(
                        f"quarantined {poisoned_now - poisoned_seen} poison job(s)"
                    )
                    poisoned_seen = poisoned_now
                jobs_left, leases_left = self.queue.outstanding()
                if jobs_left == 0 and leases_left == 0:
                    report.drained = True
                    report.stopped = "drained"
                    break
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    report.deadline_hit = True
                    report.stopped = "deadline"
                    break
                self._tend(report, deadline_at)
                if all(slot.retired for slot in self.slots):
                    report.stopped = "fleet-exhausted"
                    break
                time.sleep(self.poll)
        finally:
            self._shutdown(report)
        report.elapsed_s = time.monotonic() - started
        report.counts = self.queue.counts()
        report.poisoned = report.counts.get("poisoned", 0)
        if report.poisoned > poisoned_seen:
            report.events.append(
                f"quarantined {report.poisoned - poisoned_seen} poison job(s)"
            )
        report.slot_exit_codes = [slot.exit_codes for slot in self.slots]
        return report
