"""Benchmark regression gate: compare a fresh bench report to a baseline.

``repro-sim bench --baseline BENCH_x.json`` reruns a bench and asks one
question: *did throughput regress?*  This module answers it uniformly
for every report shape the bench command emits:

* engine-axis reports (``bench --engines ...``) — per-engine
  ``summary.<engine>.geomean_speedup``;
* sweep-backend reports (``bench --sweep``) — per-drain
  ``jobs_per_sec``;
* pool reports (plain ``bench``) — serial/parallel
  ``insts_per_sec``.

Each shared higher-is-better metric becomes a current/baseline ratio;
the verdict is the **geometric mean** of those ratios (one noisy metric
cannot sink — or rescue — the gate on its own), failing when the
geomean falls more than ``max_regress`` below parity.  Metrics present
on only one side are listed as uncomparable, never silently dropped:
a baseline from a different bench mode should fail loudly as
"0 comparable metrics", not pass vacuously — comparing zero metrics is
an error, not a success.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List


def extract_metrics(report: Dict) -> Dict[str, float]:
    """Higher-is-better throughput metrics from any bench report shape."""
    out: Dict[str, float] = {}
    summary = report.get("summary")
    if isinstance(summary, dict):
        for engine, block in summary.items():
            value = block.get("geomean_speedup") if isinstance(block, dict) else None
            if isinstance(value, (int, float)) and value > 0:
                out[f"geomean_speedup[{engine}]"] = float(value)
    for drain in report.get("drains", []) or []:
        label = drain.get("label")
        value = drain.get("jobs_per_sec")
        if label and isinstance(value, (int, float)) and value > 0:
            out[f"jobs_per_sec[{label}]"] = float(value)
    for key in ("serial_insts_per_sec", "parallel_insts_per_sec"):
        value = report.get(key)
        if isinstance(value, (int, float)) and value > 0:
            out[key] = float(value)
    return out


@dataclass
class MetricDelta:
    """One metric's current-vs-baseline ratio (>1 means faster now)."""

    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline

    def render(self) -> str:
        change = (self.ratio - 1.0) * 100.0
        return (
            f"{self.metric:40s} {self.baseline:>12.3f} -> {self.current:>12.3f}  "
            f"({change:+.1f}%)"
        )


@dataclass
class RegressionReport:
    """The gate's verdict plus everything needed to explain it."""

    deltas: List[MetricDelta]
    max_regress: float
    uncomparable: List[str] = field(default_factory=list)

    @property
    def geomean_ratio(self) -> float:
        if not self.deltas:
            return 0.0
        return math.exp(sum(math.log(d.ratio) for d in self.deltas) / len(self.deltas))

    @property
    def ok(self) -> bool:
        return bool(self.deltas) and self.geomean_ratio >= 1.0 - self.max_regress

    def render(self) -> str:
        lines = [
            f"{'metric':40s} {'baseline':>12s}    {'current':>12s}",
        ]
        lines += [d.render() for d in sorted(self.deltas, key=lambda d: d.metric)]
        for name in self.uncomparable:
            lines.append(f"{name:40s} (present on one side only; not compared)")
        if not self.deltas:
            lines.append(
                "no comparable metrics: the baseline was produced by a "
                "different bench mode"
            )
        else:
            change = (self.geomean_ratio - 1.0) * 100.0
            lines.append(
                f"geomean throughput ratio: {self.geomean_ratio:.3f} ({change:+.1f}%), "
                f"allowed slowdown: {self.max_regress * 100:.0f}%"
            )
        lines.append("regression gate: " + ("ok" if self.ok else "FAIL"))
        return "\n".join(lines)


def compare_reports(current: Dict, baseline: Dict, max_regress: float = 0.25) -> RegressionReport:
    """Compare two bench reports metric-by-metric (see module docstring)."""
    if not 0.0 <= max_regress < 1.0:
        raise ValueError(f"max_regress must be in [0, 1) (got {max_regress})")
    ours = extract_metrics(current)
    theirs = extract_metrics(baseline)
    shared = sorted(set(ours) & set(theirs))
    deltas = [MetricDelta(name, theirs[name], ours[name]) for name in shared]
    uncomparable = sorted((set(ours) | set(theirs)) - set(shared))
    return RegressionReport(deltas=deltas, max_regress=max_regress, uncomparable=uncomparable)


def load_baseline(path: Path | str) -> Dict:
    """Read a baseline bench report; malformed files fail with context."""
    path = Path(path)
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline report {path}: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError(f"baseline report {path} is not a JSON object")
    return data
