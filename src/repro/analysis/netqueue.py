"""TCP transport for the work queue: a broker front and a NetQueue client.

The shared-filesystem queue (:mod:`repro.analysis.workqueue`) gave
distributed sweeps durability, work stealing, and poison quarantine —
but only across hosts that share a directory.  This module carries the
*same queue protocol* over TCP so workers with no filesystem in common
can drain one sweep:

* :class:`Broker` (``repro-sim broker --queue-dir DIR --listen H:P``)
  is a deliberately thin network front: every request is translated
  into a :class:`~repro.analysis.workqueue.FileQueue` call against the
  broker's queue directory, so sealed-job durability, lease
  generations, clock-skew-immune heartbeats, stealing, and poison
  quarantine are **inherited, not reimplemented**.  Kill the broker
  with the sweep half done, restart it on the same ``--queue-dir``,
  and the queue state is exactly what the filesystem says it is.
* :class:`NetQueue` is the client half: the same
  claim/heartbeat/complete/steal/poison surface as ``FileQueue``, so
  :func:`repro.analysis.worker.drain_queue` drains a broker without
  knowing it left the machine.

Wire protocol: length-prefixed JSON frames — a 4-byte big-endian
length followed by one JSON object (``{"op": ..., ...}`` requests,
``{"ok": ...}`` responses), one request/response pair at a time per
connection.  Frames above :data:`_MAX_FRAME` are rejected; a short
read is a connection error, never a partial record.

Robustness rules (the reason this module exists):

* **Every client call retries** with capped exponential backoff and
  seeded jitter (a :class:`~repro.analysis.resilience.RetryPolicy`)
  plus a per-call socket timeout, so resets, stalls, and partitions
  inside the budget are absorbed, and past the budget surface as
  :class:`BrokerUnreachable` — which workers turn into the
  backoff-friendly pressure exit, not a crash.
* **Every mutating op is idempotent**, keyed by job content hash +
  lease generation: ``submit`` skips known keys, a replayed ``claim``
  is answered by *redelivering the caller's own live leases* (a lost
  response strands no work), ``complete`` is an atomic last-writer-
  wins replace of the ``done/`` record, so reconnect-and-replay after
  a reset or partial write always converges bit-identically.
* **Application errors never retry**: a response with ``ok: false``
  raises :class:`BrokerError` immediately — retrying a rejected
  request is how duplicate side effects are born.

Fault injection (the ``network`` site, chaos-tested from both ends):
``conn-reset`` drops the connection mid-call, ``stall`` freezes a peer
for ``seconds``, ``partial-write`` truncates a frame mid-send, and
``partition`` (broker side) resets every connection for ``seconds``
before healing.  Site keys are ``client|<op>`` and ``broker|<op>`` so
plans can target one direction and one operation.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.checkpoint import record_intact
from repro.analysis.parallel import SimulationJob, job_from_dict, job_to_dict
from repro.analysis.resilience import RetryPolicy, job_token
from repro.analysis.workqueue import _BEAT_FRACTION, Claim, FileQueue
from repro.common.faults import fault_point

BROKER_ENV = "REPRO_BROKER"
NET_RETRIES_ENV = "REPRO_NET_RETRIES"
NET_TIMEOUT_ENV = "REPRO_NET_TIMEOUT"

#: Per-call socket timeout (seconds) unless overridden.
DEFAULT_CALL_TIMEOUT = 10.0

#: Default client retry budget: ~6 attempts over a few seconds of
#: capped backoff — long enough to ride out a short partition, short
#: enough that a genuinely dead broker turns into a worker exit before
#: the supervisor's patience runs out.
NET_RETRY = RetryPolicy(
    max_attempts=6, backoff_base=0.1, backoff_factor=2.0, backoff_max=2.0, jitter=0.25
)

#: Ops whose replay after a connection error mutates broker state (the
#: replays are idempotent; the counter exists so transport health can
#: report how often idempotency was actually leaned on).
_MUTATING = frozenset({"submit", "complete", "release", "write-stats"})

#: The idempotency manifest: every op the client may execute under the
#: retry wrapper in :meth:`NetQueue._call`.  An op is listed only after
#: its replay-after-partial-effect story has been audited (submit keys
#: by job key, complete/release check the lease generation, write-stats
#: last-writer-wins; the rest are reads).  Lint rule RL010 enforces the
#: manifest in both directions: a ``_call`` on an undeclared op fails
#: the build, and a declared op no actual call site uses is flagged as
#: stale.  Application errors (``ok: false``) are *never* retried —
#: they raise :class:`BrokerError` before the loop can come around.
IDEMPOTENT_OPS = frozenset(
    {
        "hello",
        "submit",
        "heartbeat",
        "claim",
        "steal",
        "complete",
        "release",
        "outstanding",
        "counts",
        "is-done",
        "collect-done",
        "collect-quarantined",
        "poison-sweep",
        "write-stats",
        "read-stats",
    }
)

_LENGTH = struct.Struct(">I")

#: Frame cap: far above any real batch (a 10^5-job submit ships in
#: chunks anyway), low enough that a corrupt length prefix cannot make
#: a reader allocate the address space.
_MAX_FRAME = 64 * 1024 * 1024

#: Jobs per submit frame; bounds frame size on huge sweeps.
_SUBMIT_CHUNK = 2000


class BrokerUnreachable(ConnectionError):
    """The broker could not be reached within the client's retry budget."""


class BrokerError(RuntimeError):
    """The broker answered with an application error (never retried)."""


def parse_broker_spec(
    text: Optional[str], what: str = "--broker", allow_port_zero: bool = False
) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` with errors that name the flag and the fix."""
    spec = (text or "").strip()
    if not spec:
        raise ValueError(f"{what} must be HOST:PORT, e.g. 127.0.0.1:7077 (got an empty value)")
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host.strip("[]"):
        raise ValueError(
            f"{what} must be HOST:PORT, e.g. 127.0.0.1:7077 (got {spec!r})"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"{what} port must be an integer, e.g. 127.0.0.1:7077 "
            f"(got {port_text!r} in {spec!r})"
        ) from None
    low = 0 if allow_port_zero else 1
    if not low <= port <= 65535:
        raise ValueError(f"{what} port must be in [{low}, 65535] (got {port})")
    return host.strip("[]"), port


def net_retry_from_env() -> RetryPolicy:
    """The client retry policy, with ``REPRO_NET_RETRIES`` honoured."""
    raw = os.environ.get(NET_RETRIES_ENV)
    if not raw:
        return NET_RETRY
    try:
        attempts = int(raw)
    except ValueError:
        raise ValueError(f"{NET_RETRIES_ENV}={raw!r} is not a valid int") from None
    return RetryPolicy(
        max_attempts=max(1, attempts),
        backoff_base=NET_RETRY.backoff_base,
        backoff_factor=NET_RETRY.backoff_factor,
        backoff_max=NET_RETRY.backoff_max,
        jitter=NET_RETRY.jitter,
    )


def net_timeout_from_env() -> float:
    raw = os.environ.get(NET_TIMEOUT_ENV)
    if not raw:
        return DEFAULT_CALL_TIMEOUT
    try:
        timeout = float(raw)
    except ValueError:
        raise ValueError(f"{NET_TIMEOUT_ENV}={raw!r} is not a valid float") from None
    if timeout <= 0:
        raise ValueError(f"{NET_TIMEOUT_ENV} must be positive (got {timeout})")
    return timeout


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _encode_frame(payload: Dict) -> bytes:
    blob = json.dumps(payload, separators=(",", ":")).encode()
    if len(blob) > _MAX_FRAME:
        raise ValueError(f"frame of {len(blob)} bytes exceeds the {_MAX_FRAME}-byte cap")
    return _LENGTH.pack(len(blob)) + blob


def _send_frame(sock: socket.socket, payload: Dict) -> None:
    sock.sendall(_encode_frame(payload))


def _send_truncated(sock: socket.socket, payload: Dict) -> None:
    """Send half a frame — the ``partial-write`` fault's weapon."""
    frame = _encode_frame(payload)
    sock.sendall(frame[: max(1, len(frame) // 2)])


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError(f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf.extend(chunk)
    return bytes(buf)


def _recv_frame(sock: socket.socket) -> Dict:
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > _MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds the {_MAX_FRAME}-byte cap")
    data = json.loads(_recv_exact(sock, length).decode())
    if not isinstance(data, dict):
        raise ValueError("frame payload is not a JSON object")
    return data


def _encode_claim(claim: Claim) -> Dict:
    return {
        "key": claim.key,
        "token": claim.token,
        "generation": claim.generation,
        "stolen": claim.stolen,
        "lease": claim.path.name,
        "job": job_to_dict(claim.job),
    }


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class NetQueue:
    """The queue protocol spoken to a broker instead of a directory.

    Implements the :class:`~repro.analysis.workqueue.FileQueue` surface
    that :func:`~repro.analysis.worker.drain_queue` and the execution
    backends use — ``submit``/``claim``/``steal``/``heartbeat``/
    ``complete``/``release``/``collect_new``/``collect_quarantined``/
    ``poison_sweep``/``counts``/``outstanding``/``write_stats``/
    ``read_stats`` — so a worker drains a broker with the same code
    path it drains a local directory.

    One persistent connection, re-established on demand; a single lock
    serialises frames because the drain loop and its heartbeat thread
    share the instance.  Transport health lands in ``reconnects``
    (connections established after the first), ``retried_calls``
    (attempts after the first, any op) and ``replayed_ops`` (retried
    attempts of mutating ops — each one a live test of idempotency).

    The instance is picklable by design (lint rule RL002): the socket
    and lock are shed on ``__getstate__`` and lazily rebuilt, the same
    contract the result cache's sqlite handle follows.
    """

    def __init__(
        self,
        host: str,
        port: int,
        retry: Optional[RetryPolicy] = None,
        call_timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.retry = retry or net_retry_from_env()
        self.call_timeout = call_timeout if call_timeout is not None else net_timeout_from_env()
        if self.call_timeout <= 0:
            raise ValueError(f"call_timeout must be positive (got {self.call_timeout})")
        #: Updated from the broker's ``hello`` — the heartbeat cadence
        #: and staleness judgements belong to the broker's queue.
        self.lease_ttl = 30.0
        self.poison_threshold: Optional[int] = None
        self.broker_restarts = 0
        #: Where the broker's queue lives (informational: the directory
        #: is on the *broker's* host).
        self.queue_dir: Optional[str] = None
        #: Pressure guards and spawned-worker logs need a local anchor;
        #: the broker's directory is not reachable from here.
        self.root = Path(tempfile.gettempdir())
        self.quarantine_dir = self.root / "repro-net-quarantine"
        self.logs_dir = self.root / "repro-net-logs"
        #: Done/quarantine records rejected client-side for a digest
        #: mismatch (the network is one more way bytes can rot).
        self.quarantined = 0
        #: Poison jobs quarantined via this client's ``poison_sweep``.
        self.poisoned = 0
        self.reconnects = 0
        self.retried_calls = 0
        self.replayed_ops = 0
        self._sock: Optional[socket.socket] = None
        self._io_lock = threading.Lock()
        self._ever_connected = False
        self._beats = 0
        self._last_beat = 0.0

    # -- pickling: shed the live handles (RL002 pool-safety contract) --
    def __getstate__(self) -> Dict:
        state = dict(self.__dict__)
        state["_sock"] = None
        state.pop("_io_lock", None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._sock = None
        self._io_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.create_connection((self.host, self.port), timeout=self.call_timeout)
        sock.settimeout(self.call_timeout)
        self._sock = sock
        if self._ever_connected:
            self.reconnects += 1
        self._ever_connected = True
        return sock

    def _roundtrip(self, op: str, payload: Dict, attempt: int) -> Dict:
        sock = self._connect()
        spec = fault_point("network", key=f"client|{op}", attempt=attempt)
        if spec is not None:
            if spec.kind in ("conn-reset", "partition"):
                self._drop_connection()
                raise ConnectionResetError(f"injected conn-reset on client|{op}")
            if spec.kind == "stall":
                time.sleep(spec.seconds)
            elif spec.kind == "partial-write":
                _send_truncated(sock, {"op": op, **payload})
                self._drop_connection()
                raise ConnectionResetError(f"injected partial-write on client|{op}")
        _send_frame(sock, {"op": op, **payload})
        return _recv_frame(sock)

    def _call(self, op: str, payload: Optional[Dict] = None) -> Dict:
        """One op with the full retry envelope; raises past the budget."""
        payload = payload or {}
        last_error: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.retried_calls += 1
                if op in _MUTATING:
                    self.replayed_ops += 1
                time.sleep(self.retry.delay(attempt, f"net|{op}"))
            try:
                with self._io_lock:
                    response = self._roundtrip(op, payload, attempt)
            except (OSError, ValueError) as exc:  # resets, timeouts, torn frames
                last_error = exc
                with self._io_lock:
                    self._drop_connection()
                continue
            if not response.get("ok", False):
                raise BrokerError(f"{op}: {response.get('error', 'unknown broker error')}")
            return response
        raise BrokerUnreachable(
            f"broker {self.host}:{self.port} unreachable after "
            f"{self.retry.max_attempts} attempt(s) of {op!r}: {last_error!r}"
        )

    def close(self) -> None:
        with self._io_lock:
            self._drop_connection()

    # ------------------------------------------------------------------
    # Queue surface
    # ------------------------------------------------------------------
    def hello(self) -> Dict:
        """Handshake: verifies reachability, adopts the broker's queue
        parameters (lease TTL drives the client heartbeat cadence)."""
        response = self._call("hello")
        self.lease_ttl = float(response.get("lease_ttl", self.lease_ttl))
        threshold = response.get("poison_threshold")
        self.poison_threshold = int(threshold) if threshold is not None else None
        self.broker_restarts = int(response.get("broker_restarts", 0))
        self.queue_dir = response.get("queue_dir")
        return response

    def submit(self, jobs: Sequence[SimulationJob]) -> int:
        added = 0
        for start in range(0, len(jobs), _SUBMIT_CHUNK):
            chunk = jobs[start : start + _SUBMIT_CHUNK]
            response = self._call(
                "submit",
                {"jobs": [
                    {"key": job.key(), "token": job_token(job), "job": job_to_dict(job)}
                    for job in chunk
                ]},
            )
            added += int(response.get("added", 0))
        return added

    def heartbeat(self, worker: str, force: bool = False) -> bool:
        """Publish a beat through the broker (rate-limited locally).

        Mirrors :meth:`FileQueue.heartbeat` including the
        ``stale-lease`` drop fault, so existing chaos plans starve a
        TCP worker's heartbeat exactly like a shared-FS worker's.
        Transport failures propagate as :class:`BrokerUnreachable`:
        the heartbeat thread counts them toward its crashed flag, and
        the drain loop stops claiming on a dead heartbeat.
        """
        now = time.monotonic()
        if not force and now - self._last_beat < self.lease_ttl * _BEAT_FRACTION:
            return False
        spec = fault_point("stale-lease", key=worker, attempt=self._beats)
        if spec is not None and spec.kind == "drop":
            return False
        self._beats += 1
        self._last_beat = now
        response = self._call("heartbeat", {"worker": worker})
        return bool(response.get("beat", False))

    def _decode_claims(self, items: Iterable[Dict]) -> List[Claim]:
        claims = []
        for item in items:
            try:
                job = job_from_dict(item["job"])
                claims.append(Claim(
                    key=str(item["key"]),
                    job=job,
                    token=str(item.get("token") or job_token(job)),
                    path=Path(str(item["lease"])),
                    generation=int(item["generation"]),
                    stolen=bool(item.get("stolen", False)),
                ))
            except (KeyError, TypeError, ValueError):
                self.quarantined += 1
        return claims

    def claim(self, worker: str, limit: int = 1) -> List[Claim]:
        response = self._call("claim", {"worker": worker, "limit": int(limit)})
        return self._decode_claims(response.get("claims") or [])

    def steal(self, worker: str, limit: int = 1) -> List[Claim]:
        response = self._call("steal", {"worker": worker, "limit": int(limit)})
        return self._decode_claims(response.get("claims") or [])

    def complete(self, claim: Claim, record: Dict) -> None:
        self._call("complete", {
            "key": claim.key,
            "generation": claim.generation,
            "lease": claim.path.name,
            "token": claim.token,
            "record": record,
        })

    def release(self, claim: Claim) -> None:
        try:
            self._call("release", {
                "key": claim.key,
                "generation": claim.generation,
                "lease": claim.path.name,
            })
        except (BrokerUnreachable, BrokerError):
            pass  # best-effort, like FileQueue.release swallowing OSError

    def outstanding(self) -> Tuple[int, int]:
        response = self._call("outstanding")
        jobs, leases = response.get("outstanding", (0, 0))
        return int(jobs), int(leases)

    def counts(self) -> Dict[str, int]:
        counts = dict(self._call("counts").get("counts") or {})
        # Read-side quarantines are per-observer, exactly like FileQueue
        # instance counters: add what *this* client rejected.
        counts["quarantined"] = int(counts.get("quarantined", 0)) + self.quarantined
        return counts

    def is_done(self, key: str) -> bool:
        return bool(self._call("is-done", {"key": key}).get("done", False))

    def collect_new(self, seen: Set[str]) -> Iterable[Tuple[str, Dict]]:
        response = self._call("collect-done", {"seen": sorted(seen)})
        for item in response.get("records") or []:
            try:
                key, record = str(item[0]), dict(item[1])
            except (TypeError, ValueError, IndexError):
                self.quarantined += 1
                continue
            if not record_intact(record):
                # The seal travelled the wire with the record; a client
                # never trusts bytes the network had a chance to rot.
                self.quarantined += 1
                continue
            seen.add(key)
            yield key, record

    def collect_quarantined(self) -> Dict[str, Dict]:
        response = self._call("collect-quarantined")
        out = {}
        for key, record in (response.get("records") or {}).items():
            record = dict(record)
            if not record_intact(record):
                self.quarantined += 1
                continue
            out[str(key)] = record
        return out

    def poison_sweep(self) -> int:
        swept = int(self._call("poison-sweep").get("swept", 0))
        self.poisoned += swept
        return swept

    def write_stats(self, worker: str, stats: Dict) -> None:
        try:
            self._call("write-stats", {"worker": worker, "stats": stats})
        except (BrokerUnreachable, BrokerError):
            pass  # stats are telemetry; losing them must not fail a drain

    def read_stats(self) -> List[Dict]:
        return [dict(s) for s in self._call("read-stats").get("stats") or []]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetQueue({self.host}:{self.port}, reconnects={self.reconnects}, "
            f"retried={self.retried_calls})"
        )


# ----------------------------------------------------------------------
# Broker
# ----------------------------------------------------------------------
class Broker:
    """The network front of one queue directory.

    Deliberately thin: every op is one :class:`FileQueue` call under a
    single dispatch lock (the queue is multi-*process* safe already;
    the lock protects the single instance's observation state from the
    per-connection threads).  All durable state lives in the queue
    directory, which is what makes the broker crash-recoverable: a
    restarted broker on the same ``--queue-dir`` resumes exactly where
    the filesystem says the sweep is, and ``broker/state.json`` counts
    the restarts for the transport-health report.

    Not picklable, on purpose — a broker is a process's listening
    socket, not a value (and lint rule RL002 would rightly object to
    one crossing a pool boundary).
    """

    def __init__(self, queue: FileQueue, host: str = "127.0.0.1", port: int = 0) -> None:
        self.queue = queue
        self.host = host
        self.port = int(port)
        self._lock = threading.Lock()
        self._halt = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._requests = 0
        self._partition_until = 0.0
        self.restarts = self._record_start()

    def __reduce__(self):
        raise TypeError("a Broker holds a listening socket and cannot be pickled")

    def _record_start(self) -> int:
        """Persist the start count; restarts = starts - 1 survives crashes."""
        state_dir = self.queue.root / "broker"
        state_dir.mkdir(parents=True, exist_ok=True)
        path = state_dir / "state.json"
        try:
            with open(path) as fh:
                starts = int(json.load(fh).get("starts", 0))
        except (OSError, ValueError, json.JSONDecodeError):
            starts = 0
        starts += 1
        from repro.analysis.workqueue import _atomic_write_json

        try:
            _atomic_write_json(path, {"starts": starts})
        except OSError:
            pass
        return starts - 1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind and listen (port 0 picks a free port; ``self.port`` updates)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener

    def serve_forever(self) -> None:
        if self._listener is None:
            self.start()
        assert self._listener is not None
        while not self._halt.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us (stop())
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True,
                name=f"repro-broker-conn-{len(self._threads)}",
            )
            self._threads.append(thread)
            thread.start()

    def serve_in_thread(self) -> threading.Thread:
        """Start + serve on a daemon thread (tests and embedded use)."""
        if self._listener is None:
            self.start()
        thread = threading.Thread(target=self.serve_forever, daemon=True,
                                  name="repro-broker-accept")
        thread.start()
        return thread

    def stop(self) -> None:
        self._halt.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = []

    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.5)
        try:
            while not self._halt.is_set():
                try:
                    request = _recv_frame(conn)
                except socket.timeout:
                    continue  # idle connection; re-check the halt flag
                with self._lock:
                    self._requests += 1
                    count = self._requests
                op = str(request.get("op", ""))
                spec = fault_point("network", key=f"broker|{op}", attempt=count)
                if spec is not None:
                    if spec.kind == "partition":
                        # The whole broker goes dark: every connection is
                        # reset on sight until the window heals.
                        self._partition_until = max(
                            self._partition_until, time.monotonic() + spec.seconds
                        )
                        return
                    if spec.kind == "conn-reset":
                        return  # close without replying
                    if spec.kind == "stall":
                        time.sleep(spec.seconds)
                if time.monotonic() < self._partition_until:
                    return
                try:
                    with self._lock:
                        response = self._dispatch(op, request)
                except Exception as exc:  # noqa: BLE001 - per-request isolation
                    response = {"ok": False, "error": repr(exc)}
                if spec is not None and spec.kind == "partial-write":
                    _send_truncated(conn, response)
                    return
                _send_frame(conn, response)
        except (OSError, ValueError, ConnectionError):
            pass  # client went away or spoke garbage; the connection dies
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _lease_path(self, name: str) -> Path:
        """A lease filename from the wire, confined to the leases dir."""
        if not name or name != Path(name).name or name.startswith("."):
            raise ValueError(f"invalid lease name {name!r}")
        return self.queue.leases_dir / name

    def _claim_from_wire(self, request: Dict) -> Claim:
        return Claim(
            key=str(request["key"]),
            job=None,  # type: ignore[arg-type] - complete/release never touch it
            token=str(request.get("token", "")),
            path=self._lease_path(str(request["lease"])),
            generation=int(request["generation"]),
        )

    def _redeliver(self, worker: str, limit: int) -> List[Dict]:
        """The caller's own live leases, re-encoded.

        A claim or steal whose *response* was lost left the work leased
        to a worker that never heard about it; without redelivery the
        worker's own heartbeats would keep those leases fresh forever —
        unstealable, unrun.  Answering a (re)claim with the caller's
        existing leases first makes claim replay idempotent.
        """
        items: List[Dict] = []
        for key, generation, owner, path in self.queue.leases():
            if len(items) >= limit:
                break
            if owner != worker:
                continue
            if self.queue.is_done(key):
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                continue
            claim = self.queue._open_claim(path, key, generation=generation,
                                           stolen=generation > 0)
            if claim is not None:
                items.append(_encode_claim(claim))
        return items

    def _dispatch(self, op: str, request: Dict) -> Dict:
        queue = self.queue
        if op == "hello":
            return {
                "ok": True,
                "protocol": 1,
                "lease_ttl": queue.lease_ttl,
                "poison_threshold": queue.poison_threshold,
                "broker_restarts": self.restarts,
                "queue_dir": str(queue.root),
            }
        if op == "submit":
            jobs = []
            for item in request.get("jobs") or []:
                jobs.append(job_from_dict(item["job"]))
            return {"ok": True, "added": queue.submit(jobs)}
        if op == "heartbeat":
            beat = queue.heartbeat(str(request.get("worker", "")), force=True)
            return {"ok": True, "beat": beat}
        if op == "claim":
            worker = str(request.get("worker", ""))
            limit = max(0, int(request.get("limit", 1)))
            items = self._redeliver(worker, limit)
            if len(items) < limit:
                items += [_encode_claim(c)
                          for c in queue.claim(worker, limit=limit - len(items))]
            return {"ok": True, "claims": items}
        if op == "steal":
            worker = str(request.get("worker", ""))
            limit = max(0, int(request.get("limit", 1)))
            return {"ok": True,
                    "claims": [_encode_claim(c) for c in queue.steal(worker, limit=limit)]}
        if op == "complete":
            queue.complete(self._claim_from_wire(request), dict(request.get("record") or {}))
            return {"ok": True}
        if op == "release":
            queue.release(self._claim_from_wire(request))
            return {"ok": True}
        if op == "outstanding":
            return {"ok": True, "outstanding": list(queue.outstanding())}
        if op == "counts":
            return {"ok": True, "counts": queue.counts()}
        if op == "is-done":
            return {"ok": True, "done": queue.is_done(str(request.get("key", "")))}
        if op == "collect-done":
            seen = set(str(k) for k in request.get("seen") or [])
            records = [[key, record] for key, record in queue.collect_new(seen)]
            return {"ok": True, "records": records}
        if op == "collect-quarantined":
            return {"ok": True, "records": queue.collect_quarantined()}
        if op == "poison-sweep":
            return {"ok": True, "swept": queue.poison_sweep()}
        if op == "write-stats":
            queue.write_stats(str(request.get("worker", "")), dict(request.get("stats") or {}))
            return {"ok": True}
        if op == "read-stats":
            return {"ok": True, "stats": queue.read_stats()}
        return {"ok": False, "error": f"unknown op {op!r} (protocol mismatch?)"}
