"""Fault-tolerant batch execution: retries, timeouts, graceful degradation.

:func:`execute_batch` is the engine underneath
:func:`repro.analysis.parallel.run_jobs`.  Where the original fan-out
treated the batch as one transaction — any worker exception aborted
everything and discarded every completed result — this engine treats
each job as its own unit of failure:

* **Per-job isolation** — a worker exception fails (at most) that job;
  every other result is kept, cached, and journaled.  The batch returns
  a :class:`BatchReport` of per-job :class:`JobOutcome` records instead
  of raising mid-flight.
* **Retries with exponential backoff + jitter** — a
  :class:`RetryPolicy` gives each job ``max_attempts`` tries; the
  delay between tries grows geometrically and is jittered by a
  *seeded hash* (reproducible, no RNG state crossing processes).
* **Per-job wall-clock timeouts** — a hung worker is detected by
  deadline, the pool's processes are killed, a fresh pool takes over,
  and the hung job is retried (or failed) under the same policy.
  In-flight innocents are resubmitted without charging them an attempt.
  Serial execution enforces the same deadline with ``SIGALRM`` where
  available (main thread, Unix).
* **Graceful degradation** — pool → fresh pool → serial: a pool that
  cannot start runs the batch serially; a pool that keeps breaking
  (more than ``max_pool_restarts`` replacements) finishes serially.
  Every such event is recorded in ``BatchReport.degradations``.
* **Crash consistency** — with a
  :class:`~repro.analysis.checkpoint.RunJournal` attached, every
  completed job is journaled (fsync'd) the moment it finishes, and
  journaled successes are never re-run — a killed batch resumes where
  it died.

A worker that dies *hard* (``os._exit``, segfault, OOM-kill) breaks a
``ProcessPoolExecutor`` for every in-flight future at once, and the
executor cannot say which job was responsible.  The engine charges each
in-flight job one ``pool-broken`` attempt (bounded collateral: at most
``workers`` jobs are in flight), replaces the pool, and *quarantines*
the chargees: a suspect is retried with nothing else in flight, so a
repeat breakage (or hang) implicates only the poison job — innocents
are never charged a second collateral attempt.

Fault-injection points (:mod:`repro.common.faults`) are threaded
through the worker entry so the chaos suite can prove every path above
end-to-end; the plan is shipped to workers as an argument, not just an
inherited environment variable, so it survives any pool start method.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.checkpoint import RunJournal
from repro.common.faults import (
    FaultInjector,
    ambient_fault_args,
    fault_point,
    hash_unit,
)
from repro.core.simulator import SimulationResult

#: Poll granularity of the scheduler loop (seconds).  Small enough that
#: a timeout or backoff expiry is noticed promptly, large enough that an
#: idle wait costs nothing measurable next to a simulation.
_TICK = 0.05


class JobTimeout(Exception):
    """A job exceeded its per-job wall-clock deadline."""


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a job failed.

    ``delay(attempt)`` grows as ``backoff_base * backoff_factor**(n-1)``
    capped at ``backoff_max``, plus up to ``jitter`` of itself decided
    by a seeded hash of (seed, job token, attempt) — deterministic for
    a given policy, decorrelated across jobs.
    """

    max_attempts: int = 2
    timeout: Optional[float] = None  # per-job wall-clock seconds; None = never
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25  # fraction of the base delay
    seed: int = 0
    max_pool_restarts: int = 2  # fresh pools before degrading to serial

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {self.max_attempts})")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None (got {self.timeout})")

    def delay(self, attempt: int, token: str = "") -> float:
        """Seconds to wait before 0-based attempt number ``attempt``."""
        if attempt <= 0:
            return 0.0
        base = min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))
        return base * (1.0 + self.jitter * hash_unit(self.seed, "backoff", token, attempt))


#: The default when callers pass ``policy=None``: one retry, no timeout.
DEFAULT_POLICY = RetryPolicy()

#: Strict single-shot policy (the pre-resilience semantics, minus the
#: batch abort): no retries, no timeouts.
NO_RETRY = RetryPolicy(max_attempts=1)


# ----------------------------------------------------------------------
# Outcome records
# ----------------------------------------------------------------------
@dataclass
class JobAttempt:
    """One try of one job and how it ended."""

    attempt: int  # 0-based
    kind: str  # "exception" | "timeout" | "pool-broken"
    error: str
    elapsed: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "kind": self.kind,
            "error": self.error,
            "elapsed": round(self.elapsed, 4),
        }


@dataclass
class JobOutcome:
    """The final word on one job: its result or its failure history."""

    index: int
    key: str
    ok: bool = False
    result: Optional[SimulationResult] = None
    attempts: List[JobAttempt] = field(default_factory=list)
    from_cache: bool = False
    from_journal: bool = False
    #: The job was declared poison and moved into queue quarantine — it
    #: kept killing its executors, so nothing will run it again until
    #: it is resubmitted (a resume after the underlying fault is fixed).
    quarantined: bool = False
    #: The job was never claimed before a sweep deadline expired: no
    #: attempts, nothing journaled, so a resume runs it from scratch.
    unclaimed: bool = False

    @property
    def error(self) -> Optional[str]:
        return self.attempts[-1].error if self.attempts else None

    @property
    def executed(self) -> bool:
        """Whether any attempt actually ran (vs. cache/journal hits)."""
        return self.ok and not (self.from_cache or self.from_journal) or bool(self.attempts)


@dataclass
class BatchReport:
    """Everything :func:`execute_batch` learned about a batch."""

    outcomes: List[JobOutcome]
    degradations: List[str] = field(default_factory=list)
    #: Whether a sweep deadline expired before the batch finished.
    deadline_hit: bool = False
    #: Transport health from network-backed executions (empty for local
    #: backends): reconnects, retried_calls, replayed_ops,
    #: broker_restarts — filled in by the ``tcp`` backend.
    transport: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def results(self) -> List[Optional[SimulationResult]]:
        """Results aligned with the input jobs; ``None`` where a job failed."""
        return [o.result for o in self.outcomes]

    def partial_results(self) -> Dict[str, Any]:
        """An honest accounting of where every job ended up.

        ``completed``/``failed``/``quarantined``/``unclaimed`` partition
        the batch; ``by_domain`` attributes each non-completed job to
        its failure domain (the kind of its final attempt — ``timeout``,
        ``exception``, ``pool-broken`` — or the synthetic domains
        ``poisoned``/``unclaimed``).  This is what ``sweep --deadline``
        prints instead of pretending a cut-short sweep finished.
        """
        completed = failed = quarantined = unclaimed = 0
        by_domain: Dict[str, int] = {}
        for o in self.outcomes:
            if o.ok:
                completed += 1
                continue
            if o.quarantined:
                quarantined += 1
                domain = "poisoned"
            elif o.unclaimed:
                unclaimed += 1
                domain = "unclaimed"
            else:
                failed += 1
                domain = o.attempts[-1].kind if o.attempts else "exception"
            by_domain[domain] = by_domain.get(domain, 0) + 1
        return {
            "total": len(self.outcomes),
            "completed": completed,
            "failed": failed,
            "quarantined": quarantined,
            "unclaimed": unclaimed,
            "by_domain": by_domain,
            "deadline_hit": self.deadline_hit,
        }


class JobsFailedError(RuntimeError):
    """Raised by ``run_jobs`` when jobs failed permanently.

    Carries the full :class:`BatchReport` — the surviving results were
    already cached/journaled before this was raised, so nothing is lost.
    """

    def __init__(self, report: BatchReport) -> None:
        failures = report.failures

        def _describe(o: JobOutcome) -> str:
            if o.quarantined:
                return f"job[{o.index}] quarantined as a poison job"
            if o.unclaimed:
                return f"job[{o.index}] left unclaimed at the deadline"
            return f"job[{o.index}] after {len(o.attempts)} attempt(s): {o.error}"

        preview = "; ".join(_describe(o) for o in failures[:3])
        if len(failures) > 3:
            preview += f"; ... and {len(failures) - 3} more"
        partial = report.partial_results()
        extras = "".join(
            f", {partial[k]} {k}" for k in ("quarantined", "unclaimed") if partial[k]
        )
        super().__init__(
            f"{len(failures)} of {len(report.outcomes)} jobs failed permanently"
            f"{extras} ({preview})"
        )
        self.report = report


def job_token(job) -> str:
    """A human-greppable job identity used for fault matching and jitter."""
    return (
        f"{job.workload}|engine={job.engine_name}|seed={job.seed}"
        f"|n={job.n_insts}|swpf={job.software_prefetch}|"
    )


# ----------------------------------------------------------------------
# Worker entry
# ----------------------------------------------------------------------
def _worker_run(job, handle, attempt: int, fault_args: Optional[Tuple[str, int]]):
    """What a pool worker actually runs: fault point, then the job.

    ``fault_args`` carries the (text, seed) fault plan explicitly so
    injection works under every pool start method; with no plan this
    falls through to the ambient environment (normally empty).
    """
    from repro.analysis import parallel as _parallel

    injector = FaultInjector.from_text(*fault_args) if fault_args else None
    fault_point("worker", key=job_token(job), attempt=attempt, injector=injector)
    return _parallel.execute_job(job, trace_handle=handle)


@contextmanager
def _serial_deadline(seconds: Optional[float]) -> Iterator[bool]:
    """Enforce a wall-clock deadline on in-process execution via SIGALRM.

    Yields whether the deadline is actually armed — only on Unix, in the
    main thread; elsewhere the job simply runs unbounded (callers record
    a degradation the first time that happens).
    """
    if (
        not seconds
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield False
        return

    def _expire(signum, frame):
        raise JobTimeout()

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class _Batch:
    """Mutable state of one execute_batch call (shared by both phases)."""

    def __init__(self, jobs, policy, cache, trace_store, journal, report,
                 deadline_at: Optional[float] = None):
        self.jobs = jobs
        self.policy = policy
        self.cache = cache
        self.trace_store = trace_store
        self.journal = journal
        self.report = report
        #: Absolute ``time.monotonic()`` sweep deadline, or ``None``.
        self.deadline_at = deadline_at

    def outcome(self, index: int) -> JobOutcome:
        return self.report.outcomes[index]

    def past_deadline(self) -> bool:
        if self.deadline_at is None:
            return False
        if time.monotonic() < self.deadline_at:
            return False
        self.report.deadline_hit = True
        return True

    def mark_unclaimed(self, index: int) -> None:
        """A job the deadline cut off before it was ever claimed.

        Deliberately *not* journaled: with no attempts there is nothing
        to record, and an absent journal entry is exactly what makes a
        later ``--resume`` run the job from scratch.
        """
        o = self.outcome(index)
        o.ok = False
        o.unclaimed = True

    def complete(self, index: int, result: SimulationResult) -> None:
        o = self.outcome(index)
        o.ok, o.result = True, result
        if self.cache is not None:
            self.cache.put(o.key, result)
        if self.journal is not None:
            self.journal.record_success(o.key, result)

    def record_failure(self, index: int, kind: str, error: str, elapsed: float) -> JobAttempt:
        o = self.outcome(index)
        attempt = JobAttempt(len(o.attempts), kind, error, elapsed)
        o.attempts.append(attempt)
        return attempt

    def give_up(self, index: int) -> None:
        o = self.outcome(index)
        o.ok = False
        if self.journal is not None:
            self.journal.record_failure(
                o.key, o.error or "failed", [a.to_dict() for a in o.attempts]
            )

    def attempts_left(self, index: int) -> bool:
        return len(self.outcome(index).attempts) < self.policy.max_attempts

    def degrade(self, event: str) -> None:
        self.report.degradations.append(event)


def _run_one_serial(batch: _Batch, index: int) -> None:
    """Serial attempt loop for one job: retries, backoff, optional deadline."""
    from repro.analysis import parallel as _parallel

    job = batch.jobs[index]
    token = job_token(job)
    policy = batch.policy
    warned_unenforceable = False
    while True:
        attempt = len(batch.outcome(index).attempts)
        if attempt:
            time.sleep(policy.delay(attempt, token))
        started = time.monotonic()
        try:
            trace = None
            if batch.trace_store is not None:
                trace = batch.trace_store.get_or_build(
                    job.workload, job.n_insts, job.seed, job.software_prefetch
                )
            with _serial_deadline(policy.timeout) as armed:
                if policy.timeout and not armed and not warned_unenforceable:
                    warned_unenforceable = True
                    batch.degrade(
                        f"serial: per-job timeout not enforceable for {token} on this platform"
                    )
                fault_point("worker", key=token, attempt=attempt)
                if trace is not None:
                    result = _parallel.execute_job(job, trace=trace)
                else:
                    result = _parallel.execute_job(job)
        except JobTimeout:
            batch.record_failure(
                index, "timeout", f"exceeded {policy.timeout}s (serial)", time.monotonic() - started
            )
        except Exception as exc:  # noqa: BLE001 - per-job isolation is the point
            batch.record_failure(index, "exception", repr(exc), time.monotonic() - started)
        else:
            batch.complete(index, result)
            return
        if not batch.attempts_left(index):
            batch.give_up(index)
            return


def _serial_phase(batch: _Batch, pending: Sequence[int]) -> None:
    cut_off = 0
    for index in pending:
        if batch.past_deadline():
            batch.mark_unclaimed(index)
            cut_off += 1
            continue
        _run_one_serial(batch, index)
    if cut_off:
        batch.degrade(f"deadline: {cut_off} job(s) left unclaimed (serial)")


def _kill_pool(pool) -> None:
    """Tear a pool down *now*, hung workers included.

    ``shutdown`` alone would wait on a worker stuck in a 30-second hang;
    terminating the worker processes first (via the executor's process
    table — a private but long-stable CPython attribute) makes teardown
    prompt.  Everything is best-effort: a pool we fail to kill is
    abandoned to ``shutdown(wait=False)``.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001 - already-dead/foreign process
            pass
    deadline = time.monotonic() + 1.0
    for proc in list(processes.values()):
        try:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
        except Exception:  # noqa: BLE001
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001
        pass
    try:
        # A killed pool's management thread has already closed its wakeup
        # pipe; Python 3.11's interpreter-exit hook would still try to
        # write to it and print "Exception ignored ... Bad file
        # descriptor".  Deregistering the dead thread silences that.
        from concurrent.futures import process as _cf_process

        thread = getattr(pool, "_executor_manager_thread", None)
        if thread is not None:
            _cf_process._threads_wakeups.pop(thread, None)
    except Exception:  # noqa: BLE001
        pass


def _pool_phase(batch: _Batch, pending: List[int], workers: int, share_traces: bool) -> None:
    """The parallel scheduler: bounded in-flight submission, deadlines, ladder."""
    from repro.analysis import parallel as _parallel

    policy = batch.policy
    fault_args = ambient_fault_args()
    width = min(workers, len(pending))
    shared: Dict = {}
    pool = None
    restarts = 0

    ready: Deque[int] = deque(pending)
    waiting: List[Tuple[float, int]] = []  # (eligible_at, index) backoff queue
    inflight: Dict = {}  # future -> (index, started_at)
    #: Jobs charged a pool-broken or timeout attempt.  A suspect is
    #: resubmitted *alone* (nothing else in flight), so a repeat breakage
    #: or hang implicates only it — innocents pay at most one collateral
    #: attempt per poison job, never a second.
    suspects: set = set()

    def fresh_pool():
        return _parallel.ProcessPoolExecutor(
            max_workers=width, initializer=_parallel._mark_pool_worker
        )

    def remaining_indices() -> List[int]:
        out = [i for _, i in sorted(waiting)] + list(ready)
        return sorted(set(out) | {i for i, _ in inflight.values()})

    def requeue_or_fail(index: int) -> None:
        # Past the sweep deadline, an in-flight job gets to *finish or
        # time out* — it does not get fresh attempts.
        if batch.attempts_left(index) and not batch.past_deadline():
            attempt = len(batch.outcome(index).attempts)
            waiting.append(
                (time.monotonic() + policy.delay(attempt, job_token(batch.jobs[index])), index)
            )
        else:
            batch.give_up(index)

    def restart_or_serial(event: str) -> bool:
        """Kill + replace the pool.  ``False`` means the ladder's last
        rung was reached and the remainder of the batch already finished
        serially — the caller must return."""
        nonlocal pool, restarts
        _kill_pool(pool)
        restarts += 1
        if restarts > policy.max_pool_restarts:
            batch.degrade(f"serial-fallback: {event}; pool restart budget spent")
            _serial_phase(batch, remaining_indices())
            return False
        batch.degrade(event + f" (restart {restarts})")
        try:
            pool = fresh_pool()
            return True
        except (OSError, RuntimeError) as exc:
            batch.degrade(f"serial-fallback: pool restart failed ({exc!r})")
            _serial_phase(batch, remaining_indices())
            return False

    def charge_inflight_broken() -> None:
        """Every in-flight sibling dies with the pool; each is charged
        one ``pool-broken`` attempt (collateral bounded by pool width)."""
        for index, started in list(inflight.values()):
            batch.record_failure(
                index, "pool-broken", "process pool broken while in flight",
                time.monotonic() - started,
            )
            suspects.add(index)
            requeue_or_fail(index)
        inflight.clear()

    try:
        if share_traces:
            pairs = [(i, batch.jobs[i]) for i in pending]
            shared = _parallel._share_pending_traces(pairs, batch.trace_store)
        try:
            pool = fresh_pool()
        except (OSError, RuntimeError) as exc:
            batch.degrade(f"serial-fallback: process pool unavailable ({exc!r})")
            _serial_phase(batch, pending)
            return

        while ready or waiting or inflight:
            now = time.monotonic()

            # Sweep deadline: stop launching work.  Whatever is in
            # flight finishes (or hits the per-job timeout sweep below);
            # everything still queued is marked unclaimed — except jobs
            # that already burned attempts, which are failed honestly.
            if (ready or waiting) and batch.past_deadline():
                cut_off = 0
                for index in [i for _, i in waiting] + list(ready):
                    if batch.outcome(index).attempts:
                        batch.give_up(index)
                    else:
                        batch.mark_unclaimed(index)
                        cut_off += 1
                waiting.clear()
                ready.clear()
                batch.degrade(f"deadline: {cut_off} job(s) left unclaimed (pool)")
                continue

            # Backoff expiry: move eligible jobs back onto the ready queue.
            if waiting:
                due = [w for w in waiting if w[0] <= now]
                waiting[:] = [w for w in waiting if w[0] > now]
                for _, index in sorted(due):
                    ready.append(index)

            # Top up the pool, never exceeding its width (so every
            # submitted future starts promptly and deadlines are honest).
            # Non-suspects are preferred; a suspect only launches into an
            # otherwise-empty pool (see ``suspects`` above).
            broken = False
            while ready and len(inflight) < width:
                if any(i in suspects for i, _ in inflight.values()):
                    break  # a quarantined retry is in flight alone
                pick = next((c for c in ready if c not in suspects), None)
                if pick is not None:
                    ready.remove(pick)
                    index = pick
                elif not inflight:
                    index = ready.popleft()
                else:
                    break  # only suspects left: wait for the pool to drain
                job = batch.jobs[index]
                entry = shared.get(_parallel._trace_params(job))
                handle = entry.handle if entry is not None else None
                attempt = len(batch.outcome(index).attempts)
                try:
                    future = pool.submit(_worker_run, job, handle, attempt, fault_args)
                except (BrokenExecutor, RuntimeError):
                    # The pool died between ticks; this job is innocent.
                    ready.appendleft(index)
                    broken = True
                    break
                inflight[future] = (index, time.monotonic())

            if broken:
                charge_inflight_broken()
                if not restart_or_serial("pool-restarted: pool broken at submission"):
                    return
                continue

            if not inflight:
                if waiting:
                    time.sleep(min(_TICK, max(0.0, min(w[0] for w in waiting) - now)))
                continue

            done, _ = wait(set(inflight), timeout=_TICK, return_when=FIRST_COMPLETED)

            for future in done:
                index, started = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenExecutor:
                    broken = True
                    batch.record_failure(
                        index, "pool-broken", "process pool broken under this job",
                        time.monotonic() - started,
                    )
                    suspects.add(index)
                    requeue_or_fail(index)
                except Exception as exc:  # noqa: BLE001 - per-job isolation
                    batch.record_failure(
                        index, "exception", repr(exc), time.monotonic() - started
                    )
                    requeue_or_fail(index)
                else:
                    batch.complete(index, result)

            if broken:
                charge_inflight_broken()
                if not restart_or_serial("pool-restarted: broken process pool"):
                    return
                continue

            # Deadline sweep: a hung worker cannot be cancelled through
            # the executor, so the whole pool is killed and replaced.
            if policy.timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    (future, index, started)
                    for future, (index, started) in inflight.items()
                    if now - started > policy.timeout
                ]
                if expired:
                    for _, index, started in expired:
                        batch.record_failure(
                            index, "timeout",
                            f"exceeded {policy.timeout}s wall clock", now - started,
                        )
                        suspects.add(index)
                        requeue_or_fail(index)
                    expired_keys = {future for future, _, _ in expired}
                    # Innocent in-flight jobs lose their progress but not
                    # an attempt: resubmitted after the pool is replaced.
                    collateral = 0
                    for future, (index, _) in inflight.items():
                        if future not in expired_keys:
                            ready.append(index)
                            collateral += 1
                    inflight.clear()
                    timed_out = ", ".join(job_token(batch.jobs[i]) for _, i, _ in expired)
                    if not restart_or_serial(
                        f"pool-replaced: killed hung worker(s) for {timed_out}, "
                        f"{collateral} innocent job(s) resubmitted"
                    ):
                        return
    finally:
        for entry in shared.values():
            entry.close()
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 - pool already dead
                pass


def execute_batch(
    jobs: Sequence,
    workers: Optional[int] = None,
    cache=None,
    trace_store=None,
    share_traces: bool = True,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    backend=None,
    deadline: Optional[float] = None,
) -> BatchReport:
    """Run a batch under a retry policy; never raises for job failures.

    Jobs found in the journal (successes only) or the result cache are
    served without execution; everything else runs under the policy's
    retry/timeout/degradation rules.  Returns a :class:`BatchReport`
    whose ``outcomes`` align with ``jobs``.

    ``backend`` (an :class:`~repro.analysis.backend.ExecutionBackend`
    instance, or ``None`` for the built-in pool/serial ladder) owns the
    execution phase only: the journal/cache prefilter, outcome records,
    and failure semantics above are identical for every backend.

    ``deadline`` (seconds from now) bounds the whole batch: once it
    expires no new job is started — in-flight work finishes or times
    out, everything never claimed is marked ``unclaimed`` (not
    journaled, so a resume completes it), and
    ``BatchReport.partial_results()`` accounts for every job honestly.
    """
    from repro.analysis import parallel as _parallel

    if policy is None:
        policy = DEFAULT_POLICY
    if deadline is not None and deadline < 0:
        raise ValueError(f"deadline must be >= 0 seconds (got {deadline})")
    deadline_at = time.monotonic() + deadline if deadline is not None else None
    if workers is None:
        workers = _parallel.default_workers()
    else:
        workers = _parallel._validated(workers, "workers")
    if os.environ.get(_parallel._POOL_WORKER_ENV):
        workers = 1  # already inside a pool worker: no nested pools

    outcomes = [JobOutcome(index=i, key=job.key()) for i, job in enumerate(jobs)]
    report = BatchReport(outcomes=outcomes)
    batch = _Batch(jobs, policy, cache, trace_store, journal, report,
                   deadline_at=deadline_at)

    journaled = journal.completed() if journal is not None else {}
    pending: List[int] = []
    for index, job in enumerate(jobs):
        o = outcomes[index]
        done = journaled.get(o.key)
        if done is not None:
            o.ok, o.result, o.from_journal = True, done, True
            continue
        if cache is not None:
            cached = cache.get(o.key)
            if cached is not None:
                o.ok, o.result, o.from_cache = True, cached, True
                if journal is not None:
                    journal.record_success(o.key, cached)
                continue
        pending.append(index)

    if not pending:
        return report
    if backend is not None:
        backend.execute(batch, pending, workers, share_traces)
        return report
    if workers <= 1 or len(pending) == 1:
        _serial_phase(batch, pending)
        return report
    _pool_phase(batch, pending, workers, share_traces)
    return report
