"""Command-line front end: ``repro-sim``.

Subcommands::

    repro-sim run --workload em3d --filter pc --insts 100000
    repro-sim compare --workload mcf --insts 50000
    repro-sim table2 --insts 50000
    repro-sim config
    repro-sim experiment --id f6 --insts 120000
    repro-sim sweep --workload wave5 --what history
    repro-sim sweep --workload wave5 --what history --resume run-1a2b3c4d5e
    repro-sim sweep --workload wave5 --backend shared-fs --queue-workers 2
    repro-sim sweep --workload wave5 --backend tcp --broker 127.0.0.1:7070
    repro-sim worker --queue-dir /shared/q0
    repro-sim worker --broker 127.0.0.1:7070
    repro-sim broker --queue-dir /shared/q0 --listen 127.0.0.1:7070
    repro-sim verify --workload em3d mcf --insts 12000
    repro-sim export --workload gcc --filter pa --format csv
    repro-sim bench --workload em3d --runs 5 --workers 0
    repro-sim bench --engines pipeline vector --insts 200000
    repro-sim bench --engines pipeline,vector,kernel --insts 200000
    repro-sim bench --sweep --runs 24 --insts 4000
    repro-sim bench --sweep --baseline BENCH_sweep.json --max-regress 0.25
    repro-sim bench --lint --runs 3
    repro-sim lint
    repro-sim lint --update-baseline

Exists so the simulator can be driven without writing Python — handy for
quick sanity checks and for regenerating individual paper rows.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis.report import Table
from repro.analysis.sweep import compare_filters, run_workload
from repro.common.config import KNOWN_ENGINES, FilterKind, SimulationConfig
from repro.workloads import workload_names


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--insts", type=int, default=50_000, help="instruction budget per run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine",
        choices=list(KNOWN_ENGINES),
        default=None,
        help="simulation engine (default: the config's engine, i.e. pipeline)",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="enable runtime invariant checking (same as REPRO_SANITIZE=1)",
    )


def _finalize(cfg: SimulationConfig, args: argparse.Namespace) -> SimulationConfig:
    """Apply cross-cutting CLI flags and validate before anything is spawned.

    Validation here means a bad parameter combination fails with one
    actionable message at the front door, not as a traceback from inside
    a worker process minutes into a sweep.
    """
    if getattr(args, "sanitize", False):
        cfg = cfg.with_sanitize(True)
    return cfg.validate()


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = SimulationConfig.paper_default(FilterKind(args.filter))
    if args.l1_kb == 32:
        cfg = SimulationConfig.paper_32kb(FilterKind(args.filter))
    result = run_workload(args.workload, _finalize(cfg, args), args.insts, args.seed, args.engine)
    t = result.prefetch
    print(f"workload          {result.trace_name}")
    print(f"filter            {result.filter_name}")
    print(f"instructions      {result.instructions}")
    print(f"cycles            {result.cycles}")
    print(f"IPC               {result.ipc:.4f}")
    print(f"L1 miss rate      {result.l1_miss_rate:.4f}")
    print(f"L2 miss rate      {result.l2_miss_rate:.4f}")
    print(f"prefetches good   {t.good}")
    print(f"prefetches bad    {t.bad}")
    print(f"filtered          {t.filtered}")
    print(f"squashed          {t.squashed}")
    print(f"bad/good ratio    {t.bad_good_ratio:.4f}")
    print(f"pf/normal traffic {result.prefetch_to_normal_ratio:.4f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    cfg = _finalize(SimulationConfig.paper_default(), args)
    results = compare_filters(args.workload, cfg, n_insts=args.insts, seed=args.seed, engine=args.engine)
    table = Table(f"filter comparison — {args.workload}", ["filter", "IPC", "good", "bad", "bad/good"])
    for kind, r in results.items():
        table.add_row(kind.value, [r.ipc, float(r.prefetch.good), float(r.prefetch.bad), r.bad_good_ratio])
    print(table.render())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    cfg = _finalize(
        SimulationConfig.paper_default().with_prefetch(nsp=False, sdp=False, software=False), args
    )
    table = Table("Table 2 — benchmark properties (prefetch off)", ["benchmark", "L1 miss", "L2 miss"])
    for name in workload_names():
        r = run_workload(name, cfg, args.insts, args.seed, args.engine, software_prefetch=False)
        table.add_row(name, [r.l1_miss_rate, r.l2_miss_rate])
    print(table.render())
    return 0


def _cmd_config(_args: argparse.Namespace) -> int:
    print(SimulationConfig.paper_default().describe())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import ExperimentSuite

    suite = ExperimentSuite(args.insts, seed=args.seed)
    for exp_id in args.id:
        print(suite.run_experiment(exp_id).render(with_figure=not args.no_figure))
        print()
    return 0


def _sweep_backend(args: argparse.Namespace):
    """Resolve the sweep's --backend/--queue-* flags into a backend spec."""
    if args.backend == "shared-fs":
        from repro.analysis.backend import SharedFSBackend
        from repro.analysis.workqueue import validate_queue_dir

        if args.broker:
            raise ValueError("--broker requires --backend tcp")
        if args.queue_dir:
            validate_queue_dir(args.queue_dir, what="--queue-dir")
        return SharedFSBackend(
            queue_dir=args.queue_dir,
            spawn=args.queue_workers,
            batch=args.queue_batch,
            supervise=args.supervised,
            poison_threshold=args.poison_threshold,
        )
    if args.backend == "tcp":
        from repro.analysis.backend import TCPBackend
        from repro.analysis.netqueue import BROKER_ENV

        broker = args.broker or os.environ.get(BROKER_ENV)
        if not broker:
            raise ValueError(
                f"--backend tcp needs a broker address: pass --broker HOST:PORT "
                f"or set {BROKER_ENV}"
            )
        if args.queue_dir or args.supervised or args.poison_threshold is not None:
            raise ValueError(
                "--queue-dir/--supervised/--poison-threshold belong to the "
                "broker process, not a tcp sweep (start `repro-sim broker` "
                "with them instead)"
            )
        # parse_broker_spec inside TCPBackend validates HOST:PORT early.
        return TCPBackend(
            broker=broker,
            spawn=args.queue_workers,
            batch=args.queue_batch,
        )
    if (args.queue_dir or args.queue_workers is not None or args.supervised
            or args.poison_threshold is not None or args.broker):
        raise ValueError(
            "--queue-dir/--queue-workers/--supervised/--poison-threshold "
            "require --backend shared-fs (--broker requires --backend tcp)"
        )
    return args.backend  # "pool" resolves via the registry; None defers to env


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.checkpoint import RunJournal, new_run_id
    from repro.analysis.resilience import JobsFailedError, RetryPolicy
    from repro.analysis.sweep import sweep_history_sizes, sweep_l1_ports

    run_id = args.resume or new_run_id()
    journal = RunJournal.for_run(run_id)
    policy = RetryPolicy(max_attempts=max(1, args.retries + 1), timeout=args.timeout)
    backend = _sweep_backend(args)
    if args.resume:
        done = len(journal.completed())
        print(f"resuming {run_id}: {done} job(s) already journaled")
        domains = journal.domains()
        if domains:
            print(
                "  failure domains from the previous run: "
                + ", ".join(f"{kind}={count}" for kind, count in sorted(domains.items()))
            )
        if journal.quarantined:
            print(
                f"journal quarantine: {journal.quarantined} corrupt line(s) refused; "
                "the affected jobs will be re-run",
                file=sys.stderr,
            )
    try:
        if args.what == "history":
            cfg = _finalize(
                SimulationConfig.paper_default(FilterKind.PA).with_warmup(args.insts // 3), args
            )
            results = sweep_history_sizes(
                args.workload, cfg, n_insts=args.insts, seed=args.seed,
                workers=args.workers, policy=policy, journal=journal, backend=backend,
                deadline=args.deadline,
            )
            table = Table(
                f"history-size sweep — {args.workload}", ["entries", "IPC", "good", "bad"]
            )
            for entries, r in results.items():
                table.add_row(str(entries), [r.ipc, float(r.prefetch.good), float(r.prefetch.bad)])
        else:
            results = sweep_l1_ports(
                args.workload, n_insts=args.insts, seed=args.seed,
                workers=args.workers, policy=policy, journal=journal, backend=backend,
                deadline=args.deadline,
            )
            table = Table(f"L1-port sweep — {args.workload}", ["ports", "IPC", "bad/good"])
            for ports, r in results.items():
                table.add_row(str(ports), [r.ipc, r.prefetch.bad_good_ratio])
    except JobsFailedError as exc:
        # Everything that completed is journaled; only the failures rerun.
        print(f"sweep incomplete: {exc}", file=sys.stderr)
        partial = exc.report.partial_results()
        if partial["deadline_hit"] or partial["unclaimed"] or partial["quarantined"]:
            # Deadline-bounded / quarantined sweeps end partially on
            # purpose — say exactly what landed and what did not.
            print(
                f"  partial results: {partial['completed']}/{partial['total']} completed, "
                f"{partial['unclaimed']} unclaimed"
                + (" at the deadline" if partial["deadline_hit"] else "")
                + f", {partial['quarantined']} quarantined as poison",
                file=sys.stderr,
            )
            domains = ", ".join(
                f"{kind}={count}" for kind, count in sorted(partial["by_domain"].items())
            )
            print(f"  failure domains: {domains}", file=sys.stderr)
        for outcome in exc.report.failures:
            if outcome.unclaimed:
                continue  # summarised above; not an error per job
            last = outcome.attempts[-1] if outcome.attempts else None
            detail = f"{last.kind}: {last.error}" if last else "no attempts"
            print(f"  job[{outcome.index}] {detail}", file=sys.stderr)
        for event in exc.report.degradations:
            print(f"  degradation: {event}", file=sys.stderr)
        print(f"retry just the failed jobs with: --resume {run_id}", file=sys.stderr)
        return 1
    print(table.render())
    if journal.quarantined:
        print(
            f"journal quarantine: {journal.quarantined} corrupt line(s) ignored "
            "(those jobs were re-run, not trusted)",
            file=sys.stderr,
        )
    print(f"run id: {run_id} (resume an interrupted sweep with --resume {run_id})")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """``repro-sim worker``: drain a job queue (shared directory or broker).

    Any number of these — on this host or on peers sharing the
    directory — cooperate through atomic-rename lease claims; a worker
    that dies mid-lease is detected by heartbeat silence and its work
    stolen (see :mod:`repro.analysis.workqueue`).  With ``--broker
    HOST:PORT`` the same protocol runs over TCP against ``repro-sim
    broker``, for hosts that share no filesystem
    (:mod:`repro.analysis.netqueue`); losing the broker past the retry
    budget is a clean exit 75, so a supervisor restarts the worker
    without charging its crash budget.
    """
    import time

    from repro.analysis.exitcodes import EXIT_JOBS_FAILED, EXIT_OK, EXIT_PRESSURE
    from repro.analysis.parallel import _mark_pool_worker
    from repro.analysis.resilience import RetryPolicy
    from repro.analysis.worker import drain_queue
    from repro.analysis.workqueue import FileQueue, new_worker_id, validate_queue_dir
    from repro.common.diskio import PressureGuard, parse_size
    from repro.trace.store import TraceStore

    if bool(args.queue_dir) == bool(args.broker):
        raise ValueError(
            "a worker drains exactly one queue: pass --queue-dir DIR "
            "(shared filesystem) or --broker HOST:PORT (TCP), not both or neither"
        )
    name = args.name or new_worker_id()
    if args.broker:
        from repro.analysis.netqueue import BrokerUnreachable, NetQueue, parse_broker_spec

        host, port = parse_broker_spec(args.broker)
        queue = NetQueue(host, port)
        try:
            # Handshake now: a typo'd or down broker fails here with one
            # actionable error, not deep inside the first claim — and
            # the hello adopts the broker queue's lease TTL, which
            # drives this worker's heartbeat cadence.
            queue.hello()
        except BrokerUnreachable as exc:
            # Same backoff-friendly exit as resource pressure: the
            # worker is fine, the world around it is not.  A supervisor
            # respawns it without charging the crash budget.
            print(f"worker {name}: {exc}", file=sys.stderr)
            return EXIT_PRESSURE
    else:
        validate_queue_dir(args.queue_dir, what="--queue-dir")
        queue = FileQueue(
            args.queue_dir, lease_ttl=args.lease_ttl, poison_threshold=args.poison_threshold
        )
    # A queue worker is a leaf: anything it runs must stay serial (no
    # nested pools), and `exit` faults may hard-kill it like any pool
    # worker.  Marked only now — after validation — so a rejected
    # invocation does not leave the process-wide marker behind when
    # `main()` is called in-process.
    _mark_pool_worker()
    policy = RetryPolicy(max_attempts=max(1, args.retries + 1), timeout=args.timeout)
    store = TraceStore(args.trace_store) if args.trace_store else None
    # The guard's fault key carries the worker name, so a chaos plan can
    # open a pressure window for exactly one incarnation (`match=s2r0`).
    guard = PressureGuard(queue.root, key=f"{queue.root}|{name}")
    if args.min_free is not None:
        guard.min_free_bytes = parse_size(args.min_free, "--min-free")
    if args.max_rss is not None:
        guard.max_rss_bytes = parse_size(args.max_rss, "--max-rss")
    deadline = time.monotonic() + args.deadline if args.deadline is not None else None
    stats = drain_queue(
        queue,
        worker=name,
        batch=args.batch,
        policy=policy,
        trace_store=store,
        poll=args.poll,
        exit_when_empty=not args.keep_alive,
        max_jobs=args.max_jobs,
        guard=guard,
        deadline=deadline,
    )
    print(
        f"worker {stats.worker}: {stats.executed} job(s) "
        f"({stats.claimed} claimed, {stats.stolen} stolen, {stats.failed} failed) "
        f"in {stats.drain_s:.2f}s across {stats.groups} trace group(s), "
        f"{stats.trace_reuses} trace reuse(s)"
    )
    for event in stats.degradations:
        print(f"  degradation: {event}", file=sys.stderr)
    if stats.stopped in ("pressure", "disconnected", "heartbeat"):
        # EX_TEMPFAIL-style exit: the host (or the network, or this
        # process's own heartbeat thread), not the work, is the problem.
        # A supervisor restarts this worker without burning crash budget.
        why = {
            "pressure": "resource pressure",
            "disconnected": "broker unreachable past the retry budget",
            "heartbeat": "heartbeat thread death",
        }[stats.stopped]
        print(f"worker {stats.worker}: drained-and-exited on {why}", file=sys.stderr)
        return EXIT_PRESSURE
    return EXIT_OK if stats.failed == 0 else EXIT_JOBS_FAILED


def _cmd_supervise(args: argparse.Namespace) -> int:
    """``repro-sim supervise``: keep a worker fleet at strength over a queue.

    Spawns ``--workers`` ``repro-sim worker`` subprocesses against
    ``--queue-dir``, restarts the ones that crash (capped exponential
    backoff) or exit under resource pressure (constant backoff), and
    quarantines poison jobs — jobs whose lease generation climbs past
    the threshold because every executor dies (see
    :mod:`repro.analysis.supervisor`).
    """
    from repro.analysis.supervisor import FleetSupervisor
    from repro.analysis.workqueue import FileQueue, validate_queue_dir

    validate_queue_dir(args.queue_dir, what="--queue-dir")
    queue = FileQueue(
        args.queue_dir, lease_ttl=args.lease_ttl, poison_threshold=args.poison_threshold
    )
    supervisor = FleetSupervisor(
        queue,
        workers=args.workers,
        batch=args.batch,
        poll=args.poll,
        worker_poll=args.poll,
        retries=args.retries,
        timeout=args.timeout,
        deadline=args.deadline,
        max_restarts=args.max_restarts,
        trace_store_dir=args.trace_store,
    )
    report = supervisor.run()
    counts = report.counts
    print(
        f"supervisor: {report.stopped or 'stopped'} after {report.elapsed_s:.2f}s "
        f"({report.workers} worker slot(s), {report.restarts} restart(s): "
        f"{report.crash_restarts} crash, {report.pressure_restarts} pressure)"
    )
    print(
        f"  queue: {counts.get('done', 0)} done, {counts.get('jobs', 0)} waiting, "
        f"{counts.get('leases', 0)} leased, {counts.get('poisoned', 0)} poisoned, "
        f"{counts.get('quarantined', 0)} corrupt-record quarantine(s)"
    )
    for event in report.events:
        print(f"  {event}", file=sys.stderr)
    if report.poisoned:
        print(
            f"  poison forensics: {queue.quarantine_dir}",
            file=sys.stderr,
        )
    return 0 if report.drained else 1


def _cmd_broker(args: argparse.Namespace) -> int:
    """``repro-sim broker``: serve a queue directory over TCP.

    A thin, crash-recoverable network front: all state lives in the
    ``--queue-dir`` :class:`~repro.analysis.workqueue.FileQueue`, so a
    broker killed mid-sweep loses nothing — restart it on the same
    directory (any port) and ``sweep --resume`` completes exactly the
    missing work.  Workers on any host connect with ``repro-sim worker
    --broker HOST:PORT``; sweeps submit with ``--backend tcp``.
    """
    from repro.analysis.netqueue import Broker, parse_broker_spec
    from repro.analysis.workqueue import FileQueue, validate_queue_dir

    host, port = parse_broker_spec(args.listen, what="--listen", allow_port_zero=True)
    validate_queue_dir(args.queue_dir, what="--queue-dir")
    queue = FileQueue(
        args.queue_dir, lease_ttl=args.lease_ttl, poison_threshold=args.poison_threshold
    )
    broker = Broker(queue, host=host, port=port)
    broker.start()
    # The exact line test harnesses and operators parse for the bound
    # port (`--listen host:0` picks a free one).
    print(f"broker listening on {broker.host}:{broker.port}", flush=True)
    if broker.restarts:
        print(
            f"broker: restart #{broker.restarts} on this queue dir; "
            "resuming from the filesystem state",
            flush=True,
        )
    try:
        broker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        broker.stop()
        counts = queue.counts()
        print(
            f"broker stopped: {counts.get('done', 0)} done, "
            f"{counts.get('jobs', 0)} waiting, {counts.get('leases', 0)} leased",
            flush=True,
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Cross-engine differential oracle + golden corpus replay.

    Three gates, all of which must pass for exit 0: pipeline-vs-vector
    parity within the documented tolerance, vector-vs-kernel parity
    bit-for-bit (the kernel tier lowers the vector model, so any drift
    at all is a porting bug), and the golden corpus replay (unless
    skipped).
    """
    from pathlib import Path

    from repro.sanitize import differential as diff

    failed = False
    for workload in args.workload:
        for name in args.filter:
            kind = FilterKind.from_name(name)
            report = diff.run_parity(
                workload, kind, n_insts=args.insts, seed=args.seed,
                sanitize=not args.no_sanitize,
            )
            tag = f"{workload}/{name}"
            if report.ok:
                worst = report.worst
                detail = (
                    f"worst {worst.key}: rel {worst.rel:.3f}, abs {worst.delta}"
                    if worst else "exact"
                )
                print(f"parity {tag:14s} ok    ({detail})")
            else:
                failed = True
                print(f"parity {tag:14s} FAIL")
                for d in report.failures:
                    print(
                        f"    {d.key}: pipeline {d.pipeline} vs vector {d.vector} "
                        f"(rel {d.rel:.3f}, abs {d.delta})"
                    )

    for workload in args.workload:
        for name in args.filter:
            kind = FilterKind.from_name(name)
            exact = diff.run_kernel_parity(
                workload, kind, n_insts=args.insts, seed=args.seed,
                sanitize=not args.no_sanitize,
            )
            tag = f"{workload}/{name}"
            if exact.ok:
                print(
                    f"kernel {tag:14s} ok    "
                    f"(bit-identical to vector, mode={exact.kernel_mode})"
                )
            else:
                failed = True
                print(f"kernel {tag:14s} FAIL  (mode={exact.kernel_mode})")
                for mismatch in exact.mismatches:
                    print(f"    {mismatch}")

    if not args.no_golden:
        directory = Path(args.golden) if args.golden else diff.default_golden_dir()
        if directory is None:
            print("golden: no corpus directory found (pass --golden DIR)", file=sys.stderr)
            failed = True
        else:
            for outcome in diff.verify_golden(directory):
                status = "ok   " if outcome.ok else ("STALE" if outcome.stale else "FAIL ")
                print(f"golden {outcome.path.name:26s} {status} {outcome.message}")
                for mismatch in outcome.mismatches:
                    print(f"    {mismatch}")
                if not outcome.ok:
                    failed = True

    print("verify: FAIL" if failed else "verify: all checks passed")
    return 1 if failed else 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import results_to_csv, results_to_json

    cfg = _finalize(
        SimulationConfig.paper_default(FilterKind(args.filter)).with_warmup(args.insts // 3), args
    )
    results = [
        run_workload(w, cfg, args.insts, args.seed, args.engine)
        for w in (args.workload or workload_names())
    ]
    text = results_to_csv(results, include_sources=args.sources) if args.format == "csv" else results_to_json(results)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _bench_engines(args: argparse.Namespace, lint_health: dict | None = None) -> int:
    """The ``bench --engines`` axis: per-run engine speedups + counter gaps.

    Times every (workload, filter) cell under each requested engine,
    records the speedup and the relative classification-counter deltas
    against the first engine listed (the reference, normally the
    pipeline), and times the trace store cold (synthesise + save) versus
    warm (load).  The report lands in ``--out`` (default
    ``BENCH_vector.json``, or ``BENCH_kernel.json`` when the kernel
    engine is benched) — it is the documented-tolerance artefact the
    batch engines' fidelity contracts point at.

    Timing discipline for JIT/compiled engines: the first run of a
    compiled engine pays one-off costs (numba compilation or loading the
    cached C kernel) that would skew a timed rep, so every (engine,
    workload) pair gets one *untimed* warm-up run before any timed rep.
    Warm-up durations are recorded separately in the report's
    ``warmup`` health block — compile cost is visible, never silently
    folded into (or hidden from) the speedup numbers.
    """
    import json
    import math
    import tempfile
    import time

    from repro.analysis.sweep import run_workload
    from repro.trace.store import TraceStore
    from repro.workloads import cached_trace

    reference = args.engines[0]
    workloads = [args.workload] if args.workload else list(workload_names())
    filters = ("none", "pa", "pc")
    counter_keys = (
        "generated", "squashed", "filtered", "dropped", "issued", "good", "bad",
    )
    scalar_keys = (
        "l1_demand_accesses", "l1_demand_misses", "l2_demand_accesses",
        "l2_demand_misses", "prefetch_line_traffic", "demand_line_traffic",
    )

    def counters_of(result) -> dict:
        out = {k: getattr(result.prefetch, k) for k in counter_keys}
        out.update({k: getattr(result, k) for k in scalar_keys})
        return out

    def best_time(workload: str, cfg: SimulationConfig, engine: str, trace):
        best, result = math.inf, None
        for _ in range(2):  # best-of-2 absorbs one-off scheduler noise
            t0 = time.perf_counter()
            result = run_workload(workload, cfg, args.insts, args.seed, engine, trace=trace)
            best = min(best, time.perf_counter() - t0)
        return best, result

    # One untimed warm-up per (engine, workload) before any timed rep:
    # a compiled engine's first run carries JIT/compile/load cost.
    warmup_seconds: dict[str, dict[str, float]] = {e: {} for e in args.engines}

    def warm_up(workload: str, cfg: SimulationConfig, engine: str, trace) -> None:
        if workload in warmup_seconds[engine]:
            return
        t0 = time.perf_counter()
        run_workload(workload, cfg, args.insts, args.seed, engine, trace=trace)
        warmup_seconds[engine][workload] = round(time.perf_counter() - t0, 4)

    rows = []
    speedups: dict[str, list[float]] = {e: [] for e in args.engines[1:]}
    for workload in workloads:
        trace = cached_trace(workload, args.insts, args.seed)
        for filter_name in filters:
            cfg = _finalize(SimulationConfig.paper_default(FilterKind(filter_name)), args)
            seconds, counters, deltas = {}, {}, {}
            for engine in args.engines:
                warm_up(workload, cfg, engine, trace)
                seconds[engine], result = best_time(workload, cfg, engine, trace)
                counters[engine] = counters_of(result)
            row = {
                "workload": workload,
                "filter": filter_name,
                "seconds": {e: round(s, 4) for e, s in seconds.items()},
                "counters": counters,
            }
            for engine in args.engines[1:]:
                ratio = seconds[reference] / seconds[engine] if seconds[engine] else None
                row.setdefault("speedup_vs_" + reference, {})[engine] = (
                    round(ratio, 2) if ratio else None
                )
                if ratio:
                    speedups[engine].append(ratio)
                deltas[engine] = {
                    k: round(
                        abs(counters[engine][k] - counters[reference][k])
                        / max(1, counters[reference][k]),
                        4,
                    )
                    for k in counter_keys + scalar_keys
                }
            if deltas:
                row["counter_rel_delta_vs_" + reference] = deltas
            rows.append(row)
            cell = " ".join(
                f"{e}={seconds[e]:.3f}s" for e in args.engines
            )
            print(f"{workload:10s} {filter_name:4s} {cell}")

    # Trace store: cold synthesis-and-save versus warm load-from-disk.
    store_rows = []
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp)
        for workload in workloads:
            t0 = time.perf_counter()
            store.get_or_build(workload, args.insts, args.seed + 1)  # unseen seed: cold
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            store.get_or_build(workload, args.insts, args.seed + 1)
            warm = time.perf_counter() - t0
            store_rows.append(
                {
                    "workload": workload,
                    "cold_seconds": round(cold, 4),
                    "warm_seconds": round(warm, 4),
                    "speedup": round(cold / warm, 1) if warm else None,
                }
            )

    def geomean(values):
        return round(math.exp(sum(math.log(v) for v in values) / len(values)), 2)

    report = {
        "insts_per_run": args.insts,
        "seed": args.seed,
        "engines": list(args.engines),
        "reference_engine": reference,
        # Compile/JIT warm-up cost, kept out of the timed reps: the first
        # workload's warm-up absorbs any one-off compilation.
        "warmup": {
            engine: {
                "per_workload_seconds": per,
                "total_seconds": round(sum(per.values()), 4),
            }
            for engine, per in warmup_seconds.items()
        },
        "rows": rows,
        "trace_store": store_rows,
        "trace_store_stats": store.stats,
        "summary": {
            engine: {
                "geomean_speedup": geomean(values),
                "min_speedup": round(min(values), 2),
                "max_speedup": round(max(values), 2),
            }
            for engine, values in speedups.items()
            if values
        },
    }
    if "kernel" in args.engines:
        from repro.core.kernel import select_mode

        report["kernel_mode"] = select_mode()
    if lint_health is not None:
        report["lint"] = lint_health
    out = args.out or ("BENCH_kernel.json" if "kernel" in args.engines else "BENCH_vector.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    for engine, summary in report["summary"].items():
        print(
            f"{engine} vs {reference}: geomean {summary['geomean_speedup']}x "
            f"(min {summary['min_speedup']}x, max {summary['max_speedup']}x)"
        )
    print(f"wrote {out}")
    return _apply_baseline(report, args)


def _apply_baseline(report: dict, args: argparse.Namespace) -> int:
    """The ``bench --baseline`` regression gate; 0 = no baseline or ok."""
    if not args.baseline:
        return 0
    from repro.analysis.regression import compare_reports, load_baseline

    gate = compare_reports(report, load_baseline(args.baseline), max_regress=args.max_regress)
    print(gate.render())
    return 0 if gate.ok else 1


def _bench_sweep(args: argparse.Namespace, lint_health: dict | None = None) -> int:
    """The ``bench --sweep`` axis: queue-backend throughput + amortization.

    Times one job grid four ways — serial in-process, through the
    shared-FS queue backend at one and two workers, then through an
    in-process TCP broker — asserting along the way that every drain is
    bit-identical to serial.  The report
    (``BENCH_sweep.json`` by default) records jobs/sec per drain, the
    measured warm-up amortization (mean first-of-trace-group job time
    over mean rest-of-group time, from the workers' own stats files),
    and the host CPU count, because queue speedup on a 1-CPU box comes
    from I/O overlap and amortization, not parallel simulation — the
    report must let a reader see that.
    """
    import json
    import os
    import tempfile
    import time

    from repro.analysis.backend import SharedFSBackend
    from repro.analysis.parallel import SimulationJob, run_jobs
    from repro.analysis.result_cache import ResultCache

    workloads = [args.workload] if args.workload else ["em3d", "mcf"]
    cfg = _finalize(
        SimulationConfig.paper_default(FilterKind(args.filter)).with_warmup(args.insts // 3), args
    )
    # The grid varies the *config* (filter kind × history-table size) over
    # a shared trace per workload, like a real sensitivity sweep — that is
    # what makes per-worker trace-group amortization measurable.  Seeds
    # only advance once a workload's config combinations are exhausted.
    sizes = (1024, 2048, 4096, 8192, 16384)
    kinds = (FilterKind.PA, FilterKind.PC)
    per = max(1, args.runs // len(workloads))
    jobs = []
    for w in workloads:
        for i in range(per):
            kind = kinds[(i // len(sizes)) % len(kinds)]
            cfg_i = cfg.with_filter(kind=kind, table_entries=sizes[i % len(sizes)])
            seed = args.seed + i // (len(sizes) * len(kinds))
            jobs.append(SimulationJob(w, cfg_i, args.insts, seed, engine=args.engine))

    def fingerprints(results):
        return [(r.cycles, r.instructions, r.prefetch) for r in results]

    def amortization(stats_list):
        first_s = sum(s.get("first_job_s", 0.0) for s in stats_list)
        first_n = sum(s.get("first_jobs", 0) for s in stats_list)
        rest_s = sum(s.get("rest_job_s", 0.0) for s in stats_list)
        rest_n = sum(s.get("rest_jobs", 0) for s in stats_list)
        if not first_n or not rest_n or not rest_s:
            return None
        return round((first_s / first_n) / (rest_s / rest_n), 2)

    t0 = time.perf_counter()
    serial = run_jobs(jobs, workers=1)
    t_serial = time.perf_counter() - t0
    expected = fingerprints(serial)
    drains = [
        {
            "label": "serial",
            "workers": 1,
            "seconds": round(t_serial, 3),
            "jobs_per_sec": round(len(jobs) / t_serial, 3),
            "speedup_vs_serial": 1.0,
        }
    ]
    print(f"serial        {len(jobs)} jobs in {t_serial:.2f}s")

    identical = True
    worker_counts = sorted({1, 2} | ({args.workers} if args.workers > 2 else set()))
    cache_stats = None
    queue_quarantined = 0
    queue_poisoned = 0
    for n_workers in worker_counts:
        with tempfile.TemporaryDirectory() as scratch:
            backend = SharedFSBackend(
                queue_dir=scratch + "/queue",
                spawn=n_workers - 1,
                lease_ttl=15.0,
                batch=max(2, len(jobs) // (2 * n_workers)),
            )
            cache = None if args.no_cache else ResultCache(args.cache_dir or scratch + "/cache")
            t0 = time.perf_counter()
            results = run_jobs(jobs, workers=1, cache=cache, backend=backend)
            seconds = time.perf_counter() - t0
            identical = identical and fingerprints(results) == expected
            stats_list = backend.last_worker_stats or [backend.last_parent_stats]
            queue_quarantined += backend.last_counts.get("quarantined", 0)
            queue_poisoned += backend.last_counts.get("poisoned", 0)
            if cache is not None:
                cache_stats = cache.stats
            label = f"shared-fs[{n_workers}w]"
            drains.append(
                {
                    "label": label,
                    "workers": n_workers,
                    "seconds": round(seconds, 3),
                    "jobs_per_sec": round(len(jobs) / seconds, 3),
                    "speedup_vs_serial": round(t_serial / seconds, 2),
                    "amortization_first_vs_rest": amortization(stats_list),
                    "trace_reuses": sum(s.get("trace_reuses", 0) for s in stats_list),
                    "stolen": sum(s.get("stolen", 0) for s in stats_list),
                    "queue_counts": backend.last_counts,
                    "worker_stats": stats_list,
                }
            )
            print(
                f"{label:13s} {len(jobs)} jobs in {seconds:.2f}s "
                f"({t_serial / seconds:.2f}x vs serial, "
                f"amortization {amortization(stats_list)})"
            )

    # TCP drain: same grid through an in-process broker, so the report
    # shows what the network hop costs relative to the shared-FS queue
    # and records transport health (a clean bench must show zero
    # reconnects/replays; a noisy host shows up here, not as a silent
    # throughput dip).
    transport_health = None
    with tempfile.TemporaryDirectory() as scratch:
        from repro.analysis.backend import TCPBackend
        from repro.analysis.netqueue import Broker
        from repro.analysis.workqueue import FileQueue

        broker = Broker(FileQueue(scratch + "/queue", lease_ttl=15.0), host="127.0.0.1", port=0)
        broker.start()
        broker.serve_in_thread()
        try:
            backend = TCPBackend(
                broker=f"127.0.0.1:{broker.port}",
                spawn=1,
                batch=max(2, len(jobs) // 4),
            )
            t0 = time.perf_counter()
            results = run_jobs(jobs, workers=1, backend=backend)
            seconds = time.perf_counter() - t0
            identical = identical and fingerprints(results) == expected
            stats_list = backend.last_worker_stats or [backend.last_parent_stats]
            transport_health = dict(backend.last_transport)
            drains.append(
                {
                    "label": "tcp[2w]",
                    "workers": 2,
                    "seconds": round(seconds, 3),
                    "jobs_per_sec": round(len(jobs) / seconds, 3),
                    "speedup_vs_serial": round(t_serial / seconds, 2),
                    "amortization_first_vs_rest": amortization(stats_list),
                    "trace_reuses": sum(s.get("trace_reuses", 0) for s in stats_list),
                    "stolen": sum(s.get("stolen", 0) for s in stats_list),
                    "transport": transport_health,
                    "worker_stats": stats_list,
                }
            )
            print(
                f"{'tcp[2w]':13s} {len(jobs)} jobs in {seconds:.2f}s "
                f"({t_serial / seconds:.2f}x vs serial, "
                f"amortization {amortization(stats_list)})"
            )
        finally:
            broker.stop()

    report = {
        "workloads": workloads,
        "filter": args.filter,
        "engine": args.engine or "pipeline",
        "jobs": len(jobs),
        "insts_per_run": args.insts,
        "seed": args.seed,
        # Honesty marker: on a 1-CPU host, multi-worker speedup can only
        # come from I/O overlap + amortization, not parallel simulation.
        "cpu_count": os.cpu_count(),
        "drains": drains,
        "results_identical": identical,
    }
    # Health block: quarantines are invisible in throughput numbers, so
    # surface every flavour — corrupt queue records refused on read,
    # poison jobs sealed off, and cache-side corruption/pressure skips.
    health = {
        "queue_quarantined": queue_quarantined,
        "queue_poisoned": queue_poisoned,
    }
    if transport_health is not None:
        # Transport health from the tcp drain: nonzero on a clean local
        # bench means the loopback transport itself is misbehaving.
        health["net_reconnects"] = transport_health.get("reconnects", 0)
        health["net_retried_calls"] = transport_health.get("retried_calls", 0)
        health["net_replayed_ops"] = transport_health.get("replayed_ops", 0)
        health["net_broker_restarts"] = transport_health.get("broker_restarts", 0)
    if cache_stats is not None:
        health["cache_quarantined"] = cache_stats.get("quarantined", 0)
        health["cache_pressure_skipped"] = cache_stats.get("pressure_skipped", 0)
    report["health"] = health
    if any(health.values()):
        print(
            "health: "
            + ", ".join(f"{name}={count}" for name, count in health.items() if count)
        )
    if cache_stats is not None:
        report["cache"] = cache_stats
    if lint_health is not None:
        report["lint"] = lint_health
    out = args.out or "BENCH_sweep.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"wrote {out}")
    if not identical:
        print("bench --sweep: drained results are NOT identical to serial", file=sys.stderr)
        return 1
    return _apply_baseline(report, args)


def _cmd_lint(args: argparse.Namespace) -> int:
    """``repro-sim lint``: forward to the analyzer's own argument parser."""
    from repro.lint import main as lint_main

    return lint_main(args.lint_args)


def _lint_health() -> dict:
    """Static-analyzer counters for the ``bench --lint`` health gate."""
    from repro.lint import apply_baseline, default_repo_root, lint_tree, load_baseline
    from repro.lint.baseline import DEFAULT_BASELINE_NAME

    root = default_repo_root()
    result = apply_baseline(lint_tree(root), load_baseline(root / DEFAULT_BASELINE_NAME))
    return {
        "new": len(result.new),
        "accepted": len(result.accepted),
        "stale_baseline": len(result.stale),
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.analysis.parallel import SimulationJob, default_workers, run_jobs
    from repro.analysis.result_cache import ResultCache

    # Lint health gate: a sweep about to burn hours of CPU can assert the
    # tree passes static analysis first, and the report records the counts.
    lint_health = None
    if args.lint:
        lint_health = _lint_health()
        if lint_health["new"] or lint_health["stale_baseline"]:
            print(
                f"bench: static analysis is dirty ({lint_health['new']} new "
                f"finding(s), {lint_health['stale_baseline']} stale baseline "
                "entr(y/ies)) — run `repro-sim lint` and fix before benching",
                file=sys.stderr,
            )
            return 1

    if args.engines and args.sweep:
        raise ValueError("--engines and --sweep are different bench axes; pick one")
    if args.engines:
        # Accept both `--engines a b` and `--engines a,b,c`; validated here
        # (not via argparse choices) so the comma form gets the same message.
        args.engines = [e for part in args.engines for e in part.split(",") if e]
        unknown = [e for e in args.engines if e not in KNOWN_ENGINES]
        if unknown:
            raise ValueError(
                f"unknown engine(s) {', '.join(unknown)}; "
                f"choose from {', '.join(KNOWN_ENGINES)}"
            )
        return _bench_engines(args, lint_health)
    if args.sweep:
        return _bench_sweep(args, lint_health)

    workload = args.workload or "em3d"
    cfg = _finalize(
        SimulationConfig.paper_default(FilterKind(args.filter)).with_warmup(args.insts // 3), args
    )
    # Distinct seeds make each run a genuinely different simulation, so the
    # cache cannot collapse the batch into one job.
    jobs = [
        SimulationJob(workload, cfg, args.insts, args.seed + i, engine=args.engine)
        for i in range(args.runs)
    ]
    workers = args.workers if args.workers > 0 else default_workers()
    total_insts = args.insts * args.runs

    t0 = time.perf_counter()
    serial = run_jobs(jobs, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_jobs(jobs, workers=workers)
    t_parallel = time.perf_counter() - t0

    identical = all(
        (a.cycles, a.instructions, a.prefetch) == (b.cycles, b.instructions, b.prefetch)
        for a, b in zip(serial, parallel)
    )

    t_cold = t_warm = None
    cache_stats = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
        t0 = time.perf_counter()
        run_jobs(jobs, workers=workers, cache=cache)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_jobs(jobs, workers=workers, cache=cache)
        t_warm = time.perf_counter() - t0
        identical = identical and all(
            (a.cycles, a.instructions, a.prefetch) == (b.cycles, b.instructions, b.prefetch)
            for a, b in zip(serial, warm)
        )
        # Full health counters: quarantined > 0 means the disk is eating
        # entries — a degraded cache, not a cold one.
        cache_stats = cache.stats

    report = {
        "workload": workload,
        "filter": args.filter,
        "engine": args.engine or "pipeline",
        "runs": args.runs,
        "insts_per_run": args.insts,
        "workers": workers,
        "serial_seconds": round(t_serial, 3),
        "parallel_seconds": round(t_parallel, 3),
        "serial_insts_per_sec": round(total_insts / t_serial),
        "parallel_insts_per_sec": round(total_insts / t_parallel),
        "parallel_speedup": round(t_serial / t_parallel, 2),
        "results_identical": identical,
    }
    if t_cold is not None:
        report["cold_cache_seconds"] = round(t_cold, 3)
        report["warm_cache_seconds"] = round(t_warm, 3)
        report["warm_cache_speedup"] = round(t_serial / t_warm, 1) if t_warm else None
        report["cache"] = cache_stats
    if lint_health is not None:
        report["lint"] = lint_health

    if args.json:
        print(json.dumps(report, indent=1))
    else:
        for key, value in report.items():
            print(f"{key:24} {value}")
    if not identical:
        return 1
    return _apply_baseline(report, args)


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Forwarded verbatim before argparse sees it: the analyzer owns its
    # whole flag surface (argparse's REMAINDER refuses leading --flags).
    if argv[:1] == ["lint"]:
        from repro.lint import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro-sim", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("--workload", choices=workload_names(), required=True)
    p_run.add_argument("--filter", choices=[k.value for k in FilterKind], default="none")
    p_run.add_argument("--l1-kb", type=int, choices=[8, 32], default=8)
    _add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="none vs PA vs PC on one workload")
    p_cmp.add_argument("--workload", choices=workload_names(), required=True)
    _add_common(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 miss rates")
    _add_common(p_t2)
    p_t2.set_defaults(func=_cmd_table2)

    p_cfg = sub.add_parser("config", help="print the Table 1 machine")
    p_cfg.set_defaults(func=_cmd_config)

    p_exp = sub.add_parser("experiment", help="run paper experiments by id (t1..t2, f1..f16, s1..s3)")
    p_exp.add_argument("--id", nargs="+", required=True)
    p_exp.add_argument("--no-figure", action="store_true", help="suppress text charts")
    p_exp.add_argument("--insts", type=int, default=50_000)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.set_defaults(func=_cmd_experiment)

    p_swp = sub.add_parser("sweep", help="history-size or port-count sweep")
    p_swp.add_argument("--workload", choices=workload_names(), required=True)
    p_swp.add_argument("--what", choices=["history", "ports"], default="history")
    p_swp.add_argument("--workers", type=int, default=1, help="parallel simulation processes")
    p_swp.add_argument(
        "--resume", metavar="RUN_ID", default=None,
        help="resume a crashed/interrupted sweep from its run journal "
        "(skips already-completed jobs; the run id is printed by every sweep)",
    )
    p_swp.add_argument("--retries", type=int, default=1, help="retries per failed job")
    p_swp.add_argument(
        "--timeout", type=float, default=None, help="per-job wall-clock timeout in seconds"
    )
    p_swp.add_argument(
        "--backend", choices=["pool", "shared-fs", "tcp"], default=None,
        help="execution backend (default: REPRO_BACKEND env, else the in-process pool)",
    )
    p_swp.add_argument(
        "--queue-dir", default=None,
        help="shared-fs backend: queue root directory shared with external workers "
        "(default: a throwaway directory)",
    )
    p_swp.add_argument(
        "--broker", default=None, metavar="HOST:PORT",
        help="tcp backend: address of a running `repro-sim broker` "
        "(default: REPRO_BROKER env)",
    )
    p_swp.add_argument(
        "--queue-workers", type=int, default=None,
        help="shared-fs backend: local worker processes to spawn "
        "(default: workers - 1; the sweep process itself also drains)",
    )
    p_swp.add_argument(
        "--queue-batch", type=int, default=8,
        help="shared-fs backend: jobs claimed per worker per round (the "
        "trace-amortization batch size)",
    )
    p_swp.add_argument(
        "--supervised", action="store_true",
        help="shared-fs backend: drain under a fleet supervisor (crashed/"
        "pressure-exited workers are restarted; poison jobs quarantined)",
    )
    p_swp.add_argument(
        "--poison-threshold", type=int, default=None,
        help="shared-fs backend: max lease generation before a job that keeps "
        "killing its workers is quarantined (default: REPRO_POISON_THRESHOLD or 3)",
    )
    p_swp.add_argument(
        "--deadline", type=float, default=None,
        help="global wall-clock budget in seconds: stop starting jobs at the "
        "deadline, report honest partial results, finish later with --resume",
    )
    _add_common(p_swp)
    p_swp.set_defaults(func=_cmd_sweep)

    p_wk = sub.add_parser(
        "worker",
        help="drain a sweep queue (start any number, anywhere the directory — "
        "or the broker — is reachable)",
    )
    p_wk.add_argument(
        "--queue-dir", default=None,
        help="queue root directory (shared-filesystem drain)",
    )
    p_wk.add_argument(
        "--broker", default=None, metavar="HOST:PORT",
        help="drain a `repro-sim broker` over TCP instead of a shared directory",
    )
    p_wk.add_argument("--name", default=None, help="worker identity (default: generated)")
    p_wk.add_argument(
        "--batch", type=int, default=8,
        help="jobs claimed per round; grouped by (engine, trace) so each group "
        "pays trace acquisition once",
    )
    p_wk.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds of heartbeat silence before this worker's leases become stealable",
    )
    p_wk.add_argument("--poll", type=float, default=0.2, help="idle poll interval in seconds")
    p_wk.add_argument("--retries", type=int, default=1, help="retries per failed job")
    p_wk.add_argument(
        "--timeout", type=float, default=None, help="per-job wall-clock timeout in seconds"
    )
    p_wk.add_argument(
        "--keep-alive", action="store_true",
        help="keep draining after the queue empties (standing worker); stop externally",
    )
    p_wk.add_argument(
        "--max-jobs", type=int, default=None, help="exit after this many executions"
    )
    p_wk.add_argument(
        "--trace-store", default=None,
        help="on-disk trace store directory (default: synthesise traces in-process)",
    )
    p_wk.add_argument(
        "--deadline", type=float, default=None,
        help="stop claiming new jobs this many seconds from startup "
        "(in-flight jobs finish; exit 0)",
    )
    p_wk.add_argument(
        "--poison-threshold", type=int, default=None,
        help="max lease generation before a stale lease is quarantined as a "
        "poison job instead of stolen (default: REPRO_POISON_THRESHOLD or 3)",
    )
    p_wk.add_argument(
        "--min-free", default=None, metavar="SIZE",
        help="drain-and-exit (code 75) when free disk under the queue drops "
        "below SIZE (e.g. 256m; default: REPRO_MIN_FREE_BYTES or 32m)",
    )
    p_wk.add_argument(
        "--max-rss", default=None, metavar="SIZE",
        help="drain-and-exit (code 75) when this worker's RSS exceeds SIZE "
        "(e.g. 2g; default: REPRO_MAX_RSS, else unlimited)",
    )
    p_wk.set_defaults(func=_cmd_worker)

    p_sv = sub.add_parser(
        "supervise",
        help="spawn and supervise a worker fleet over a shared queue: restart "
        "crashes with backoff, quarantine poison jobs, honour a deadline",
    )
    p_sv.add_argument("--queue-dir", required=True, help="queue root directory")
    p_sv.add_argument("--workers", type=int, default=2, help="worker slots to keep filled")
    p_sv.add_argument(
        "--batch", type=int, default=8, help="jobs claimed per worker per round"
    )
    p_sv.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds of heartbeat silence before a worker's leases become stealable",
    )
    p_sv.add_argument("--poll", type=float, default=0.2, help="monitor poll interval in seconds")
    p_sv.add_argument("--retries", type=int, default=1, help="retries per failed job (per worker)")
    p_sv.add_argument(
        "--timeout", type=float, default=None, help="per-job wall-clock timeout in seconds"
    )
    p_sv.add_argument(
        "--deadline", type=float, default=None,
        help="stop the fleet this many seconds from startup (workers stop "
        "claiming; in-flight jobs finish)",
    )
    p_sv.add_argument(
        "--max-restarts", type=int, default=10,
        help="restart budget per worker slot before it is retired",
    )
    p_sv.add_argument(
        "--poison-threshold", type=int, default=None,
        help="max lease generation before a job that keeps killing workers is "
        "quarantined (default: REPRO_POISON_THRESHOLD or 3)",
    )
    p_sv.add_argument(
        "--trace-store", default=None,
        help="on-disk trace store directory handed to every worker",
    )
    p_sv.set_defaults(func=_cmd_supervise)

    p_bk = sub.add_parser(
        "broker",
        help="serve a sweep queue over TCP: a thin, crash-recoverable network "
        "front over a FileQueue directory (all state lives on disk)",
    )
    p_bk.add_argument("--queue-dir", required=True, help="queue root directory (the durable state)")
    p_bk.add_argument(
        "--listen", required=True, metavar="HOST:PORT",
        help="address to listen on (port 0 picks a free port and prints it)",
    )
    p_bk.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds of heartbeat silence before a worker's leases become stealable",
    )
    p_bk.add_argument(
        "--poison-threshold", type=int, default=None,
        help="max lease generation before a job that keeps killing workers is "
        "quarantined (default: REPRO_POISON_THRESHOLD or 3)",
    )
    p_bk.set_defaults(func=_cmd_broker)

    p_vf = sub.add_parser(
        "verify",
        help="differential oracle: pipeline-vs-vector parity, vector-vs-kernel "
        "bit-identity + golden corpus replay",
    )
    p_vf.add_argument(
        "--workload", nargs="+", choices=workload_names(), default=["em3d", "mcf"],
        help="workloads to run through the engines (default: em3d mcf)",
    )
    p_vf.add_argument(
        "--filter", nargs="+", default=["none", "pa", "pc"],
        help="filters per workload (default: none pa pc)",
    )
    p_vf.add_argument("--insts", type=int, default=12_000, help="instructions per parity run")
    p_vf.add_argument("--seed", type=int, default=0)
    p_vf.add_argument("--golden", help="golden corpus directory (default: tests/golden)")
    p_vf.add_argument("--no-golden", action="store_true", help="skip the golden corpus replay")
    p_vf.add_argument(
        "--no-sanitize", action="store_true",
        help="run the parity pairs without the runtime invariant sanitizer",
    )
    p_vf.set_defaults(func=_cmd_verify)

    p_xp = sub.add_parser("export", help="export run results as CSV/JSON")
    p_xp.add_argument("--workload", nargs="*", choices=workload_names(), help="default: all")
    p_xp.add_argument("--filter", choices=[k.value for k in FilterKind], default="none")
    p_xp.add_argument("--format", choices=["csv", "json"], default="csv")
    p_xp.add_argument("--sources", action="store_true", help="include per-prefetcher tallies")
    p_xp.add_argument("--out", help="write to a file instead of stdout")
    _add_common(p_xp)
    p_xp.set_defaults(func=_cmd_export)

    p_bn = sub.add_parser("bench", help="time serial vs parallel vs cached execution")
    p_bn.add_argument("--workload", choices=workload_names(), default=None,
                      help="default: em3d (pool bench) / every workload (--engines bench)")
    p_bn.add_argument("--filter", choices=[k.value for k in FilterKind], default="pa")
    p_bn.add_argument("--runs", type=int, default=5, help="distinct simulations to time")
    p_bn.add_argument("--workers", type=int, default=0, help="parallel processes (0 = one per CPU)")
    p_bn.add_argument("--no-cache", action="store_true", help="skip the disk-cache timing phases")
    p_bn.add_argument("--cache-dir", help="result-cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro)")
    p_bn.add_argument("--json", action="store_true", help="emit the report as JSON")
    p_bn.add_argument(
        "--engines", nargs="+",
        help="engine-axis bench: time each engine per (workload, filter) cell "
        f"({', '.join(KNOWN_ENGINES)}; space- or comma-separated), record "
        "speedups and counter deltas vs the first engine listed, and time the "
        "trace store cold vs warm; writes --out (BENCH_vector.json, or "
        "BENCH_kernel.json when the kernel engine is included)",
    )
    p_bn.add_argument(
        "--out",
        help="engine-axis report path (default: BENCH_vector.json / BENCH_kernel.json)",
    )
    p_bn.add_argument(
        "--lint", action="store_true",
        help="run the static analyzer first and refuse to bench a dirty tree; "
        "the report gains a 'lint' health-counter block",
    )
    p_bn.add_argument(
        "--sweep", action="store_true",
        help="sweep-backend axis: time a job grid serial vs through the "
        "shared-FS queue at 1 and 2 workers, verify bit-identical results, "
        "and record the warm-up amortization; writes BENCH_sweep.json",
    )
    p_bn.add_argument(
        "--baseline", default=None, metavar="BENCH_JSON",
        help="compare this bench's report against a previous BENCH_*.json and "
        "fail on a geomean throughput regression beyond --max-regress",
    )
    p_bn.add_argument(
        "--max-regress", type=float, default=0.25,
        help="allowed fractional geomean slowdown vs --baseline (default 0.25)",
    )
    _add_common(p_bn)
    p_bn.set_defaults(func=_cmd_bench)

    p_ln = sub.add_parser(
        "lint",
        help="AST-based simulator-invariant static analyzer (RL001-RL012)",
        add_help=False,
    )
    p_ln.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to the analyzer (same as python -m repro.lint)",
    )
    p_ln.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        from repro.analysis.exitcodes import EXIT_USAGE

        # Config/trace validation errors are user errors, not crashes:
        # one actionable line, distinct exit code.
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
