"""The distributed-protocol rules, RL007-RL012.

Where RL001-RL006 (:mod:`repro.lint.rules`) guard the simulation core,
these six guard the queue/worker/broker layer — the contracts that span
a socket, a process boundary, or a shared directory, where the two
sides can drift apart without any single module looking wrong.  They
lean on :mod:`repro.lint.flow` for the project-level facts (constant
propagation, the import graph, the wire-protocol extractors); as
everywhere in ``repro.lint``, nothing is imported or executed — a
broken tree still lints.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    call_name,
    class_methods,
    dotted_name,
    iter_with_symbols,
    register,
    self_attr_target,
    string_value,
)
from repro.lint.flow import (
    ClientCall,
    ConstEnv,
    ModuleGraph,
    RequestFields,
    client_calls,
    dispatch_table,
    request_fields,
)
from repro.lint.rules import _yield

#: Modules whose on-disk records other processes trust (RL007).  A torn
#: write in any of these is a corrupt lease, memo, or journal head that
#: some *other* worker will read back and believe.
PERSISTENCE_MODULES = (
    "repro.analysis.workqueue",
    "repro.analysis.netqueue",
    "repro.analysis.checkpoint",
    "repro.analysis.result_cache",
    "repro.trace.store",
)

#: The module every sealed write must flow through (RL007).
DISKIO_MODULE = "repro.common.diskio"

#: The exit-code registry module (RL008).
EXITCODES_MODULE = "repro.analysis.exitcodes"

#: Packages / modules whose processes talk exit codes to each other
#: (RL008's literal scan).  ``repro.analysis`` covers worker, broker
#: and supervisor; ``repro.cli`` is the worker entry point;
#: ``repro.common.faults`` injects the chaos death.
EXIT_MODULES = ("repro.analysis", "repro.cli", "repro.common.faults")

#: The worker entry point and the triage side (RL008's import check).
WORKER_ENTRY_MODULE = "repro.cli"
SUPERVISOR_MODULE = "repro.analysis.supervisor"

#: The TCP transport module: client class, broker class (RL009/RL010).
NETQUEUE_MODULE = "repro.analysis.netqueue"
CLIENT_CLASS = "NetQueue"
BROKER_CLASS = "Broker"

#: The fault-site declarations RL011 audits for side symmetry.
FAULTS_MODULE = "repro.common.faults"

#: Modules that open sockets / files / locks next to a process or host
#: boundary (RL012).
HANDLE_MODULES = (
    "repro.analysis.netqueue",
    "repro.analysis.workqueue",
    "repro.analysis.supervisor",
    "repro.analysis.backend",
)

#: Handle factories whose result must not leak (RL012).
HANDLE_FACTORIES = frozenset(
    {
        "open",
        "socket.socket",
        "socket.create_connection",
        "create_connection",
        "SharedMemory",
        "shared_memory.SharedMemory",
    }
)


def _assign_dict(
    mod: ModuleInfo, name: str
) -> Optional[Tuple[ast.Dict, int]]:
    """The module-level dict literal assigned to ``name``, if any."""
    for node in mod.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, ast.Dict):
                    return value, node.lineno
                return None
    return None


def _find_class(mod: ModuleInfo, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


# ======================================================================
# RL007 — atomic persistence
# ======================================================================
@register
class AtomicPersistenceRule(Rule):
    """Persistence modules never truncate-write a record in place.

    Queue leases, broker snapshots, cache memos and trace archives are
    read by *other* processes that trust what they find; a bare
    ``open(path, "w")`` (or ``Path.write_text``/``write_bytes``) leaves
    a half-written record visible to them the moment the file is
    truncated.  Every durable write in a persistence module must flow
    through the sealed-write helpers in :mod:`repro.common.diskio`
    (``atomic_write_json`` / ``atomic_write_bytes``: temp sibling plus
    ``os.replace``).  Append mode is exempt — the checkpoint journal's
    ``open(path, "a")`` + flush + fsync discipline never truncates, and
    readers tolerate a torn tail by design.
    """

    id = "RL007"
    title = "atomic persistence"
    severity = "error"
    rationale = "a torn write in a queue/cache directory is a record another worker trusts"

    def check(self, project: Project) -> Iterator[Finding]:
        for name in PERSISTENCE_MODULES:
            mod = project.module(name)
            if mod is not None:
                yield from self._check_module(mod)

    def _check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node, symbol in iter_with_symbols(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode is not None and ("w" in mode or "x" in mode or "+" in mode):
                    yield from _yield(self.finding(
                        mod, node.lineno,
                        f"bare open(..., {mode!r}) in a persistence module: a "
                        "truncate-write exposes a torn record to concurrent "
                        f"readers — route it through {DISKIO_MODULE}."
                        "atomic_write_bytes/json (append mode is exempt)",
                        symbol=f"{symbol}:open-{mode}",
                    ))
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text", "write_bytes"
            ):
                yield from _yield(self.finding(
                    mod, node.lineno,
                    f".{func.attr}() in a persistence module truncates in "
                    f"place: route it through {DISKIO_MODULE}."
                    "atomic_write_bytes/json so readers never see a torso",
                    symbol=f"{symbol}:{func.attr}",
                ))

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        if len(node.args) >= 2:
            return string_value(node.args[1])
        for kw in node.keywords:
            if kw.arg == "mode":
                return string_value(kw.value)
        return None  # default "r": not a write


# ======================================================================
# RL008 — exit-code registry
# ======================================================================
@register
class ExitCodeRegistryRule(Rule):
    """Process exit codes come from the registry, and the supervisor
    triages every code the registry says it must.

    A worker's exit status is a one-byte wire protocol between the
    dying process and the :class:`FleetSupervisor` that decides whether
    the death costs crash budget.  Direction one: every ``sys.exit`` /
    ``os._exit`` integer in the distributed layer (and every non-0/1
    ``return`` literal in a CLI command) must resolve — possibly
    through aliases and lazy imports — to a constant registered in
    :mod:`repro.analysis.exitcodes`.  Direction two: the supervisor
    module must reference every constant in ``SUPERVISED`` (so a newly
    registered special code cannot be silently lumped into the generic
    crash branch), must never compare the exit code against an
    unregistered value, and both the worker entry point and the
    supervisor must actually import the registry.
    """

    id = "RL008"
    title = "exit-code registry"
    severity = "error"
    rationale = "an exit code one side never heard of is a crash, not a protocol"

    def check(self, project: Project) -> Iterator[Finding]:
        env = ConstEnv(project)
        reg_mod = project.module(EXITCODES_MODULE)
        registry = self._registry(reg_mod, env, "CODES") if reg_mod else None
        if registry is None:
            mod = reg_mod or (project.modules[0] if project.modules else None)
            if mod is not None:
                yield from _yield(self.finding(
                    mod, 1,
                    f"{EXITCODES_MODULE} does not define a CODES registry "
                    "dict (named constant -> description): exit codes "
                    "cannot be audited",
                    symbol="CODES:missing",
                ))
            return
        codes, _ = registry

        yield from self._check_literals(project, env, codes)
        yield from self._check_supervisor(project, env, reg_mod, codes)

    # -- direction one: literals resolve to the registry ----------------
    def _check_literals(
        self, project: Project, env: ConstEnv, codes: Dict[int, str]
    ) -> Iterator[Finding]:
        for mod in project.in_packages(EXIT_MODULES):
            if mod.name == EXITCODES_MODULE:
                continue
            for node, symbol in iter_with_symbols(mod.tree):
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func) or call_name(node)
                    if name not in ("sys.exit", "os._exit", "exit", "_exit"):
                        continue
                    if not node.args:
                        continue
                    yield from self._check_exit_value(
                        mod, env, codes, node.args[0], symbol, name
                    )
                elif isinstance(node, ast.Return) and node.value is not None:
                    value = node.value
                    if (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, int)
                        and not isinstance(value.value, bool)
                        and value.value not in (0, 1)
                    ):
                        yield from _yield(self.finding(
                            mod, value.lineno,
                            f"bare exit-status literal {value.value} returned "
                            "from a distributed-layer function: name it in "
                            f"{EXITCODES_MODULE} so the supervisor's triage "
                            "and the worker agree on what it means",
                            symbol=f"{symbol}:return-{value.value}",
                        ))

    def _check_exit_value(
        self,
        mod: ModuleInfo,
        env: ConstEnv,
        codes: Dict[int, str],
        arg: ast.expr,
        symbol: str,
        via: str,
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant):
            if isinstance(arg.value, int) and not isinstance(arg.value, bool):
                yield from _yield(self.finding(
                    mod, arg.lineno,
                    f"{via}({arg.value}) uses a bare integer literal: use "
                    f"the named constant from {EXITCODES_MODULE} so both "
                    "sides of the exit-code protocol share one definition",
                    symbol=f"{symbol}:{via}-literal",
                ))
            return
        resolved = env.resolve_int(mod.name, arg)
        if resolved is not None and resolved not in codes:
            yield from _yield(self.finding(
                mod, arg.lineno,
                f"{via}(...) resolves to {resolved}, which is not "
                f"registered in {EXITCODES_MODULE}.CODES: register it "
                "with a one-line description",
                symbol=f"{symbol}:{via}-unregistered",
            ))

    # -- direction two: the supervisor holds up its end -----------------
    def _check_supervisor(
        self,
        project: Project,
        env: ConstEnv,
        reg_mod: Optional[ModuleInfo],
        codes: Dict[int, str],
    ) -> Iterator[Finding]:
        graph = ModuleGraph(project)
        for name in (WORKER_ENTRY_MODULE, SUPERVISOR_MODULE):
            mod = project.module(name)
            if mod is None:
                continue
            if not graph.imports_module(name, EXITCODES_MODULE):
                yield from _yield(self.finding(
                    mod, 1,
                    f"{name} does not import {EXITCODES_MODULE}: this side "
                    "of the exit-code protocol is running on hard-coded "
                    "numbers",
                    symbol=f"{name}:no-registry-import",
                ))

        sup = project.module(SUPERVISOR_MODULE)
        if sup is None or reg_mod is None:
            return
        supervised = self._registry(reg_mod, env, "SUPERVISED")
        if supervised is None:
            yield from _yield(self.finding(
                reg_mod, 1,
                f"{EXITCODES_MODULE} does not define a SUPERVISED dict "
                "(which codes the supervisor must triage explicitly)",
                symbol="SUPERVISED:missing",
            ))
            return
        supervised_codes, supervised_names = supervised

        referenced = {
            node.id for node in ast.walk(sup.tree) if isinstance(node, ast.Name)
        }
        for value, const_name in sorted(supervised_names.items()):
            # The constant itself, or a local alias resolving to its
            # value (WORKER_EXIT_PRESSURE = EXIT_PRESSURE), both count.
            aliased = any(
                env.resolve(SUPERVISOR_MODULE, name) == value for name in referenced
            )
            if const_name not in referenced and not aliased:
                yield from _yield(self.finding(
                    sup, 1,
                    f"supervisor never references {const_name} (exit code "
                    f"{value}), which {EXITCODES_MODULE}.SUPERVISED says "
                    "must be triaged explicitly — it is falling into the "
                    "generic crash branch",
                    symbol=f"supervised:{const_name}:unhandled",
                ))

        for node, symbol in iter_with_symbols(sup.tree):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                continue
            sides = [node.left, node.comparators[0]]
            names = [s.id for s in sides if isinstance(s, ast.Name)]
            if "code" not in names:
                continue
            for side in sides:
                if isinstance(side, ast.Name) and side.id == "code":
                    continue
                value = env.resolve_int(SUPERVISOR_MODULE, side)
                if value is not None and value not in codes:
                    yield from _yield(self.finding(
                        sup, node.lineno,
                        f"supervisor triage compares the worker exit code "
                        f"against {value}, which is not registered in "
                        f"{EXITCODES_MODULE}.CODES",
                        symbol=f"{symbol}:triage-{value}",
                    ))

    def _registry(
        self, reg_mod: ModuleInfo, env: ConstEnv, name: str
    ) -> Optional[Tuple[Dict[int, str], Dict[int, str]]]:
        """``name``'s dict in the registry module: value -> description,
        plus value -> defining constant name (keys must be Names)."""
        found = _assign_dict(reg_mod, name)
        if found is None:
            return None
        node, _ = found
        codes: Dict[int, str] = {}
        names: Dict[int, str] = {}
        for key, val in zip(node.keys, node.values):
            if key is None:
                continue
            value = env.resolve_int(reg_mod.name, key)
            if value is None:
                continue
            codes[value] = string_value(val) or ""
            if isinstance(key, ast.Name):
                names[value] = key.id
        return codes, names


# ======================================================================
# RL009 — wire-protocol parity
# ======================================================================
@register
class WireParityRule(Rule):
    """The client's op vocabulary and the broker's dispatch table match.

    The two halves of the TCP transport live a socket apart: an op the
    client sends but the broker never dispatches is an "unknown op"
    error discovered at runtime; a dispatch branch no client call
    reaches is dead protocol.  Beyond the op *names*, the field sets
    must agree — every ``request["field"]`` a handler requires must be
    a key in the client's payload literal, and every payload key must
    be read (required or optional) by the handler, following the
    request one level into same-class helpers.  Dynamic op strings on
    either side defeat the audit and are flagged outright.
    """

    id = "RL009"
    title = "wire-protocol parity"
    severity = "error"
    rationale = "a desynced op name or field set is a runtime protocol error"

    def check(self, project: Project) -> Iterator[Finding]:
        mod = project.module(NETQUEUE_MODULE)
        if mod is None:
            return
        client = _find_class(mod, CLIENT_CLASS)
        broker = _find_class(mod, BROKER_CLASS)
        if client is None or broker is None:
            missing = CLIENT_CLASS if client is None else BROKER_CLASS
            yield from _yield(self.finding(
                mod, 1,
                f"{NETQUEUE_MODULE} does not define class {missing}: the "
                "wire protocol cannot be audited",
                symbol=f"{missing}:missing",
            ))
            return
        dispatch = class_methods(broker).get("_dispatch")
        if dispatch is None:
            yield from _yield(self.finding(
                mod, broker.lineno,
                f"{BROKER_CLASS} has no _dispatch method: the op table "
                "cannot be extracted",
                symbol=f"{BROKER_CLASS}._dispatch:missing",
            ))
            return

        calls = client_calls(client)
        table = dispatch_table(dispatch)

        for line in table.dynamic:
            yield from _yield(self.finding(
                mod, line,
                "dispatch compares the op against a non-literal: op names "
                "must be auditable string constants",
                symbol=f"{BROKER_CLASS}._dispatch:dynamic-op",
            ))
        client_ops: Dict[str, ClientCall] = {}
        for call in calls:
            if call.op is None:
                yield from _yield(self.finding(
                    mod, call.line,
                    f"{call.symbol} sends a non-literal op name: op names "
                    "must be auditable string constants",
                    symbol=f"{call.symbol}:dynamic-op",
                ))
            else:
                client_ops.setdefault(call.op, call)

        for op, call in sorted(client_ops.items()):
            if op not in table.ops:
                yield from _yield(self.finding(
                    mod, call.line,
                    f"client sends op {op!r} but {BROKER_CLASS}._dispatch "
                    "has no branch for it: the broker will answer "
                    "'unknown op' at runtime",
                    symbol=f"op:{op}:unhandled",
                ))
        for op, line in sorted(table.ops.items()):
            if op not in client_ops:
                yield from _yield(self.finding(
                    mod, line,
                    f"{BROKER_CLASS}._dispatch handles op {op!r} but no "
                    f"{CLIENT_CLASS} call site sends it: dead protocol "
                    "(or a client someone forgot to write)",
                    symbol=f"op:{op}:unsent",
                ))

        branch_fields = self._branch_fields(broker, dispatch)
        for call in calls:
            if call.op is None or call.op not in branch_fields:
                continue
            if call.payload_keys is None:
                continue  # dynamic payload: nothing auditable here
            fields = branch_fields[call.op]
            sent = call.payload_keys | {"op"}
            for name, line in sorted(fields.required.items()):
                if name not in sent:
                    yield from _yield(self.finding(
                        mod, call.line,
                        f"handler for op {call.op!r} requires request "
                        f"field {name!r} (line {line}) but {call.symbol} "
                        "does not send it: KeyError on the broker",
                        symbol=f"op:{call.op}:{name}:missing",
                    ))
            read = set(fields.required) | set(fields.optional) | {"op"}
            for name in sorted(call.payload_keys):
                if name not in read:
                    yield from _yield(self.finding(
                        mod, call.line,
                        f"{call.symbol} sends field {name!r} with op "
                        f"{call.op!r} but the handler never reads it: "
                        "dead payload (or a typo'd field name)",
                        symbol=f"op:{call.op}:{name}:unread",
                    ))

    def _branch_fields(
        self, broker: ast.ClassDef, dispatch: ast.FunctionDef
    ) -> Dict[str, RequestFields]:
        """Field reads per dispatched op, following one helper level."""
        methods = class_methods(broker)
        by_op: Dict[str, RequestFields] = {}
        for node in ast.walk(dispatch):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and isinstance(test.left, ast.Name)
                and test.left.id == "op"
            ):
                continue
            op = string_value(test.comparators[0])
            if op is None:
                continue
            fields = RequestFields()
            for stmt in node.body:
                branch = request_fields(stmt)
                fields.merge(branch)
                fields.forwarded_to.extend(branch.forwarded_to)
            for helper in fields.forwarded_to:
                target = methods.get(helper)
                if target is None:
                    continue
                params = [a.arg for a in target.args.args if a.arg != "self"]
                if params:
                    fields.merge(request_fields(target, param=params[0]))
            by_op.setdefault(op, fields)
        return by_op


# ======================================================================
# RL010 — retry idempotency
# ======================================================================
@register
class RetryIdempotencyRule(Rule):
    """Only audited-idempotent ops run under the retry wrapper, and an
    application error never re-enters the retry loop.

    ``NetQueue._call`` replays its op after a connection error — safe
    only when the replay is idempotent, which is a property someone has
    to *audit*, not assume.  The manifest ``IDEMPOTENT_OPS`` in the
    transport module records that audit: a ``_call`` on an undeclared
    op fails here, and a declared op with no remaining call site is a
    stale audit.  Separately, a ``{"ok": false}`` response is a broker
    *decision*, not a transport fault — ``_call`` must raise it out of
    the loop, and no retrying ``except`` may be broad enough to swallow
    that exception back into another attempt.
    """

    id = "RL010"
    title = "retry idempotency"
    severity = "error"
    rationale = "replaying a non-idempotent op duplicates work; retrying an app error loops on it"

    MANIFEST_NAME = "IDEMPOTENT_OPS"

    def check(self, project: Project) -> Iterator[Finding]:
        mod = project.module(NETQUEUE_MODULE)
        if mod is None:
            return
        env = ConstEnv(project)
        manifest = env.resolve(NETQUEUE_MODULE, self.MANIFEST_NAME)
        if not isinstance(manifest, frozenset):
            yield from _yield(self.finding(
                mod, 1,
                f"{NETQUEUE_MODULE} does not define an {self.MANIFEST_NAME} "
                "frozenset of string literals: retried ops cannot be "
                "audited for idempotency",
                symbol=f"{self.MANIFEST_NAME}:missing",
            ))
            return

        client = _find_class(mod, CLIENT_CLASS)
        calls = client_calls(client) if client is not None else []
        called_ops: Set[str] = set()
        for call in calls:
            if call.op is None:
                continue  # RL009 already flags dynamic op names
            called_ops.add(call.op)
            if call.op not in manifest:
                yield from _yield(self.finding(
                    mod, call.line,
                    f"{call.symbol} executes op {call.op!r} under the retry "
                    f"wrapper but {self.MANIFEST_NAME} does not declare it "
                    "idempotent: audit the replay story, then add it",
                    symbol=f"op:{call.op}:undeclared",
                ))
        for op in sorted(manifest - called_ops):
            yield from _yield(self.finding(
                mod, 1,
                f"{self.MANIFEST_NAME} declares op {op!r} idempotent but "
                "no call site executes it: remove the stale audit entry",
                symbol=f"op:{op}:stale-manifest",
            ))

        if client is not None:
            yield from self._check_loop(mod, client)

    def _check_loop(self, mod: ModuleInfo, client: ast.ClassDef) -> Iterator[Finding]:
        call_method = class_methods(client).get("_call")
        if call_method is None:
            yield from _yield(self.finding(
                mod, client.lineno,
                f"{CLIENT_CLASS} has no _call method: the retry loop "
                "cannot be audited",
                symbol=f"{CLIENT_CLASS}._call:missing",
            ))
            return
        raised = self._ok_false_raises(call_method)
        if raised is None:
            yield from _yield(self.finding(
                mod, call_method.lineno,
                '_call never checks response.get("ok") and raises: an '
                "application error would be returned (or worse, retried) "
                "instead of surfacing as an exception",
                symbol=f"{CLIENT_CLASS}._call:no-ok-check",
            ))
            return
        for handler in ast.walk(call_method):
            if not isinstance(handler, ast.ExceptHandler):
                continue
            if not any(isinstance(n, ast.Continue) for n in ast.walk(handler)):
                continue
            caught = self._caught_names(handler)
            broad = caught & {raised, "Exception", "BaseException"}
            if broad:
                yield from _yield(self.finding(
                    mod, handler.lineno,
                    f"retrying except clause catches {sorted(broad)} — it "
                    f"would swallow the {raised} raised for an "
                    '{"ok": false} response and re-enter the retry loop '
                    "on an application error",
                    symbol=f"{CLIENT_CLASS}._call:retries-app-error",
                ))

    @staticmethod
    def _ok_false_raises(func: ast.FunctionDef) -> Optional[str]:
        """The exception name raised when ``response.get("ok")`` is falsy."""
        for node in ast.walk(func):
            if not isinstance(node, ast.If):
                continue
            has_ok_get = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "get"
                and sub.args
                and string_value(sub.args[0]) == "ok"
                for sub in ast.walk(node.test)
            )
            if not has_ok_get:
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Raise) and sub.exc is not None:
                        exc = sub.exc
                        if isinstance(exc, ast.Call):
                            return call_name(exc) or "Exception"
                        if isinstance(exc, ast.Name):
                            return exc.id
        return None

    @staticmethod
    def _caught_names(handler: ast.ExceptHandler) -> Set[str]:
        if handler.type is None:
            return {"BaseException"}  # a bare except catches everything
        names: Set[str] = set()
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for t in types:
            name = dotted_name(t)
            if name:
                names.add(name.split(".")[-1])
        return names


# ======================================================================
# RL011 — fault-site symmetry
# ======================================================================
@register
class FaultSymmetryRule(Rule):
    """Two-sided fault sites are injectable and tested on both sides.

    The ``network`` site names its side in the fault key (``client|op``
    vs ``broker|op``) — chaos coverage of one side says nothing about
    the other, so both prefixes must exist at ``fault_point`` call
    sites *and* be targeted by a ``match=`` filter somewhere under
    ``tests/``.  The ``pressure`` site is one registry entry injected
    from two kinds (``enospc`` / ``mem-pressure``): every call site
    must pass ``key=`` and ``attempt=`` (or plans cannot target a
    window), and both kinds must appear in the test corpus.
    """

    id = "RL011"
    title = "fault-site symmetry"
    severity = "error"
    rationale = "a fault site tested on one side only is half a resilience promise"

    _NETWORK_SIDES = ("client", "broker")
    _PRESSURE_KINDS = ("enospc", "mem-pressure")

    def check(self, project: Project) -> Iterator[Finding]:
        faults_mod = project.module(FAULTS_MODULE)
        if faults_mod is None:
            return
        sites = self._site_names(faults_mod)
        corpus = "\n".join(project.test_sources.values())
        if "network" in sites:
            yield from self._check_network(project, faults_mod, corpus)
        if "pressure" in sites:
            yield from self._check_pressure(project, corpus)

    def _check_network(
        self, project: Project, faults_mod: ModuleInfo, corpus: str
    ) -> Iterator[Finding]:
        side_sites: Dict[str, Tuple[ModuleInfo, int]] = {}
        for mod, node, site in self._fault_points(project):
            if site != "network":
                continue
            prefix = self._key_prefix(node)
            if prefix is None:
                yield from _yield(self.finding(
                    mod, node.lineno,
                    "network fault_point whose key does not start with a "
                    "'client|' / 'broker|' literal: the side cannot be "
                    "audited or targeted",
                    symbol="network:unsided-key",
                ))
                continue
            side_sites.setdefault(prefix, (mod, node.lineno))
        for side in self._NETWORK_SIDES:
            if side not in side_sites:
                yield from _yield(self.finding(
                    faults_mod, 1,
                    f"fault site 'network' has no injectable {side}-side "
                    f"call (no fault_point key starting '{side}|'): the "
                    f"{side} half of the transport is chaos-blind",
                    symbol=f"network:{side}:uninjectable",
                ))
            elif f"match={side}|" not in corpus:
                mod, line = side_sites[side]
                yield from _yield(self.finding(
                    mod, line,
                    f"the {side} side of the 'network' fault site is never "
                    f"exercised (no 'match={side}|' plan under tests/)",
                    symbol=f"network:{side}:untested",
                ))

    def _check_pressure(self, project: Project, corpus: str) -> Iterator[Finding]:
        for mod, node, site in self._fault_points(project):
            if site != "pressure":
                continue
            kwargs = {kw.arg for kw in node.keywords}
            for required in ("key", "attempt"):
                if required not in kwargs:
                    yield from _yield(self.finding(
                        mod, node.lineno,
                        f"pressure fault_point without {required}=: plans "
                        "cannot open a deterministic pressure window "
                        "against this call site",
                        symbol=f"pressure:no-{required}",
                    ))
        for kind in self._PRESSURE_KINDS:
            if f"{kind}@pressure" not in corpus:
                mod = project.module(DISKIO_MODULE) or project.modules[0]
                yield from _yield(self.finding(
                    mod, 1,
                    f"pressure kind {kind!r} is never exercised (no "
                    f"'{kind}@pressure' plan under tests/): half the "
                    "pressure model is untested",
                    symbol=f"pressure:{kind}:untested",
                ))

    def _fault_points(
        self, project: Project
    ) -> Iterator[Tuple[ModuleInfo, ast.Call, str]]:
        for mod in project.modules:
            if mod.name.startswith("repro.lint"):
                continue
            for node in ast.walk(mod.tree):
                if (
                    isinstance(node, ast.Call)
                    and call_name(node) == "fault_point"
                    and node.args
                ):
                    site = string_value(node.args[0])
                    if site is not None:
                        yield mod, node, site

    @staticmethod
    def _key_prefix(node: ast.Call) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            value = kw.value
            text: Optional[str] = None
            if isinstance(value, ast.JoinedStr) and value.values:
                text = string_value(value.values[0])
            else:
                text = string_value(value)
            if text is not None and "|" in text:
                return text.split("|", 1)[0]
        return None

    def _site_names(self, faults_mod: ModuleInfo) -> Set[str]:
        found = _assign_dict(faults_mod, "SITES")
        if found is None:
            return set()
        node, _ = found
        return {
            k for k in (
                string_value(key) for key in node.keys if key is not None
            ) if k is not None
        }


# ======================================================================
# RL012 — handle lifecycle
# ======================================================================
@register
class HandleLifecycleRule(Rule):
    """OS handles near a boundary are released on every path and shed
    before pickling.

    A socket or file handle acquired in a boundary module and bound to
    a plain local either leaks when an exception skips its ``close()``
    or poisons a pickle when it rides along.  A local handle binding is
    accepted only when the function (a) closes it in a ``finally``, (b)
    returns it (ownership transfer — the caller now owns the close), or
    (c) parks it on an attribute (``self._sock = sock``), which hands
    lifecycle duty to the class — whose handle-bearing attributes must
    in turn be covered by ``__getstate__``/``__reduce__`` so the handle
    is shed before any pickle.  ``with``-statement acquisitions are
    inherently safe and never flagged.
    """

    id = "RL012"
    title = "handle lifecycle"
    severity = "error"
    rationale = "a leaked socket survives the sweep; a pickled one kills the payload"

    def check(self, project: Project) -> Iterator[Finding]:
        for name in HANDLE_MODULES:
            mod = project.module(name)
            if mod is None:
                continue
            yield from self._check_locals(mod)
            yield from self._check_pickle_shed(mod)

    def _check_locals(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node, symbol in iter_with_symbols(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(mod, node, symbol)

    @staticmethod
    def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
        """Walk a function's body without descending into nested defs
        (those get their own :meth:`_check_function` visit)."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_function(
        self, mod: ModuleInfo, func: ast.AST, symbol: str
    ) -> Iterator[Finding]:
        acquisitions: List[Tuple[str, str, int]] = []  # (var, factory, line)
        for stmt in self._own_nodes(func):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            factory = dotted_name(stmt.value.func) or call_name(stmt.value)
            if factory not in HANDLE_FACTORIES:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    acquisitions.append((target.id, factory, stmt.lineno))
        if not acquisitions:
            return
        closed = self._closed_in_finally(func)
        returned = self._returned_names(func)
        parked = self._parked_names(func)
        for var, factory, line in acquisitions:
            if var in closed or var in returned or var in parked:
                continue
            yield from _yield(self.finding(
                mod, line,
                f"{factory}() handle bound to local {var!r} with no "
                "finally-close, no ownership-transferring return, and no "
                "attribute park: an exception on any path leaks it",
                symbol=f"{symbol}:{var}:leak",
            ))

    @staticmethod
    def _closed_in_finally(func: ast.AST) -> Set[str]:
        closed: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("close", "shutdown", "unlink", "release")
                        and isinstance(sub.func.value, ast.Name)
                    ):
                        closed.add(sub.func.value.id)
        return closed

    @staticmethod
    def _returned_names(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        return names

    @staticmethod
    def _parked_names(func: ast.AST) -> Set[str]:
        """Locals assigned onto any attribute (``self._sock = sock``)."""
        parked: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Attribute) for t in node.targets):
                continue
            if isinstance(node.value, ast.Name):
                parked.add(node.value.id)
        return parked

    def _check_pickle_shed(self, mod: ModuleInfo) -> Iterator[Finding]:
        """RL002's handle-on-self check, extended to RL012's module set."""
        from repro.lint.rules import PoolSafetyRule

        if mod.name in PoolSafetyRule.boundary_modules():
            return  # RL002 already owns this module; avoid double findings
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = class_methods(node)
            if "__reduce__" in methods or "__getstate__" in methods:
                continue
            for method in methods.values():
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    if not isinstance(stmt.value, ast.Call):
                        continue
                    factory = dotted_name(stmt.value.func) or call_name(stmt.value)
                    if factory not in HANDLE_FACTORIES:
                        continue
                    for target in stmt.targets:
                        attr = self_attr_target(target)
                        if attr is None:
                            continue
                        yield from _yield(self.finding(
                            mod, stmt.lineno,
                            f"{node.name}.{attr} parks a live {factory}() "
                            "handle without __reduce__/__getstate__: the "
                            "handle rides into any pickle of this object",
                            symbol=f"{node.name}.{attr}:unshed",
                        ))

