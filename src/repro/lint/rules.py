"""The six repo-specific invariant rules, RL001-RL006.

Each rule encodes one cross-cutting contract that the runtime layers
(result cache, process pool, stat registry, fault harness, sanitizer)
*assume* but cannot themselves enforce at review time.  The rule table
in ``docs/architecture.md`` is the contributor-facing reference; the
docstrings here are the authoritative statement of what is checked.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    call_name,
    class_methods,
    dotted_name,
    find_classes,
    iter_with_symbols,
    register,
    self_attr_target,
    string_value,
)

#: Packages whose modules run inside the simulation hot loop.  The
#: result cache and golden corpus assume a run is a pure function of
#: (config, trace, seed); nondeterminism anywhere in these packages
#: silently breaks that assumption.
HOT_PACKAGES = ("repro.core", "repro.mem", "repro.filters", "repro.prefetch")

#: Call targets that submit work across the process boundary (RL002).
POOL_SUBMIT_NAMES = frozenset({"run_jobs", "execute_batch"})

#: The module that must declare the fault-site registry (RL004).
FAULTS_MODULE = "repro.common.faults"

#: The module that must declare the sanitizer check-walk manifest (RL006).
SANITIZE_MODULE = "repro.sanitize"

#: The module holding the machine-configuration dataclasses (RL005).
CONFIG_MODULE = "repro.common.config"

#: The CLI front end (RL005's flag-coverage half).
CLI_MODULE = "repro.cli"


def _yield(finding: Optional[Finding]) -> Iterator[Finding]:
    if finding is not None:
        yield finding


# ======================================================================
# RL001 — determinism in hot paths
# ======================================================================
@register
class DeterminismRule(Rule):
    """No wall-clock, global RNG, or unordered-set iteration in hot paths.

    A simulation result is cached, journaled, golden-replayed and
    compared across engines under the promise that the same (config,
    trace, seed) always produces bit-identical counters.  ``random``,
    ``time``/``datetime`` reads, ``numpy``'s *global* RNG, and
    iteration over unordered sets (hash order varies with PYTHONHASHSEED
    for str/bytes keys, and with insertion history in general) all break
    that promise invisibly.
    """

    id = "RL001"
    title = "hot-path determinism"
    severity = "error"
    rationale = "result cache / golden corpus need runs to be pure in config+trace+seed"

    _BANNED_IMPORTS = {"random", "time", "datetime"}
    _BANNED_CALLS = {
        "time.time", "time.perf_counter", "time.monotonic", "time.process_time",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    }
    #: Stateful global-RNG entry points (seeded `default_rng(seed)` is fine).
    _BANNED_NP_RANDOM = {
        "random", "rand", "randn", "randint", "choice", "shuffle",
        "permutation", "normal", "uniform", "seed",
    }

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.in_packages(HOT_PACKAGES):
            yield from self._check_module(mod)

    def _check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node, symbol in iter_with_symbols(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._BANNED_IMPORTS:
                        yield from _yield(self.finding(
                            mod, node.lineno,
                            f"import of nondeterministic module {alias.name!r} in a "
                            "hot-path package (seeded inputs only)",
                            symbol=f"import.{alias.name}",
                        ))
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self._BANNED_IMPORTS:
                    yield from _yield(self.finding(
                        mod, node.lineno,
                        f"import from nondeterministic module {node.module!r} in a "
                        "hot-path package (seeded inputs only)",
                        symbol=f"import.{node.module}",
                    ))
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in self._BANNED_CALLS:
                    yield from _yield(self.finding(
                        mod, node.lineno,
                        f"call to {name}() makes the run depend on the wall clock",
                        symbol=f"{symbol}:{name}",
                    ))
                elif self._is_global_np_random(name):
                    yield from _yield(self.finding(
                        mod, node.lineno,
                        f"numpy global-RNG call {name}() bypasses the run seed "
                        "(use a seeded np.random.default_rng instead)",
                        symbol=f"{symbol}:{name}",
                    ))
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if self._is_unordered_set_expr(iterable):
                    yield from _yield(self.finding(
                        mod, iterable.lineno,
                        "iteration over an unordered set: wrap in sorted(...) so "
                        "downstream state updates are order-stable",
                        symbol=f"{symbol}:set-iteration",
                    ))

    def _is_global_np_random(self, name: str) -> bool:
        parts = name.split(".")
        return (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in self._BANNED_NP_RANDOM
        )

    def _is_unordered_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and call_name(node) in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_unordered_set_expr(node.left) or self._is_unordered_set_expr(
                node.right
            )
        return False


# ======================================================================
# RL002 — process-pool safety
# ======================================================================
@register
class PoolSafetyRule(Rule):
    """Nothing unpicklable may flow into a pool submission.

    ``run_jobs``/``execute_batch`` pickle their payloads into worker
    processes.  Lambdas and nested closures fail to pickle at runtime —
    in the middle of a sweep, after the cheap jobs already ran.  The
    rule also flags pool-layer classes that stash OS handles
    (``open(...)``, ``threading``/``multiprocessing`` locks) on ``self``
    without a ``__reduce__``/``__getstate__`` override, since those
    objects poison any payload they end up inside.
    """

    id = "RL002"
    title = "process-pool safety"
    severity = "error"
    rationale = "pool payloads must pickle; failures surface mid-sweep otherwise"

    #: Modules whose classes are on (or next to) the process boundary.
    _BOUNDARY_MODULES = (
        "repro.analysis.parallel",
        "repro.analysis.resilience",
        "repro.analysis.netqueue",
    )
    _HANDLE_FACTORIES = {
        "open",
        "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
        "threading.Lock", "threading.RLock", "threading.Condition",
        "multiprocessing.Lock", "multiprocessing.RLock",
        "socket.socket",
    }

    def check(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            yield from self._check_submissions(mod)
        for mod_name in self._BOUNDARY_MODULES:
            mod = project.module(mod_name)
            if mod is not None:
                yield from self._check_handle_state(mod)

    def _check_submissions(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node, symbol in iter_with_symbols(mod.tree):
            if not isinstance(node, ast.Call) or call_name(node) not in POOL_SUBMIT_NAMES:
                continue
            target = call_name(node)
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield from _yield(self.finding(
                            mod, sub.lineno,
                            f"lambda passed into {target}(): lambdas cannot cross "
                            "the process boundary (define a module-level function)",
                            symbol=f"{symbol}:{target}:lambda",
                        ))
                    elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from _yield(self.finding(
                            mod, sub.lineno,
                            f"nested function {sub.name!r} passed into {target}(): "
                            "closures cannot cross the process boundary",
                            symbol=f"{symbol}:{target}:{sub.name}",
                        ))

    def _check_handle_state(self, mod: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = class_methods(node)
            if "__reduce__" in methods or "__getstate__" in methods:
                continue
            for method in methods.values():
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    value = stmt.value
                    if not isinstance(value, ast.Call):
                        continue
                    factory = dotted_name(value.func) or call_name(value)
                    if factory not in self._HANDLE_FACTORIES:
                        continue
                    for target in stmt.targets:
                        attr = self_attr_target(target)
                        if attr is None:
                            continue
                        yield from _yield(self.finding(
                            mod, stmt.lineno,
                            f"{node.name}.{attr} holds a live {factory}() handle in a "
                            "pool-boundary module without __reduce__/__getstate__: "
                            "it will poison any pickled payload it reaches",
                            symbol=f"{node.name}.{attr}",
                        ))

    # docs helper: the boundary-module tuple is part of the contract
    @classmethod
    def boundary_modules(cls) -> Tuple[str, ...]:
        return cls._BOUNDARY_MODULES


# ======================================================================
# RL003 — batched-stat flush discipline
# ======================================================================
@register
class StatDisciplineRule(Rule):
    """Every batched ``_n_*`` counter is folded (and zeroed) by a flush hook.

    Hot-path models batch event counts in plain ``_n_*`` integer
    attributes and register a flush hook via ``bind_flush`` that folds
    them into the stats dict.  Three failure modes are checked:

    * a class bumps ``self._n_x`` but never registers a flush hook — the
      count silently never reaches the stats tree;
    * a registered hook omits one of the class's ``_n_*`` attributes —
      that one counter is dropped at every read;
    * a hook folds without zeroing — reads double-count (the runtime
      ``check_flush_idempotent`` sanitizer catches this late; the lint
      catches it at review).

    Plus one project-level check: ``detach_flush`` must be called under
    ``repro.core`` so stats trees become plain data before pickling.
    """

    id = "RL003"
    title = "stat-flush discipline"
    severity = "error"
    rationale = "unflushed counters silently vanish; unzeroed hooks double-count"

    def check(self, project: Project) -> Iterator[Finding]:
        for mod, cls in find_classes(project):
            yield from self._check_class(mod, cls)
        yield from self._check_detach(project)

    def _check_class(self, mod: ModuleInfo, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = class_methods(cls)
        hooks = self._bound_hooks(cls)
        batched = self._batched_attrs(cls, exclude=set(hooks))
        if not hooks:
            if batched:
                attr, line = sorted(batched.items())[0]
                yield from _yield(self.finding(
                    mod, line,
                    f"{cls.name} batches {len(batched)} _n_* counter(s) "
                    f"(e.g. {attr}) but never calls bind_flush: they will "
                    "never reach the stats tree",
                    symbol=f"{cls.name}:no-hook",
                ))
            return
        for hook_name, bind_line in hooks.items():
            hook = methods.get(hook_name)
            if hook is None:
                yield from _yield(self.finding(
                    mod, bind_line,
                    f"{cls.name} binds flush hook {hook_name!r} which is not "
                    "defined in the class body",
                    symbol=f"{cls.name}.{hook_name}:missing",
                ))
                continue
            mentioned = self._hook_mentions(hook)
            zeroed = self._hook_zeroes(hook)
            for attr, line in sorted(batched.items()):
                if attr not in mentioned:
                    yield from _yield(self.finding(
                        mod, line,
                        f"{cls.name}.{attr} is batched on the hot path but "
                        f"never folded by {hook_name}(): the counter is "
                        "dropped at every stats read",
                        symbol=f"{cls.name}.{attr}:unflushed",
                    ))
                elif attr not in zeroed:
                    yield from _yield(self.finding(
                        mod, hook.lineno,
                        f"{hook_name}() folds {cls.name}.{attr} without zeroing "
                        "it: consecutive reads double-count (non-idempotent hook)",
                        symbol=f"{cls.name}.{attr}:not-zeroed",
                    ))

    def _bound_hooks(self, cls: ast.ClassDef) -> Dict[str, int]:
        """``{hook_method_name: bind line}`` for every bind_flush call."""
        hooks: Dict[str, int] = {}
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Call)
                and call_name(node) == "bind_flush"
                and node.args
            ):
                attr = self_attr_target(node.args[0])
                if attr is not None:
                    hooks.setdefault(attr, node.lineno)
        return hooks

    def _batched_attrs(self, cls: ast.ClassDef, exclude: Set[str]) -> Dict[str, int]:
        """Every ``self._n_*`` attribute the class touches outside its hooks."""
        batched: Dict[str, int] = {}
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef) or item.name in exclude:
                continue
            for node in ast.walk(item):
                targets: List[ast.expr] = []
                if isinstance(node, ast.AugAssign):
                    targets = [node.target]
                elif isinstance(node, ast.Assign):
                    targets = list(node.targets)
                for target in targets:
                    attr = self_attr_target(target)
                    if attr is not None and attr.startswith("_n_"):
                        batched.setdefault(attr, node.lineno)
        return batched

    def _hook_mentions(self, hook: ast.FunctionDef) -> Set[str]:
        """Attribute names the hook folds: ``self._n_x`` or the string "_n_x"."""
        mentioned: Set[str] = set()
        for node in ast.walk(hook):
            if isinstance(node, ast.Attribute) and node.attr.startswith("_n_"):
                mentioned.add(node.attr)
            name = string_value(node)
            if name is not None and name.startswith("_n_"):
                mentioned.add(name)
        return mentioned

    def _hook_zeroes(self, hook: ast.FunctionDef) -> Set[str]:
        """Attributes the hook resets: ``self._n_x = 0`` or ``setattr(.., 0)``.

        A ``setattr(self, attr, 0)`` in a loop over ``(key, attr)`` pairs
        (the table-driven hook idiom) zeroes every attribute named by a
        string literal in the hook, so those all count.
        """
        zeroed: Set[str] = set()
        table_zero = False
        for node in ast.walk(hook):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Constant) and value.value == 0:
                    for target in node.targets:
                        # self._n_x = 0, or self._n_x[key] = 0 (per-key dict
                        # counters, e.g. one slot per TransferKind).
                        if isinstance(target, ast.Subscript):
                            target = target.value
                        attr = self_attr_target(target)
                        if attr is not None:
                            zeroed.add(attr)
            elif isinstance(node, ast.Call) and call_name(node) == "setattr":
                if (
                    len(node.args) == 3
                    and isinstance(node.args[2], ast.Constant)
                    and node.args[2].value == 0
                ):
                    table_zero = True
        if table_zero:
            zeroed |= self._hook_mentions(hook)
        return zeroed

    def _check_detach(self, project: Project) -> Iterator[Finding]:
        for mod in project.in_packages(("repro.core",)):
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call) and call_name(node) == "detach_flush":
                    return
        mod = project.module("repro.core.simulator") or (
            project.modules[0] if project.modules else None
        )
        if mod is None:
            return
        yield from _yield(self.finding(
            mod, 1,
            "no detach_flush call anywhere under repro.core: stats trees "
            "keep hooks into live models and cannot cross the pool boundary",
            symbol="core:detach_flush-missing",
        ))


# ======================================================================
# RL004 — fault-site registry
# ======================================================================
@register
class FaultSiteRule(Rule):
    """Every ``fault_point("<site>")`` literal is registered, documented, tested.

    The chaos harness only proves what it exercises.  A fault site that
    is not in :data:`repro.common.faults.SITES` is invisible to the
    docs; a registered site with no ``@site`` reference in any test is a
    resilience promise nobody keeps; a dynamic (non-literal) site string
    cannot be audited at all.
    """

    id = "RL004"
    title = "fault-site registry"
    severity = "error"
    rationale = "unregistered/untested fault sites are resilience promises nobody keeps"

    def check(self, project: Project) -> Iterator[Finding]:
        faults_mod = project.module(FAULTS_MODULE)
        registry = self._registered_sites(faults_mod) if faults_mod else None
        if registry is None:
            mod = faults_mod or (project.modules[0] if project.modules else None)
            if mod is not None:
                yield from _yield(self.finding(
                    mod, 1,
                    f"{FAULTS_MODULE} does not define a SITES registry dict "
                    "(site -> description): fault sites cannot be audited",
                    symbol="SITES:missing",
                ))
            return
        sites, registry_line = registry

        used: Dict[str, Tuple[ModuleInfo, int]] = {}
        for mod in project.modules:
            if mod.name == "repro.lint" or mod.name.startswith("repro.lint."):
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call) or call_name(node) != "fault_point":
                    continue
                if not node.args:
                    continue
                site = string_value(node.args[0])
                if site is None:
                    yield from _yield(self.finding(
                        mod, node.lineno,
                        "fault_point() with a non-literal site string: sites "
                        "must be auditable constants",
                        symbol="fault_point:dynamic-site",
                    ))
                    continue
                used.setdefault(site, (mod, node.lineno))
                if site not in sites:
                    yield from _yield(self.finding(
                        mod, node.lineno,
                        f"fault site {site!r} is not registered in "
                        f"{FAULTS_MODULE}.SITES: add it with a one-line "
                        "description of what failure it models",
                        symbol=f"site:{site}:unregistered",
                    ))

        exercised = self._exercised_sites(project, sites)
        for site in sorted(sites):
            if site not in used and faults_mod is not None:
                yield from _yield(self.finding(
                    faults_mod, registry_line,
                    f"registered fault site {site!r} has no fault_point() call "
                    "site left in the tree: remove the stale registry entry",
                    symbol=f"site:{site}:stale",
                ))
            if site in used and site not in exercised:
                mod, line = used[site]
                yield from _yield(self.finding(
                    mod, line,
                    f"fault site {site!r} is never exercised by a test "
                    f"(no '@{site}' fault plan under tests/)",
                    symbol=f"site:{site}:untested",
                ))

    def _registered_sites(
        self, faults_mod: ModuleInfo
    ) -> Optional[Tuple[Dict[str, str], int]]:
        for node in ast.walk(faults_mod.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "SITES":
                    if not isinstance(value, ast.Dict):
                        return None
                    sites: Dict[str, str] = {}
                    for key, val in zip(value.keys, value.values):
                        k = string_value(key) if key is not None else None
                        v = string_value(val)
                        if k is not None:
                            sites[k] = v or ""
                    return sites, node.lineno
        return None

    def _exercised_sites(self, project: Project, sites: Dict[str, str]) -> Set[str]:
        exercised: Set[str] = set()
        corpus = "\n".join(project.test_sources.values())
        for site in sites:
            if f"@{site}" in corpus:
                exercised.add(site)
        return exercised


# ======================================================================
# RL005 — config / CLI coverage
# ======================================================================
@register
class ConfigCoverageRule(Rule):
    """Every config field is consumed; every CLI flag is read.

    A ``SimulationConfig`` field nothing reads is a knob that silently
    does nothing — sweeps over it burn CPU and produce identical rows.
    A field counts as covered when some module outside ``config.py``
    reads it, or when a derivation property inside ``config.py`` that
    *is* read outside consumes it (transitively).  Likewise every CLI
    ``--flag`` must be read back off ``args`` somewhere in the CLI, or
    it is a dead promise in ``--help``.
    """

    id = "RL005"
    title = "config/CLI coverage"
    severity = "error"
    rationale = "an unread config field or CLI flag is a knob that silently does nothing"

    #: Methods inside config.py that do not count as consumption: pure
    #: validation and the human-readable dump read every field by design.
    _NON_CONSUMING = frozenset({"__post_init__", "validate", "describe"})

    def check(self, project: Project) -> Iterator[Finding]:
        cfg_mod = project.module(CONFIG_MODULE)
        if cfg_mod is not None:
            yield from self._check_fields(project, cfg_mod)
        cli_mod = project.module(CLI_MODULE)
        if cli_mod is not None:
            yield from self._check_flags(cli_mod)

    # -- config fields -------------------------------------------------
    def _check_fields(self, project: Project, cfg_mod: ModuleInfo) -> Iterator[Finding]:
        fields = self._dataclass_fields(cfg_mod)
        outside_reads = self._outside_attribute_reads(project, cfg_mod)
        internal_readers = self._internal_readers(cfg_mod)

        # Fixpoint: a config.py method/property is "live" when its name is
        # read outside, or when a live method reads it (its value flows out
        # through that method — e.g. size_bytes -> num_lines -> num_sets).
        live: Set[str] = {m for m in internal_readers if m in outside_reads}
        changed = True
        while changed:
            changed = False
            for method in list(live):
                for read in internal_readers.get(method, ()):
                    if read in internal_readers and read not in live:
                        live.add(read)
                        changed = True

        for (cls_name, field_name), line in sorted(fields.items()):
            if field_name in outside_reads:
                continue
            consumed_via = [
                m for m, reads in internal_readers.items()
                if field_name in reads and m in live
            ]
            if consumed_via:
                continue
            yield from _yield(self.finding(
                cfg_mod, line,
                f"config field {cls_name}.{field_name} is never read outside "
                "config.py (nor by any derivation property that is): wire it "
                "into a model or delete the knob",
                symbol=f"{cls_name}.{field_name}",
            ))

    def _dataclass_fields(self, cfg_mod: ModuleInfo) -> Dict[Tuple[str, str], int]:
        fields: Dict[Tuple[str, str], int] = {}
        for node in ast.walk(cfg_mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorated = any(
                (isinstance(d, ast.Name) and d.id == "dataclass")
                or (isinstance(d, ast.Call) and call_name(d) == "dataclass")
                for d in node.decorator_list
            )
            if not decorated:
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and not item.target.id.startswith("_")
                ):
                    ann = ast.dump(item.annotation)
                    if "ClassVar" in ann:
                        continue
                    fields[(node.name, item.target.id)] = item.lineno
        return fields

    def _outside_attribute_reads(self, project: Project, cfg_mod: ModuleInfo) -> Set[str]:
        reads: Set[str] = set()
        for mod in project.modules:
            if mod.name == cfg_mod.name:
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Attribute):
                    reads.add(node.attr)
                elif isinstance(node, ast.Call) and call_name(node) == "getattr":
                    # getattr(config, "field", default) is a read too.
                    if len(node.args) >= 2:
                        name = string_value(node.args[1])
                        if name is not None:
                            reads.add(name)
        return reads

    def _internal_readers(self, cfg_mod: ModuleInfo) -> Dict[str, Set[str]]:
        """``{method_name: {self attributes it reads}}`` inside config.py."""
        readers: Dict[str, Set[str]] = {}
        for node in ast.walk(cfg_mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name in self._NON_CONSUMING:
                    continue
                reads = readers.setdefault(item.name, set())
                for sub in ast.walk(item):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        reads.add(sub.attr)
        return readers

    # -- CLI flags ------------------------------------------------------
    def _check_flags(self, cli_mod: ModuleInfo) -> Iterator[Finding]:
        read_dests = self._args_reads(cli_mod)
        for node in ast.walk(cli_mod.tree):
            if not isinstance(node, ast.Call) or call_name(node) != "add_argument":
                continue
            dest, flag, line = self._flag_dest(node)
            if dest is None or flag is None:
                continue
            if dest not in read_dests:
                yield from _yield(self.finding(
                    cli_mod, line,
                    f"CLI flag {flag} is declared but args.{dest} is never "
                    "read: the flag is a dead promise in --help",
                    symbol=f"flag:{flag}",
                ))

    def _flag_dest(
        self, node: ast.Call
    ) -> Tuple[Optional[str], Optional[str], int]:
        flag: Optional[str] = None
        for arg in node.args:
            value = string_value(arg)
            if value is not None and value.startswith("--"):
                flag = value
                break
        if flag is None:
            return None, None, node.lineno
        dest = flag.lstrip("-").replace("-", "_")
        for kw in node.keywords:
            if kw.arg == "dest":
                explicit = string_value(kw.value)
                if explicit is not None:
                    dest = explicit
        return dest, flag, node.lineno

    def _args_reads(self, cli_mod: ModuleInfo) -> Set[str]:
        reads: Set[str] = set()
        for node in ast.walk(cli_mod.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("args", "_args")
            ):
                reads.add(node.attr)
            elif isinstance(node, ast.Call) and call_name(node) == "getattr":
                if len(node.args) >= 2:
                    name = string_value(node.args[1])
                    if name is not None:
                        reads.add(name)
        return reads


# ======================================================================
# RL006 — sanitizer wiring
# ======================================================================
@register
class SanitizerWiringRule(Rule):
    """Every ``validate()``-bearing class is wired into the sanitizer walk.

    The runtime sanitizer only audits what its check walk reaches.  The
    manifest :data:`repro.sanitize.CHECK_WALK` maps every class that
    defines ``validate()`` to the module whose walk invokes it; this
    rule keeps the manifest complete (a class that grows ``validate()``
    without being wired in fails), non-stale (manifest keys must resolve
    to a real class with a real ``validate``), and honest (the named
    driver module must actually contain a ``.validate(`` call).
    """

    id = "RL006"
    title = "sanitizer wiring"
    severity = "error"
    rationale = "a validate() the sanitizer never reaches is a dead invariant"

    def check(self, project: Project) -> Iterator[Finding]:
        sanitize_mod = project.module(SANITIZE_MODULE)
        manifest = self._manifest(sanitize_mod) if sanitize_mod else None
        if manifest is None:
            mod = sanitize_mod or (project.modules[0] if project.modules else None)
            if mod is not None:
                yield from _yield(self.finding(
                    mod, 1,
                    f"{SANITIZE_MODULE} does not define a CHECK_WALK manifest "
                    "dict ('module.Class' -> driver module): sanitizer "
                    "coverage cannot be audited",
                    symbol="CHECK_WALK:missing",
                ))
            return
        entries, manifest_line = manifest

        validators = self._validator_classes(project)

        for key, (mod, cls) in sorted(validators.items()):
            if key not in entries:
                yield from _yield(self.finding(
                    mod, cls.lineno,
                    f"{cls.name} defines validate() but is not wired into "
                    f"{SANITIZE_MODULE}.CHECK_WALK: the sanitizer never "
                    "reaches this invariant",
                    symbol=f"{key}:unwired",
                ))

        for key, driver in sorted(entries.items()):
            if key not in validators:
                assert sanitize_mod is not None
                yield from _yield(self.finding(
                    sanitize_mod, manifest_line,
                    f"CHECK_WALK entry {key!r} does not resolve to a class "
                    "defining validate(): remove or fix the stale entry",
                    symbol=f"{key}:stale",
                ))
                continue
            driver_mod = project.module(driver)
            if driver_mod is None:
                assert sanitize_mod is not None
                yield from _yield(self.finding(
                    sanitize_mod, manifest_line,
                    f"CHECK_WALK driver module {driver!r} for {key} does not exist",
                    symbol=f"{key}:bad-driver",
                ))
                continue
            if not self._calls_validate(driver_mod):
                assert sanitize_mod is not None
                yield from _yield(self.finding(
                    sanitize_mod, manifest_line,
                    f"CHECK_WALK names {driver} as the walk that reaches "
                    f"{key}, but that module contains no .validate() call",
                    symbol=f"{key}:driver-no-call",
                ))

    def _manifest(
        self, sanitize_mod: ModuleInfo
    ) -> Optional[Tuple[Dict[str, str], int]]:
        for node in ast.walk(sanitize_mod.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "CHECK_WALK":
                    if not isinstance(value, ast.Dict):
                        return None
                    entries: Dict[str, str] = {}
                    for key, val in zip(value.keys, value.values):
                        k = string_value(key) if key is not None else None
                        v = string_value(val)
                        if k is not None and v is not None:
                            entries[k] = v
                    return entries, node.lineno
        return None

    def _validator_classes(
        self, project: Project
    ) -> Dict[str, Tuple[ModuleInfo, ast.ClassDef]]:
        validators: Dict[str, Tuple[ModuleInfo, ast.ClassDef]] = {}
        for mod, cls in find_classes(project):
            if mod.name == "repro.lint" or mod.name.startswith("repro.lint."):
                continue
            if "validate" in class_methods(cls):
                validators[f"{mod.name}.{cls.name}"] = (mod, cls)
        return validators

    def _calls_validate(self, mod: ModuleInfo) -> bool:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call) and call_name(node) == "validate":
                return True
        return False
