"""Interprocedural facts for the distributed-layer lint rules.

The RL001-RL006 rules in :mod:`repro.lint.rules` are *local*: each one
walks a module's AST and never needs to know what a name means in
another file.  The distributed-protocol rules (RL007-RL012) cannot work
that way — an exit code is *defined* in ``repro.analysis.exitcodes``,
*aliased* in ``repro.analysis.supervisor`` and *returned* from
``repro.cli``; an op name is a string literal on the client side of a
socket and a comparison on the broker side.  This module supplies the
shared project-level infrastructure those rules stand on, still without
importing a single repository module:

:class:`ConstEnv`
    Module-level constant propagation.  Resolves a name (or a dotted
    attribute) appearing anywhere in a module to the int / string /
    frozenset-of-strings literal it was ultimately assigned, following
    plain aliases (``WORKER_EXIT_PRESSURE = EXIT_PRESSURE``) and
    ``from``-imports across the project — including function-local lazy
    imports, which the distributed layer uses to break import cycles.

:class:`ModuleGraph`
    The module-granularity import graph: which project modules each
    module imports, counting both top-level and function-local imports.
    RL008 uses it to insist that both the worker entry point and the
    supervisor actually *import* the exit-code registry.

:func:`dispatch_table` / :func:`client_calls` / :func:`request_fields`
    Wire-protocol extractors: the broker's ``if op == "...":`` dispatch
    chain, the client's ``self._call("...", {...})`` sites with their
    payload key sets, and a handler's ``request["field"]`` /
    ``request.get("field")`` reads (plus the same-class helpers it
    forwards the request to, for one-level-deep field attribution).

Everything here is pure :mod:`ast` analysis over a loaded
:class:`~repro.lint.core.Project`; resolution failures are reported as
``None`` rather than guessed at, so rules degrade toward silence, not
false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.lint.core import ModuleInfo, Project, dotted_name, string_value

#: What constant propagation can carry: exit codes are ints, op names
#: are strings, idempotency manifests are frozensets of strings.
ConstValue = Union[int, str, FrozenSet[str]]


def _string_elements(elts: List[ast.expr]) -> Optional[FrozenSet[str]]:
    values = [string_value(e) for e in elts]
    if all(isinstance(v, str) for v in values):
        return frozenset(v for v in values if v is not None)
    return None


def literal_value(expr: ast.expr) -> Optional[ConstValue]:
    """Evaluate a literal expression without touching the environment.

    Understands int and string constants (bools are deliberately *not*
    ints here), set displays of strings, and ``frozenset({...})`` /
    ``set([...])`` calls over string displays.
    """
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return None
        if isinstance(expr.value, (int, str)):
            return expr.value
        return None
    if isinstance(expr, ast.Set):
        return _string_elements(expr.elts)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("frozenset", "set")
        and len(expr.args) == 1
        and not expr.keywords
        and isinstance(expr.args[0], (ast.Set, ast.List, ast.Tuple))
    ):
        return _string_elements(expr.args[0].elts)
    return None


class ConstEnv:
    """Project-wide constant environment (see the module docstring)."""

    def __init__(self, project: Project) -> None:
        #: ``(module, name) -> defining expression`` for module-level
        #: single-name assignments (and annotated assignments).
        self._assigns: Dict[Tuple[str, str], ast.expr] = {}
        #: ``(module, name) -> (source module, source name)`` for every
        #: ``from X import Y [as Z]`` anywhere in the module.
        self._imports: Dict[Tuple[str, str], Tuple[str, str]] = {}
        #: ``(module, name) -> dotted module`` for module bindings from
        #: ``import a.b [as m]`` and ``from a import b`` (b a module).
        self._module_aliases: Dict[Tuple[str, str], str] = {}
        self._known: Set[str] = set(project.by_name)
        self._cache: Dict[Tuple[str, str], Optional[ConstValue]] = {}
        for mod in project.modules:
            self._index(mod)

    def _index(self, mod: ModuleInfo) -> None:
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._assigns[(mod.name, target.id)] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._assigns[(mod.name, stmt.target.id)] = stmt.value
        # Imports are indexed at *any* depth: the distributed layer leans
        # on function-local lazy imports to break import cycles, and a
        # name used in ``sys.exit(...)`` may well be bound by one.
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom):
                base = self._import_base(mod.name, node)
                if base is None:
                    continue
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if f"{base}.{alias.name}" in self._known:
                        self._module_aliases[(mod.name, bound)] = f"{base}.{alias.name}"
                    else:
                        self._imports[(mod.name, bound)] = (base, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._module_aliases[(mod.name, alias.asname)] = alias.name
                    else:
                        # ``import a.b.c`` binds ``a``; record the root so
                        # attribute chains can walk down from it.
                        root = alias.name.split(".", 1)[0]
                        self._module_aliases[(mod.name, root)] = root

    @staticmethod
    def _import_base(module: str, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def resolve(self, module: str, name: str) -> Optional[ConstValue]:
        """The literal ``name`` denotes in ``module``, or ``None``."""
        key = (module, name)
        if key in self._cache:
            return self._cache[key]
        self._cache[key] = None  # cycle guard: break self-reference loops
        value: Optional[ConstValue] = None
        if key in self._assigns:
            value = self.resolve_expr(module, self._assigns[key])
        elif key in self._imports:
            src_module, src_name = self._imports[key]
            if src_module in self._known:
                value = self.resolve(src_module, src_name)
        self._cache[key] = value
        return value

    def resolve_expr(self, module: str, expr: ast.expr) -> Optional[ConstValue]:
        """Resolve an expression: literal, name, or dotted attribute."""
        lit = literal_value(expr)
        if lit is not None:
            return lit
        if isinstance(expr, ast.Name):
            return self.resolve(module, expr.id)
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            if dotted:
                return self._resolve_dotted(module, dotted)
        return None

    def _resolve_dotted(self, module: str, dotted: str) -> Optional[ConstValue]:
        parts = dotted.split(".")
        if len(parts) < 2:
            return None
        # Expand the leading alias, then find the longest module prefix:
        # ``m.EXIT_OK`` (alias), ``repro.analysis.exitcodes.EXIT_OK``...
        expanded = self._module_aliases.get((module, parts[0]), parts[0])
        full = ".".join([expanded] + parts[1:])
        full_parts = full.split(".")
        for split in range(len(full_parts) - 1, 0, -1):
            prefix = ".".join(full_parts[:split])
            if prefix in self._known and split == len(full_parts) - 1:
                return self.resolve(prefix, full_parts[-1])
        return None

    def resolve_int(self, module: str, expr: ast.expr) -> Optional[int]:
        value = self.resolve_expr(module, expr)
        return value if isinstance(value, int) else None

    def names_defined(self, module: str) -> FrozenSet[str]:
        """Module-level names ``module`` assigns (not imports)."""
        return frozenset(n for (m, n) in self._assigns if m == module)


class ModuleGraph:
    """Which project modules each module imports (any scope depth)."""

    def __init__(self, project: Project) -> None:
        self._edges: Dict[str, FrozenSet[str]] = {}
        known = set(project.by_name)
        for mod in project.modules:
            targets: Set[str] = set()
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name in known:
                            targets.add(alias.name)
                elif isinstance(node, ast.ImportFrom):
                    base = ConstEnv._import_base(mod.name, node)
                    if base is None:
                        continue
                    for alias in node.names:
                        if f"{base}.{alias.name}" in known:
                            targets.add(f"{base}.{alias.name}")
                        elif base in known:
                            targets.add(base)
            self._edges[mod.name] = frozenset(targets)

    def imports(self, module: str) -> FrozenSet[str]:
        return self._edges.get(module, frozenset())

    def imports_module(self, module: str, target: str) -> bool:
        return target in self.imports(module)

    def importers_of(self, target: str) -> FrozenSet[str]:
        return frozenset(m for m, deps in self._edges.items() if target in deps)


# ----------------------------------------------------------------------
# Wire-protocol extractors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DispatchTable:
    """Op literals a dispatcher compares against, plus dynamic sites."""

    ops: Dict[str, int]  # op literal -> first comparison line
    dynamic: Tuple[int, ...]  # lines comparing the op var to a non-literal


def dispatch_table(func: ast.FunctionDef, var: str = "op") -> DispatchTable:
    """Extract ``if <var> == "literal":`` comparisons from a dispatcher."""
    ops: Dict[str, int] = {}
    dynamic: List[int] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        if not (isinstance(node.left, ast.Name) and node.left.id == var):
            continue
        if len(node.ops) != 1 or not isinstance(node.ops[0], ast.Eq):
            continue
        literal = string_value(node.comparators[0])
        if literal is None:
            dynamic.append(node.lineno)
        elif literal not in ops:
            ops[literal] = node.lineno
    return DispatchTable(ops, tuple(dynamic))


@dataclass(frozen=True)
class ClientCall:
    """One ``self._call("<op>", {...})`` site on the client class."""

    op: Optional[str]  # None: the op argument is not a string literal
    line: int
    symbol: str
    #: Top-level keys of the payload dict literal; ``None`` when the
    #: payload is present but not a plain dict of string keys.
    payload_keys: Optional[FrozenSet[str]]


def _payload_keys(call: ast.Call) -> Optional[FrozenSet[str]]:
    payload: Optional[ast.expr] = None
    if len(call.args) >= 2:
        payload = call.args[1]
    else:
        for kw in call.keywords:
            if kw.arg == "payload":
                payload = kw.value
    if payload is None:
        return frozenset()
    if isinstance(payload, ast.Dict):
        keys = [string_value(k) if k is not None else None for k in payload.keys]
        if all(isinstance(k, str) for k in keys):
            return frozenset(k for k in keys if k is not None)
    return None


def client_calls(
    cls: ast.ClassDef, method: str = "_call"
) -> List[ClientCall]:
    """Every ``self.<method>(...)`` site in ``cls``, with payload keys."""
    calls: List[ClientCall] = []
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        symbol = f"{cls.name}.{item.name}"
        for node in ast.walk(item):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == method
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                continue
            op = string_value(node.args[0]) if node.args else None
            calls.append(ClientCall(op, node.lineno, symbol, _payload_keys(node)))
    return calls


@dataclass
class RequestFields:
    """Field reads a handler performs on its request parameter."""

    required: Dict[str, int] = field(default_factory=dict)  # request["f"]
    optional: Dict[str, int] = field(default_factory=dict)  # request.get("f")
    #: Same-class methods / module functions the request is forwarded
    #: to verbatim — follow these one level for their field reads too.
    forwarded_to: List[str] = field(default_factory=list)

    def merge(self, other: "RequestFields") -> None:
        for name, line in other.required.items():
            self.required.setdefault(name, line)
        for name, line in other.optional.items():
            self.optional.setdefault(name, line)


def request_fields(func: ast.AST, param: str = "request") -> RequestFields:
    """Extract ``param[...]`` / ``param.get(...)`` reads and forwards.

    ``func`` is usually a handler :class:`ast.FunctionDef`, but any
    subtree works — RL009 passes individual dispatch branches.
    """
    fields = RequestFields()
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript):
            if isinstance(node.value, ast.Name) and node.value.id == param:
                key = string_value(node.slice)
                if key is not None:
                    fields.required.setdefault(key, node.lineno)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "get"
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id == param
                and node.args
            ):
                key = string_value(node.args[0])
                if key is not None:
                    fields.optional.setdefault(key, node.lineno)
                continue
            forwards = any(
                isinstance(arg, ast.Name) and arg.id == param for arg in node.args
            )
            if not forwards:
                continue
            if (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id == "self"
            ):
                fields.forwarded_to.append(func_expr.attr)
            elif isinstance(func_expr, ast.Name):
                fields.forwarded_to.append(func_expr.id)
    return fields
