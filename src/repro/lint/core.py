"""Framework core for ``repro.lint``: findings, rules, pragmas, project model.

The analyzer is deliberately *static*: it parses every module under
``src/repro`` with :mod:`ast` and never imports or executes repository
code, so it is safe to run on a broken tree and fast enough for a
pre-commit hook.  Three concepts:

:class:`ModuleInfo`
    One parsed module: path, source, AST, dotted name, and the
    ``# repro-lint: disable=...`` pragma map extracted from its source.

:class:`Project`
    The whole tree under ``src/repro`` plus the ``tests/`` directory
    (as raw text — rules such as RL004 check that fault sites are
    exercised by tests without parsing test semantics).

:class:`Rule`
    One check.  Rules are registered with :func:`register` and receive
    the *project*, not a single module, because most simulator
    invariants are cross-cutting (a fault site is declared in one
    module, registered in a second, and exercised by a third).

Suppression layers, in order of precedence:

* ``# repro-lint: disable=RL001`` on the offending line (or
  ``disable=all``) — for single accepted exceptions, visible in review;
* ``# repro-lint: disable-file=RL001`` anywhere in a module — for
  whole-module opt-outs (used sparingly);
* the committed baseline file (see :mod:`repro.lint.baseline`) — for
  grandfathered findings that are accepted but still visible.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Type

SEVERITIES = ("error", "warning")

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, addressable both by line and by fingerprint.

    ``symbol`` is the *stable* context (enclosing class/function, config
    field, fault site...) so the fingerprint survives unrelated edits
    that shift line numbers — that is what makes baselines durable.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}:{self.path}:{self.symbol}"

    def render(self) -> str:
        tag = "E" if self.severity == "error" else "W"
        where = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {tag} {self.rule}{sym} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleInfo:
    """One parsed source module plus its pragma map."""

    path: Path
    relpath: str
    name: str
    source: str
    tree: ast.Module
    line_pragmas: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_pragmas: FrozenSet[str] = frozenset()

    @classmethod
    def load(cls, path: Path, relpath: str, name: str) -> "ModuleInfo":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        line_pragmas: Dict[int, FrozenSet[str]] = {}
        file_pragmas: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if not match:
                continue
            rules = frozenset(
                token.strip().upper()
                for token in match.group(2).split(",")
                if token.strip()
            )
            if match.group(1) == "disable-file":
                file_pragmas.update(rules)
            else:
                line_pragmas[lineno] = line_pragmas.get(lineno, frozenset()) | rules
        return cls(path, relpath, name, source, tree, line_pragmas, frozenset(file_pragmas))

    def suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        if rule_id in self.file_pragmas or "ALL" in self.file_pragmas:
            return True
        pragmas = self.line_pragmas.get(line)
        return bool(pragmas) and (rule_id in pragmas or "ALL" in pragmas)


class Project:
    """Every module under the package root, plus raw test sources."""

    def __init__(
        self,
        package_root: Path,
        modules: Sequence[ModuleInfo],
        test_sources: Dict[str, str],
    ) -> None:
        self.package_root = package_root
        self.modules = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in self.modules}
        self.test_sources = dict(test_sources)

    def module(self, name: str) -> Optional[ModuleInfo]:
        return self.by_name.get(name)

    def in_packages(self, prefixes: Sequence[str]) -> Iterator[ModuleInfo]:
        for mod in self.modules:
            if any(mod.name == p or mod.name.startswith(p + ".") for p in prefixes):
                yield mod


def load_project(repo_root: Path) -> Project:
    """Parse ``<repo_root>/src/repro`` and slurp ``<repo_root>/tests``."""
    package_root = repo_root / "src" / "repro"
    if not package_root.is_dir():
        raise FileNotFoundError(f"no package tree at {package_root}")
    modules: List[ModuleInfo] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(repo_root).as_posix()
        dotted = ".".join(path.relative_to(package_root.parent).with_suffix("").parts)
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        modules.append(ModuleInfo.load(path, rel, dotted))
    test_sources: Dict[str, str] = {}
    tests_dir = repo_root / "tests"
    if tests_dir.is_dir():
        for path in sorted(tests_dir.rglob("*.py")):
            test_sources[path.relative_to(repo_root).as_posix()] = path.read_text()
    return Project(package_root, modules, test_sources)


class Rule:
    """Base class for one lint check; subclasses register themselves."""

    id: str = ""
    title: str = ""
    severity: str = "error"
    rationale: str = ""

    def check(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        module: Optional[ModuleInfo],
        line: int,
        message: str,
        symbol: str = "",
        path: str = "",
    ) -> Optional[Finding]:
        """Build a finding unless a pragma on its line suppresses it."""
        if module is not None:
            if module.suppressed(self.id, line):
                return None
            path = module.relpath
        return Finding(self.id, self.severity, path, line, message, symbol)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a :class:`Rule` subclass to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.id} has unknown severity {cls.severity!r}")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    # Importing the rules modules populates the registry on first use.
    from repro.lint import rules as _rules  # noqa: F401
    from repro.lint import rules_dist as _rules_dist  # noqa: F401

    return dict(_REGISTRY)


def run_rules(
    project: Project,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the selected rules (default: all) and return sorted findings."""
    registry = all_rules()
    if rule_ids:
        unknown = [r for r in rule_ids if r.upper() not in registry]
        if unknown:
            known = ", ".join(sorted(registry))
            raise ValueError(f"unknown rule id(s) {unknown}; known: {known}")
        selected = [registry[r.upper()] for r in rule_ids]
    else:
        selected = [registry[rid] for rid in sorted(registry)]
    findings: List[Finding] = []
    for rule_cls in selected:
        findings.extend(rule_cls().check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.symbol))
    return findings


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------
def iter_with_symbols(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    """Yield every node with its enclosing ``Class.method``-style symbol."""

    def walk(node: ast.AST, symbol: str) -> Iterator[Tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                inner = f"{symbol}.{child.name}" if symbol else child.name
                yield child, inner
                yield from walk(child, inner)
            else:
                yield child, symbol
                yield from walk(child, symbol)

    yield from walk(tree, "")


def call_name(node: ast.Call) -> str:
    """The terminal name of a call target: ``a.b.c(...)`` -> ``"c"``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains; empty string for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def string_value(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def attribute_reads(tree: ast.Module) -> Dict[str, int]:
    """Count every ``<expr>.name`` attribute access in a module by name."""
    counts: Dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            counts[node.attr] = counts.get(node.attr, 0) + 1
    return counts


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }


def find_classes(project: Project) -> Iterator[Tuple[ModuleInfo, ast.ClassDef]]:
    for mod in project.modules:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef):
                yield mod, node


def self_attr_target(node: ast.AST) -> Optional[str]:
    """``self.X`` as an assignment target -> ``"X"``; else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
