"""``python -m repro.lint`` — standalone entry point for the analyzer."""

from __future__ import annotations

import sys

from repro.lint import main

if __name__ == "__main__":
    sys.exit(main())
