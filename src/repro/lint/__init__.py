"""``repro.lint`` — AST-based static analysis for simulator invariants.

The runtime layers grown across the PR sequence (result cache,
process-pool fan-out, batched stats, fault injection, runtime
sanitizer, then the queue/worker/broker distributed layer) each rest on
a cross-cutting contract that is cheap to break in review and expensive
to debug in a sweep.  This package checks those contracts *statically*:
it parses the tree under ``src/repro`` with :mod:`ast` — no repository
code is imported or executed — and reports findings with stable
fingerprints that a committed baseline can grandfather.

The first six rules (:mod:`repro.lint.rules`) are per-module checks of
the simulation core; RL007-RL012 (:mod:`repro.lint.rules_dist`) are
*interprocedural* checks of the distributed protocol, built on the
constant-propagation / import-graph / wire-extraction infrastructure in
:mod:`repro.lint.flow`.

Rules (see ``docs/architecture.md`` for the contributor table):

========  ==========================================================
RL001     hot-path determinism (no clock/RNG/unordered-set iteration)
RL002     process-pool safety (picklable payloads only)
RL003     stat-flush discipline (batched ``_n_*`` counters fold+zero)
RL004     fault-site registry (registered, documented, tested sites)
RL005     config/CLI coverage (no dead knobs, no dead flags)
RL006     sanitizer wiring (every ``validate()`` reachable from the walk)
RL007     atomic persistence (sealed writes only in persistence modules)
RL008     exit-code registry (named codes; supervisor triages them all)
RL009     wire-protocol parity (client ops == broker dispatch, field sets)
RL010     retry idempotency (manifest-audited replays; app errors raise)
RL011     fault-site symmetry (two-sided sites injectable + tested per side)
RL012     handle lifecycle (boundary handles released and pickle-shed)
========  ==========================================================

Entry points: ``repro-sim lint`` and ``python -m repro.lint``; both
share :func:`main`.  Suppression: ``# repro-lint: disable=RL001`` on the
line, ``# repro-lint: disable-file=RL001`` for a module, or a baseline
entry (``lint-baseline.json``) with a written reason.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    BaselineResult,
    apply_baseline,
    load_baseline,
    save_baseline,
    updated_entries,
)
from repro.lint.core import (
    Finding,
    Project,
    Rule,
    all_rules,
    load_project,
    run_rules,
)

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "apply_baseline",
    "default_repo_root",
    "lint_tree",
    "load_baseline",
    "load_project",
    "main",
    "run_rules",
]


def default_repo_root() -> Path:
    """The repository root inferred from this file's location.

    The package lives at ``<root>/src/repro/lint``; when that layout
    does not hold (an installed wheel), fall back to the working
    directory so ``--root`` remains the escape hatch.
    """
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return Path.cwd()


def lint_tree(
    repo_root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the analyzer over a repository tree and return raw findings."""
    root = repo_root if repo_root is not None else default_repo_root()
    project = load_project(root)
    return run_rules(project, rule_ids)


def _render_text(result: BaselineResult, show_accepted: bool) -> str:
    lines: List[str] = []
    for finding in result.new:
        lines.append(finding.render())
    if show_accepted:
        for finding in result.accepted:
            lines.append(f"{finding.render()}  (baseline)")
    for entry in result.stale:
        lines.append(
            f"lint-baseline: E stale entry {entry.fingerprint} no longer matches "
            "any finding — remove it (repro-sim lint --update-baseline)"
        )
    counts = (
        f"{len(result.new)} finding(s), {len(result.accepted)} baseline-accepted, "
        f"{len(result.stale)} stale baseline entr(y/ies)"
    )
    lines.append(counts)
    return "\n".join(lines)


def _render_json(result: BaselineResult) -> str:
    payload = {
        "findings": [f.as_dict() for f in result.new],
        "accepted": [f.as_dict() for f in result.accepted],
        "stale_baseline": [e.as_dict() for e in result.stale],
        "counts": {
            "new": len(result.new),
            "accepted": len(result.accepted),
            "stale": len(result.stale),
        },
    }
    return json.dumps(payload, indent=1)


def _list_rules() -> str:
    lines = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        lines.append(f"{rule_id}  [{rule_cls.severity:7s}] {rule_cls.title}")
        lines.append(f"        {rule_cls.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim lint",
        description="AST-based simulator-invariant static analyzer (RL001-RL012)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root containing src/repro and tests/ (default: auto-detect)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )
    parser.add_argument(
        "--rules", nargs="+", metavar="RLnnn", default=None,
        help="run only these rule ids (default: all)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from current findings (keeps reasons for "
        "surviving fingerprints; new entries get a TODO reason to fill in)",
    )
    parser.add_argument(
        "--show-accepted", action="store_true",
        help="also print baseline-accepted findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Shared driver for ``repro-sim lint`` and ``python -m repro.lint``.

    Exit codes: 0 clean (every finding baseline-accepted, no stale
    entries), 1 findings or stale baseline entries, 2 usage error.
    """
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    root = args.root if args.root is not None else default_repo_root()
    baseline_path = (
        args.baseline if args.baseline is not None else root / DEFAULT_BASELINE_NAME
    )
    try:
        findings = lint_tree(root, args.rules)
        entries: List[BaselineEntry] = (
            [] if args.no_baseline else load_baseline(baseline_path)
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        new_entries, added, removed = updated_entries(findings, entries)
        save_baseline(baseline_path, new_entries)
        print(
            f"baseline updated: {len(new_entries)} entr(y/ies) "
            f"(+{added}, -{removed}) -> {baseline_path}"
        )
        todo = [e for e in new_entries if e.reason.startswith("TODO")]
        if todo:
            print(
                f"{len(todo)} new entr(y/ies) need a written reason before commit:",
                file=sys.stderr,
            )
            for entry in todo:
                print(f"  {entry.fingerprint}", file=sys.stderr)
        return 0

    result = apply_baseline(findings, entries)
    if args.format == "json":
        print(_render_json(result))
    else:
        print(_render_text(result, args.show_accepted))
    return 1 if (result.new or result.stale) else 0
