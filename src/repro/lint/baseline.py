"""Committed-baseline handling for grandfathered lint findings.

The baseline file (``lint-baseline.json`` at the repository root) holds
the fingerprints of findings that are *known and accepted*: modelled
machine parameters the simulator deliberately does not consume, and
similar documented exceptions.  Each entry carries a mandatory
``reason`` so the file reads as a list of justified debts, not a dumping
ground.  The CI gate fails on any finding **not** in the baseline, and
also on any baseline entry that no longer matches a finding — a fixed
finding must shrink the file (``repro-sim lint --update-baseline``
rewrites it, preserving reasons for surviving fingerprints).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: its stable fingerprint plus a human reason."""

    fingerprint: str
    reason: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {"fingerprint": self.fingerprint, "reason": self.reason}


@dataclass
class BaselineResult:
    """The three-way split of findings against a baseline."""

    new: List[Finding]
    accepted: List[Finding]
    stale: List[BaselineEntry]


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a version-{BASELINE_VERSION} lint baseline "
            "(regenerate with `repro-sim lint --update-baseline`)"
        )
    entries: List[BaselineEntry] = []
    for raw in data.get("entries", []):
        if not isinstance(raw, dict) or "fingerprint" not in raw:
            raise ValueError(f"{path}: malformed baseline entry {raw!r}")
        entries.append(BaselineEntry(str(raw["fingerprint"]), str(raw.get("reason", ""))))
    return entries


def save_baseline(path: Path, entries: Sequence[BaselineEntry]) -> None:
    """Write the baseline deterministically: entries sorted by
    fingerprint, object keys sorted, trailing newline — so two rewrites
    of the same state are byte-identical and diff review stays quiet."""
    payload = {
        "version": BASELINE_VERSION,
        "entries": [e.as_dict() for e in sorted(entries, key=lambda e: e.fingerprint)],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> BaselineResult:
    """Split findings into (new, accepted) and report stale entries.

    A baseline entry may match several findings with the same
    fingerprint (e.g. two call sites inside one function); it is stale
    only when it matches none.
    """
    by_fp: Dict[str, BaselineEntry] = {e.fingerprint: e for e in entries}
    matched: Set[str] = set()
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        entry = by_fp.get(finding.fingerprint)
        if entry is None:
            new.append(finding)
        else:
            matched.add(entry.fingerprint)
            accepted.append(finding)
    stale = [e for e in entries if e.fingerprint not in matched]
    return BaselineResult(new=new, accepted=accepted, stale=stale)


def updated_entries(
    findings: Sequence[Finding], previous: Sequence[BaselineEntry]
) -> Tuple[List[BaselineEntry], int, int]:
    """Baseline rewrite: current findings, reasons carried over when known.

    Returns ``(entries, added, removed)`` so the CLI can report how the
    baseline moved.
    """
    reasons = {e.fingerprint: e.reason for e in previous}
    fingerprints = sorted({f.fingerprint for f in findings})
    entries = [
        BaselineEntry(fp, reasons.get(fp, "TODO: justify or fix"))
        for fp in fingerprints
    ]
    previous_fps = set(reasons)
    added = len([fp for fp in fingerprints if fp not in previous_fps])
    removed = len([fp for fp in previous_fps if fp not in set(fingerprints)])
    return entries, added, removed
