"""Deterministic, seedable fault injection for chaos testing.

The resilience layer (:mod:`repro.analysis.resilience`) promises that a
crashing worker, a hung job, a corrupt cache file, or a missing
shared-memory facility degrades a batch gracefully instead of aborting
it.  Promises like that rot unless they are exercised, so this module
lets tests (and brave operators) *inject* exactly those failures at
well-known sites, deterministically.

A fault plan is a semicolon-separated list of specs::

    raise@worker:match=|seed=7|
    hang@worker:match=|seed=12|,attempts=0,seconds=30
    exit@worker:p=0.25
    corrupt-cache@cache
    shm-unavailable@shm

Each spec is ``<kind>@<site>`` plus optional comma-separated options:

``match=<substring>``
    fire only when the substring occurs in the site key (job token,
    cache key, trace name); empty matches everything.
``attempts=<n|n|...>``
    fire only on these 0-based attempt numbers (pipe-separated), so a
    fault can be transient (``attempts=0`` — first try only) or
    persistent (omit — every try).
``p=<float>``
    fire with this probability, decided by a *seeded hash* of
    (seed, site, key, attempt) — reproducible across runs and
    processes, no global RNG state.
``seconds=<float>``
    hang duration for ``hang`` faults.

Kinds and where they fire:

* ``raise`` — raise :class:`FaultInjected` at the site (a worker
  exception on the ``worker`` site).
* ``hang`` — sleep ``seconds`` at the site (a hung worker).
* ``exit`` — hard-kill the process via ``os._exit`` **only when inside
  a pool worker** (breaks the process pool); outside a worker it
  degrades to ``raise`` so a serial test run cannot kill pytest.
* ``drop`` — returned to the call site, which suppresses the site's
  side effect (e.g. a ``stale-lease`` heartbeat write that never lands
  on the shared filesystem, so the lease goes stale and is stolen).
* ``corrupt-cache`` — returned to the call site, which garbles the
  just-written cache entry (exercises quarantine counters).
* ``corrupt-artifact`` — returned to the call site, which rewrites the
  just-written artifact (result-cache entry, trace ``.npz``, journal
  line) as *structurally valid but wrong* bytes — only the embedded
  sha256 digest can tell (exercises integrity-on-read + quarantine).
* ``invariant-trip`` — returned to the sanitizer's check points, which
  deliberately corrupt live model state and demand the very next
  invariant sweep detect it (chaos-tests the sanitizer itself; see
  :mod:`repro.sanitize`).
* ``shm-unavailable`` — returned to the call site, which raises
  ``OSError`` from ``share_trace`` (exercises the no-shared-memory
  fallback).
* ``enospc`` — returned to the ``pressure`` check points, which treat
  the disk as full (free bytes = 0) so workers drain-and-exit and the
  stores skip writes instead of dying mid-write (exercises the
  resource-pressure guards without actually filling a filesystem).
* ``mem-pressure`` — returned to the ``pressure`` check points, which
  report resident-set pressure regardless of the real RSS (exercises
  the same drain-and-exit path for the memory side).
* ``conn-reset`` — returned to the ``network`` site: the client drops
  its broker connection mid-call (or the broker closes a connection
  without replying), modelling a TCP RST; the retry/replay path must
  reconnect and converge.
* ``stall`` — returned to the ``network`` site: the peer goes silent
  for ``seconds`` (a slow or congested link); per-call timeouts must
  turn the stall into a retry, not a hang.
* ``partial-write`` — returned to the ``network`` site: a frame is
  truncated mid-write before the connection drops, so the reader sees
  a short read; framing must reject the torso and the call must be
  replayed idempotently.
* ``partition`` — returned to the broker side of the ``network`` site:
  the broker refuses/resets every connection for ``seconds``, modelling
  a network partition that heals; clients must ride it out inside their
  retry budget (or exit with the pressure-friendly code past it).

Plans are ambient (``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` environment
variables, so forked pool workers inherit them) or explicit (an
:class:`FaultInjector` passed to :func:`fault_point` — the resilience
engine ships the plan to workers as an argument, which also covers
``spawn``-style start methods that do not inherit mutated env vars).
With no plan installed, :func:`fault_point` is a near-free no-op.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

FAULTS_ENV = "REPRO_FAULTS"
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: Present in every pool worker's environment (set by the pool
#: initializer in :mod:`repro.analysis.parallel`); ``exit`` faults only
#: hard-kill when they see it.
_POOL_WORKER_ENV = "REPRO_POOL_WORKER"

KINDS = (
    "raise",
    "hang",
    "exit",
    "drop",
    "corrupt-cache",
    "corrupt-artifact",
    "invariant-trip",
    "shm-unavailable",
    "enospc",
    "mem-pressure",
    "conn-reset",
    "stall",
    "partial-write",
    "partition",
)

#: The auditable fault-site registry: every ``fault_point("<site>")``
#: literal in the tree must appear here with a one-line description of
#: the real-world failure it models, and every registered site must be
#: exercised by at least one test plan (``<kind>@<site>`` under
#: ``tests/``).  Lint rule RL004 enforces both directions, and
#: :func:`parse_faults` rejects plans naming unknown sites so a typo in
#: ``REPRO_FAULTS`` fails loudly instead of injecting nothing.
SITES = {
    "worker": "a sweep job crashing, hanging, or hard-exiting inside a pool worker",
    "cache": "a result-cache entry corrupted on disk between write and read",
    "shm": "the POSIX shared-memory facility being unavailable on the host",
    "journal": "a run-journal line corrupted between append and --resume replay",
    "sanitizer": "live model state corrupted immediately before an invariant sweep",
    "worker-death": "a queue worker process dying mid-lease (OOM-kill, host loss)",
    "stale-lease": "a queue worker's heartbeat writes never reaching the shared FS",
    "pressure": "the host running out of free disk or resident memory mid-sweep",
    "network": "the TCP link between a queue client and the broker misbehaving "
               "(reset, stall, truncated frame, or a healing partition)",
}


class FaultInjected(RuntimeError):
    """Raised at an injection site by ``raise`` (and serial ``exit``) faults."""


def hash_unit(seed: int, *parts: object) -> float:
    """A deterministic uniform draw in [0, 1) keyed by (seed, parts).

    The same inputs give the same draw in every process on every run —
    seeded chaos is reproducible chaos.  Also used by
    :meth:`~repro.analysis.resilience.RetryPolicy.delay` for jitter.
    """
    blob = "|".join(str(p) for p in parts) + f"|seed={seed}"
    digest = hashlib.sha256(blob.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: what, where, and when it fires."""

    kind: str
    site: str
    match: str = ""
    attempts: Optional[frozenset] = None  # 0-based attempt numbers; None = all
    probability: float = 1.0
    seconds: float = 3600.0

    def applies(self, site: str, key: str, attempt: int, seed: int, index: int) -> bool:
        if site != self.site:
            return False
        if self.match and self.match not in key:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        return hash_unit(seed, self.kind, site, key, attempt, index) < self.probability


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a fault-plan string (see the module docstring for the grammar)."""
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, _, opts = chunk.partition(":")
        kind, _, site = head.partition("@")
        kind = kind.strip()
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; known: {KINDS}")
        site = site.strip() or "worker"
        if site not in SITES:
            raise ValueError(
                f"unknown fault site {site!r}; registered sites: {sorted(SITES)}"
            )
        fields = {"kind": kind, "site": site}
        if opts:
            for pair in opts.split(","):
                name, _, value = pair.partition("=")
                name = name.strip()
                if name == "match":
                    fields["match"] = value
                elif name == "attempts":
                    fields["attempts"] = frozenset(int(v) for v in value.split("|"))
                elif name == "p":
                    fields["probability"] = float(value)
                elif name == "seconds":
                    fields["seconds"] = float(value)
                else:
                    raise ValueError(f"unknown fault option {name!r} in {chunk!r}")
        specs.append(FaultSpec(**fields))
    return tuple(specs)


class FaultInjector:
    """A parsed fault plan plus the seed that drives its probabilistic specs."""

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed

    @classmethod
    def from_text(cls, text: Optional[str], seed: int = 0) -> Optional["FaultInjector"]:
        if not text:
            return None
        return cls(parse_faults(text), seed)

    def pick(self, site: str, key: str = "", attempt: int = 0) -> Optional[FaultSpec]:
        for index, spec in enumerate(self.specs):
            if spec.applies(site, key, attempt, self.seed, index):
                return spec
        return None

    def fire(self, site: str, key: str = "", attempt: int = 0) -> Optional[FaultSpec]:
        spec = self.pick(site, key, attempt)
        if spec is None:
            return None
        if spec.kind == "raise":
            raise FaultInjected(f"injected fault at {site} (key={key!r}, attempt={attempt})")
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return spec
        if spec.kind == "exit":
            if os.environ.get(_POOL_WORKER_ENV):
                # Imported lazily: repro.common must not pull the analysis
                # layer in at module load (faults is imported everywhere).
                from repro.analysis.exitcodes import EXIT_CHAOS_DEATH

                os._exit(EXIT_CHAOS_DEATH)  # hard worker death: breaks the process pool
            raise FaultInjected(
                f"injected exit outside a pool worker at {site} (key={key!r})"
            )
        return spec  # corrupt-cache / shm-unavailable: the call site acts


def ambient_fault_args() -> Optional[Tuple[str, int]]:
    """The env-installed plan as plain picklable data (or ``None``).

    The resilience engine ships this to pool workers as an argument so
    the plan survives ``spawn``/``forkserver`` start methods too.
    """
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    try:
        seed = int(os.environ.get(FAULT_SEED_ENV, "0"))
    except ValueError:
        seed = 0
    return text, seed


def ambient_injector() -> Optional[FaultInjector]:
    args = ambient_fault_args()
    if args is None:
        return None
    return FaultInjector.from_text(*args)


def fault_point(
    site: str,
    key: str = "",
    attempt: int = 0,
    injector: Optional[FaultInjector] = None,
) -> Optional[FaultSpec]:
    """An injection site: fires the first matching fault of the active plan.

    ``raise``/``hang``/``exit`` faults act here; ``corrupt-cache`` and
    ``shm-unavailable`` specs are *returned* for the call site to act on.
    With no plan active this returns ``None`` after one env lookup.
    """
    if injector is None:
        injector = ambient_injector()
        if injector is None:
            return None
    return injector.fire(site, key, attempt)


@contextmanager
def inject_faults(text: str, seed: int = 0) -> Iterator[None]:
    """Install a fault plan in the environment for the duration of the block.

    Env-based so forked pool workers inherit it; tests are the intended
    caller.  Restores (or removes) the previous plan on exit.
    """
    old_text = os.environ.get(FAULTS_ENV)
    old_seed = os.environ.get(FAULT_SEED_ENV)
    os.environ[FAULTS_ENV] = text
    os.environ[FAULT_SEED_ENV] = str(seed)
    try:
        yield
    finally:
        for name, old in ((FAULTS_ENV, old_text), (FAULT_SEED_ENV, old_seed)):
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old
