"""Shared atomic-write plumbing for the on-disk stores.

Every durable record in the distributed layer — content-addressed store
entries (:mod:`repro.analysis.result_cache`, :mod:`repro.trace.store`),
queue job/lease/done/heartbeat files (:mod:`repro.analysis.workqueue`),
and broker state (:mod:`repro.analysis.netqueue`) — is written through a
sibling temp file and ``os.replace`` so readers never observe a partial
entry.  :func:`atomic_write_json` and :func:`atomic_write_bytes` are the
*only* sanctioned ways to land such a record; lint rule RL007 rejects a
bare ``open(path, "w")`` in any persistence module, because one torn
write in a queue directory is a corrupt lease some worker will trust.
The helpers here also cover the two failure modes that the
temp-and-replace convention leaves open on its own:

* **Same-process collisions** — two threads share a PID, so a
  ``.tmp.<pid>`` suffix alone lets them clobber each other's in-flight
  write; :func:`tmp_path_for` adds a process-wide counter.
* **Orphaned temp files** — a writer killed between ``write`` and
  ``replace`` leaves its temp file behind forever;
  :func:`sweep_stale_tmp` reclaims anything old enough that no live
  write can own it (stores call it on construction).

It is also home to the **resource-pressure guard**: a full disk or a
ballooning resident set should make writers back off *before* a write
fails halfway, not after.  :class:`PressureGuard` packages the free-disk
and RSS checks (with ``enospc``/``mem-pressure`` fault hooks at the
``pressure`` site for chaos testing) so queue workers and the
content-addressed stores all judge pressure the same way.
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

#: Temp files older than this are presumed orphaned by a killed writer.
STALE_TMP_SECONDS = 3600.0

#: Uniquifies tmp paths *within* a process; ``itertools.count`` is
#: effectively atomic under CPython, which is all two threads need.
_TMP_COUNTER = itertools.count()


def tmp_path_for(path: Path) -> Path:
    """A collision-free sibling temp path: ``<name>.tmp.<pid>.<n>``."""
    return path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}")


def sweep_stale_tmp(directory: Path, max_age: float = STALE_TMP_SECONDS) -> int:
    """Remove orphaned ``*.tmp.*`` files older than ``max_age`` seconds.

    Best-effort on every step — a racing sweeper, a vanishing file, or a
    missing directory all count as "nothing to do".
    """
    removed = 0
    try:
        cutoff = time.time() - max_age
        for tmp in directory.glob("*.tmp.*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
    except OSError:
        pass
    return removed


# --------------------------------------------------------------------------
# Sealed record writes (the RL007 contract)
# --------------------------------------------------------------------------

def atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Land ``blob`` at ``path`` atomically: temp sibling, then replace.

    A reader racing this call sees either the old file or the complete
    new one, never a torso.  On any ``OSError`` the temp file is cleaned
    up best-effort and the error re-raised — the caller decides whether
    a lost write is fatal (a queue record) or shrug-worthy (a cache
    memo).
    """
    tmp = tmp_path_for(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise


def atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Serialise ``payload`` and land it atomically (see
    :func:`atomic_write_bytes` for the failure contract)."""
    atomic_write_bytes(path, json.dumps(payload).encode())


# --------------------------------------------------------------------------
# Resource-pressure guard
# --------------------------------------------------------------------------

#: Free-disk floor (bytes) below which writers back off; override with
#: ``REPRO_MIN_FREE_BYTES`` (k/m/g suffixes accepted).
DEFAULT_MIN_FREE_BYTES = 32 * 1024 * 1024

MIN_FREE_ENV = "REPRO_MIN_FREE_BYTES"
MAX_RSS_ENV = "REPRO_MAX_RSS"


def parse_size(text: str, what: str = "size") -> int:
    """Parse a byte count with an optional ``k``/``m``/``g`` suffix."""
    raw = text.strip().lower()
    multiplier = 1
    for suffix, factor in (("k", 1024), ("m", 1024**2), ("g", 1024**3)):
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            multiplier = factor
            break
    try:
        value = int(float(raw) * multiplier)
    except ValueError:
        raise ValueError(
            f"{what} must be a byte count with an optional k/m/g suffix, got {text!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"{what} must be positive, got {text!r}")
    return value


def _env_size(name: str, default: Optional[int]) -> Optional[int]:
    text = os.environ.get(name)
    if not text:
        return default
    try:
        return parse_size(text, what=name)
    except ValueError:
        return default


def default_min_free_bytes() -> int:
    """The effective free-disk floor (env override or the default)."""
    value = _env_size(MIN_FREE_ENV, DEFAULT_MIN_FREE_BYTES)
    return DEFAULT_MIN_FREE_BYTES if value is None else value


def default_max_rss_bytes() -> Optional[int]:
    """The RSS ceiling from the environment, or ``None`` (unbounded)."""
    return _env_size(MAX_RSS_ENV, None)


def free_disk_bytes(path: Path) -> Optional[int]:
    """Free bytes on the filesystem holding ``path`` (or its nearest
    existing ancestor), ``None`` if the platform cannot say."""
    probe = Path(path)
    while not probe.exists() and probe.parent != probe:
        probe = probe.parent
    try:
        return shutil.disk_usage(probe).free
    except OSError:
        return None


def current_rss_bytes() -> Optional[int]:
    """This process's resident-set size in bytes, best effort.

    ``/proc/self/statm`` gives the live RSS on Linux; elsewhere we fall
    back to ``ru_maxrss`` (a high-water mark — conservative, which is
    the right direction for a pressure check) or give up with ``None``.
    """
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


@dataclass
class PressureGuard:
    """Periodic free-disk / RSS checks with chaos-test fault hooks.

    ``check()`` returns ``None`` when it is safe to keep writing, or a
    one-line human-readable reason when the caller should drain and
    exit (worker) or skip the write (store).  Each call visits the
    ``pressure`` fault site with this guard's key and a monotonically
    increasing attempt number, so plans like
    ``enospc@pressure:attempts=1`` open deterministic pressure windows.
    """

    path: Path
    min_free_bytes: int = field(default_factory=default_min_free_bytes)
    max_rss_bytes: Optional[int] = field(default_factory=default_max_rss_bytes)
    #: Fault-site key; defaults to ``str(path)``.  Callers with an
    #: identity (queue workers) append it so ``match=`` can target one
    #: worker incarnation.
    key: Optional[str] = None
    checks: int = 0

    def check(self) -> Optional[str]:
        from repro.common.faults import fault_point

        attempt = self.checks
        self.checks += 1
        spec = fault_point("pressure", key=self.key or str(self.path), attempt=attempt)
        if spec is not None and spec.kind == "mem-pressure":
            rss = current_rss_bytes()
            return f"mem-pressure: injected (rss {rss if rss is not None else 'unknown'} bytes)"
        if spec is not None and spec.kind == "enospc":
            free: Optional[int] = 0
        else:
            free = free_disk_bytes(self.path)
        if free is not None and free < self.min_free_bytes:
            return (
                f"enospc: {free} byte(s) free under {self.path} "
                f"(floor {self.min_free_bytes})"
            )
        if self.max_rss_bytes is not None:
            rss = current_rss_bytes()
            if rss is not None and rss > self.max_rss_bytes:
                return f"mem-pressure: rss {rss} bytes over ceiling {self.max_rss_bytes}"
        return None
