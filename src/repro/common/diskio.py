"""Shared atomic-write plumbing for the on-disk stores.

Both content-addressed stores (:mod:`repro.analysis.result_cache` and
:mod:`repro.trace.store`) write through a sibling temp file and
``os.replace`` so readers never observe a partial entry.  The helpers
here cover the two failure modes that convention leaves open:

* **Same-process collisions** — two threads share a PID, so a
  ``.tmp.<pid>`` suffix alone lets them clobber each other's in-flight
  write; :func:`tmp_path_for` adds a process-wide counter.
* **Orphaned temp files** — a writer killed between ``write`` and
  ``replace`` leaves its temp file behind forever;
  :func:`sweep_stale_tmp` reclaims anything old enough that no live
  write can own it (stores call it on construction).
"""

from __future__ import annotations

import itertools
import os
import time
from pathlib import Path

#: Temp files older than this are presumed orphaned by a killed writer.
STALE_TMP_SECONDS = 3600.0

#: Uniquifies tmp paths *within* a process; ``itertools.count`` is
#: effectively atomic under CPython, which is all two threads need.
_TMP_COUNTER = itertools.count()


def tmp_path_for(path: Path) -> Path:
    """A collision-free sibling temp path: ``<name>.tmp.<pid>.<n>``."""
    return path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_COUNTER)}")


def sweep_stale_tmp(directory: Path, max_age: float = STALE_TMP_SECONDS) -> int:
    """Remove orphaned ``*.tmp.*`` files older than ``max_age`` seconds.

    Best-effort on every step — a racing sweeper, a vanishing file, or a
    missing directory all count as "nothing to do".
    """
    removed = 0
    try:
        cutoff = time.time() - max_age
        for tmp in directory.glob("*.tmp.*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
    except OSError:
        pass
    return removed
