"""Hierarchical statistics registry.

Every hardware model owns a :class:`StatGroup` under a shared :class:`Stats`
root, and bumps named counters as events happen.  The registry supports

* cheap increments (plain dict arithmetic, no object churn on the hot path),
* nested namespaces (``stats["l1"]["demand_miss"]``),
* snapshot/delta for measuring a window of execution,
* flat export for CSV-style reporting,
* deferred flushing: a hardware model may accumulate its hottest event
  counts in plain integer attributes and register a flush hook that folds
  them into the dict lazily — every read path (``get``/``flat``/``total``/
  iteration) triggers the hook first, so readers never observe stale
  values while the per-event cost drops to one integer add.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Optional


class StatGroup:
    """One namespace of counters, with optional nested child groups."""

    __slots__ = ("name", "counters", "children", "_flush_hook")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: Dict[str, float] = {}
        self.children: Dict[str, "StatGroup"] = {}
        self._flush_hook: Optional[Callable[[], None]] = None

    # -- deferred flushing ----------------------------------------------
    def bind_flush(self, hook: Callable[[], None]) -> None:
        """Register a hook that folds batched local counters into the dict.

        The hook must be idempotent: add its pending deltas to
        ``counters`` and zero them.  It runs before every read.
        """
        self._flush_hook = hook

    def flush(self) -> None:
        """Fold any batched counters in (no-op without a bound hook)."""
        if self._flush_hook is not None:
            self._flush_hook()

    def detach_flush(self) -> None:
        """Flush and unbind the hook (and all descendants' hooks).

        Called when a run finishes so the stats tree becomes plain data —
        picklable across process boundaries, free of references back into
        the hardware models.
        """
        self.flush()
        self._flush_hook = None
        for child in self.children.values():
            child.detach_flush()

    # -- counter access ------------------------------------------------
    def bump(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``key`` (creating it at zero)."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def set(self, key: str, value: float) -> None:
        self.counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        if self._flush_hook is not None:
            self._flush_hook()
        return self.counters.get(key, default)

    def __getitem__(self, key: str) -> "StatGroup":
        """Child-group access; creates the child on first use."""
        child = self.children.get(key)
        if child is None:
            child = StatGroup(key)
            self.children[key] = child
        return child

    # -- aggregation ----------------------------------------------------
    def flat(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to ``{"group.sub.counter": value}``."""
        if self._flush_hook is not None:
            self._flush_hook()
        here = f"{prefix}{self.name}." if self.name else prefix
        out = {f"{here}{k}": v for k, v in self.counters.items()}
        for child in self.children.values():
            out.update(child.flat(here))
        return out

    def total(self, key: str) -> float:
        """Sum of ``key`` over this group and all descendants."""
        if self._flush_hook is not None:
            self._flush_hook()
        result = self.counters.get(key, 0)
        for child in self.children.values():
            result += child.total(key)
        return result

    def reset(self) -> None:
        self.flush()
        self.counters.clear()
        for child in self.children.values():
            child.reset()

    def __iter__(self) -> Iterator[str]:
        if self._flush_hook is not None:
            self._flush_hook()
        return iter(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {len(self.counters)} counters, {len(self.children)} children)"


class Stats(StatGroup):
    """Root of the statistics tree for one simulation run."""

    def __init__(self) -> None:
        super().__init__("")

    def snapshot(self) -> Dict[str, float]:
        return self.flat()

    @staticmethod
    def delta(before: Mapping[str, float], after: Mapping[str, float]) -> Dict[str, float]:
        """Per-key difference ``after - before`` (missing keys treated as 0)."""
        keys = set(before) | set(after)
        return {k: after.get(k, 0) - before.get(k, 0) for k in keys}

    def to_csv(self) -> str:
        rows = ["counter,value"]
        for key, value in sorted(self.flat().items()):
            rows.append(f"{key},{value}")
        return "\n".join(rows)
