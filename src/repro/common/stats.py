"""Hierarchical statistics registry.

Every hardware model owns a :class:`StatGroup` under a shared :class:`Stats`
root, and bumps named counters as events happen.  The registry supports

* cheap increments (plain dict arithmetic, no object churn on the hot path),
* nested namespaces (``stats["l1"]["demand_miss"]``),
* snapshot/delta for measuring a window of execution,
* flat export for CSV-style reporting.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping


class StatGroup:
    """One namespace of counters, with optional nested child groups."""

    __slots__ = ("name", "counters", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: Dict[str, float] = {}
        self.children: Dict[str, "StatGroup"] = {}

    # -- counter access ------------------------------------------------
    def bump(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``key`` (creating it at zero)."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def set(self, key: str, value: float) -> None:
        self.counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        return self.counters.get(key, default)

    def __getitem__(self, key: str) -> "StatGroup":
        """Child-group access; creates the child on first use."""
        child = self.children.get(key)
        if child is None:
            child = StatGroup(key)
            self.children[key] = child
        return child

    # -- aggregation ----------------------------------------------------
    def flat(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to ``{"group.sub.counter": value}``."""
        here = f"{prefix}{self.name}." if self.name else prefix
        out = {f"{here}{k}": v for k, v in self.counters.items()}
        for child in self.children.values():
            out.update(child.flat(here))
        return out

    def total(self, key: str) -> float:
        """Sum of ``key`` over this group and all descendants."""
        result = self.counters.get(key, 0)
        for child in self.children.values():
            result += child.total(key)
        return result

    def reset(self) -> None:
        self.counters.clear()
        for child in self.children.values():
            child.reset()

    def __iter__(self) -> Iterator[str]:
        return iter(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {len(self.counters)} counters, {len(self.children)} children)"


class Stats(StatGroup):
    """Root of the statistics tree for one simulation run."""

    def __init__(self) -> None:
        super().__init__("")

    def snapshot(self) -> Dict[str, float]:
        return self.flat()

    @staticmethod
    def delta(before: Mapping[str, float], after: Mapping[str, float]) -> Dict[str, float]:
        """Per-key difference ``after - before`` (missing keys treated as 0)."""
        keys = set(before) | set(after)
        return {k: after.get(k, 0) - before.get(k, 0) for k in keys}

    def to_csv(self) -> str:
        rows = ["counter,value"]
        for key, value in sorted(self.flat().items()):
            rows.append(f"{key},{value}")
        return "\n".join(rows)
