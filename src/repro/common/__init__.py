"""Shared infrastructure: configuration, statistics, hashing, counters.

This subpackage holds the building blocks that every other part of the
simulator depends on but that are not themselves architectural models:

* :mod:`repro.common.config` — frozen dataclasses describing the simulated
  machine, with constructors reproducing the paper's Table 1 defaults.
* :mod:`repro.common.stats` — a hierarchical counter registry used by all
  hardware models to report what happened during a run.
* :mod:`repro.common.hashing` — the index hash functions used by the
  pollution-filter history table and the branch predictor structures.
* :mod:`repro.common.saturating` — numpy-backed arrays of n-bit saturating
  counters (the paper's history table entries and bimodal predictor cells).
"""

from repro.common.config import (
    CacheConfig,
    FilterConfig,
    FilterKind,
    HierarchyConfig,
    PrefetchConfig,
    ProcessorConfig,
    SimulationConfig,
)
from repro.common.hashing import fold_xor, multiplicative_hash, table_index
from repro.common.saturating import SaturatingCounterArray
from repro.common.stats import StatGroup, Stats

__all__ = [
    "CacheConfig",
    "FilterConfig",
    "FilterKind",
    "HierarchyConfig",
    "PrefetchConfig",
    "ProcessorConfig",
    "SimulationConfig",
    "SaturatingCounterArray",
    "StatGroup",
    "Stats",
    "fold_xor",
    "multiplicative_hash",
    "table_index",
]
