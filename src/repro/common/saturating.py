"""Arrays of n-bit saturating counters.

The paper's history table and the bimodal branch predictor are both arrays
of 2-bit saturating counters with branch-predictor update semantics:
increment on a positive outcome, decrement on a negative one, clamping at
the ends.  The array is numpy-backed so snapshots and bulk statistics are
cheap, while single-entry update stays a couple of integer operations.
"""

from __future__ import annotations

import numpy as np


class SaturatingCounterArray:
    """``n`` independent saturating counters of ``bits`` bits each."""

    __slots__ = ("values", "max_value", "threshold")

    def __init__(self, entries: int, bits: int = 2, initial: int = 2, threshold: int = 2) -> None:
        if entries < 1:
            raise ValueError("need at least one counter")
        if not 1 <= bits <= 8:
            raise ValueError("bits must be in [1, 8]")
        self.max_value = (1 << bits) - 1
        if not 0 <= initial <= self.max_value:
            raise ValueError("initial value out of range")
        if not 0 < threshold <= self.max_value:
            raise ValueError("threshold out of range")
        self.threshold = threshold
        self.values = np.full(entries, initial, dtype=np.uint8)

    def __len__(self) -> int:
        return len(self.values)

    def strengthen(self, index: int) -> None:
        """Saturating increment (outcome confirmed the predicted direction)."""
        v = self.values[index]
        if v < self.max_value:
            self.values[index] = v + 1

    def weaken(self, index: int) -> None:
        """Saturating decrement."""
        v = self.values[index]
        if v > 0:
            self.values[index] = v - 1

    def update(self, index: int, positive: bool) -> None:
        if positive:
            self.strengthen(index)
        else:
            self.weaken(index)

    def predict(self, index: int) -> bool:
        """True when the counter is at or above the decision threshold."""
        return bool(self.values[index] >= self.threshold)

    def value(self, index: int) -> int:
        return int(self.values[index])

    def fill(self, value: int) -> None:
        if not 0 <= value <= self.max_value:
            raise ValueError("value out of range")
        self.values.fill(value)

    def predict_many(self, indices: np.ndarray) -> np.ndarray:
        """Batch lookup: boolean array, True where the counter allows.

        Lookups are state-free, so the batch result is element-for-element
        identical to calling :meth:`predict` in a loop — the vector engine
        uses this for whole-chunk filter decisions.
        """
        return self.values[np.asarray(indices, dtype=np.int64)] >= self.threshold

    def validate(self, site: str = "counters") -> None:
        """Sanitizer audit: every counter within [0, max_value].

        Vectorised (one numpy comparison over the whole array) so the
        periodic sweep can afford it at any table size; names the first
        escaping index for reproduction.
        """
        from repro.sanitize import SanitizerViolation

        bad = np.nonzero(self.values > self.max_value)[0]
        if len(bad):
            index = int(bad[0])
            raise SanitizerViolation(
                site,
                f"counter {index} holds {int(self.values[index])}, outside "
                f"[0, {self.max_value}] ({len(bad)} counter(s) escaped)",
                snapshot={"index": index, "value": int(self.values[index]), "max": self.max_value},
            )

    # -- kernel-engine array views ---------------------------------------
    def export_int64(self) -> np.ndarray:
        """A fresh int64 copy of the counter values.

        The compiled engine tiers update counters in flat int64 arrays
        (uint8 arithmetic in a kernel invites silent wraparound); pair
        with :meth:`absorb_int64` to fold the result back.
        """
        return self.values.astype(np.int64)

    def absorb_int64(self, values: np.ndarray) -> None:
        """Write back an array exported by :meth:`export_int64`.

        Range-checked: a kernel that let a counter escape ``[0,
        max_value]`` corrupted its update rule, and absorbing the value
        would truncate the evidence into a plausible-looking state.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.shape != self.values.shape:
            raise ValueError(
                f"counter array shape {arr.shape} != table shape {self.values.shape}"
            )
        if len(arr) and (int(arr.min()) < 0 or int(arr.max()) > self.max_value):
            raise ValueError(
                f"counter values escape [0, {self.max_value}]: "
                f"min {int(arr.min())}, max {int(arr.max())}"
            )
        self.values[:] = arr.astype(np.uint8)

    # -- analysis helpers ------------------------------------------------
    def fraction_predicting_true(self) -> float:
        return float(np.mean(self.values >= self.threshold))

    def histogram(self) -> np.ndarray:
        """Counter-value histogram, length ``max_value + 1``."""
        return np.bincount(self.values, minlength=self.max_value + 1)
