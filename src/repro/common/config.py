"""Machine configuration dataclasses.

Every structural parameter of the simulated machine lives here, as frozen
dataclasses, so a :class:`SimulationConfig` fully determines a run (together
with the input trace and seed).  The constructors :meth:`SimulationConfig
.paper_default` and friends reproduce Table 1 of the paper:

======================  =======================================
Target frequency        2 GHz (implicit; latencies in cycles)
Issue / retire          8 instructions per cycle
Reorder buffer          128 entries
Load/store queue        64 entries
Branch predictor        bimodal, 2048 entries
BTB                     4-way, 4096 sets
L1 I/D                  8 KB, 32 B lines, direct-mapped, 1 cycle
L1 D ports              3 (universal read/write)
L2 I/D                  512 KB, 32 B lines, 4-way, 15 cycles
L2 ports                1
Memory latency          150 core cycles
Prefetch queue          64 entries
History table           4096 entries (1 KB of 2-bit counters)
======================  =======================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any


class FilterKind(enum.Enum):
    """Which pollution filter is wired between prefetchers and the L1."""

    NONE = "none"
    PA = "pa"
    PC = "pc"
    STATIC = "static"
    ORACLE = "oracle"
    ADAPTIVE = "adaptive"

    @classmethod
    def from_name(cls, name: str) -> "FilterKind":
        """Resolve a filter name with an actionable error on a typo."""
        try:
            return cls(str(name).strip().lower())
        except ValueError:
            known = ", ".join(kind.value for kind in cls)
            raise ValueError(
                f"unknown filter {name!r}: choose one of {known}"
            ) from None


#: Engine tiers :func:`repro.core.interval.make_engine` can build.  Kept
#: here (the leaf of the import graph) so configs can be validated before
#: any engine module is imported or any worker is spawned.
KNOWN_ENGINES = ("pipeline", "interval", "vector", "kernel")


def _power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        hint = ""
        if value > 0:
            below = 1 << (value.bit_length() - 1)
            hint = f" (nearest valid: {below} or {below * 2})"
        raise ValueError(f"{name} must be a positive power of two, got {value}{hint}")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``assoc == 0`` is shorthand for fully associative (one set).
    """

    size_bytes: int
    line_bytes: int = 32
    assoc: int = 1
    latency: int = 1
    ports: int = 1
    writeback: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        _power_of_two("line_bytes", self.line_bytes)
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        n_lines = self.size_bytes // self.line_bytes
        assoc = self.assoc if self.assoc else n_lines
        if n_lines % assoc:
            raise ValueError("line count must be a multiple of associativity")
        _power_of_two("num_sets", n_lines // assoc)
        if self.latency < 1:
            raise ValueError("cache latency must be at least 1 cycle")
        if self.ports < 1:
            raise ValueError("cache must have at least one port")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def ways(self) -> int:
        """Effective associativity (resolves the fully-associative shorthand)."""
        return self.assoc if self.assoc else self.num_lines

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    @property
    def offset_bits(self) -> int:
        return self.line_bytes.bit_length() - 1

    def line_address(self, byte_address: int) -> int:
        """Strip the line-offset bits from a byte address."""
        return byte_address >> self.offset_bits

    def set_index(self, line_address: int) -> int:
        return line_address & (self.num_sets - 1)


@dataclass(frozen=True)
class HierarchyConfig:
    """The full data-side memory hierarchy: L1 D, unified L2, memory."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=8 * 1024, line_bytes=32, assoc=1, latency=1, ports=3
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=512 * 1024, line_bytes=32, assoc=4, latency=15, ports=1
        )
    )
    memory_latency: int = 150
    bus_bytes: int = 64
    mshr_entries: int = 32

    def __post_init__(self) -> None:
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        if self.memory_latency < 1:
            raise ValueError("memory latency must be positive")
        if self.mshr_entries < 1:
            raise ValueError("need at least one MSHR")


@dataclass(frozen=True)
class ProcessorConfig:
    """Out-of-order core parameters (Table 1, processor section)."""

    issue_width: int = 8
    retire_width: int = 8
    rob_entries: int = 128
    lsq_entries: int = 64
    branch_predictor_entries: int = 2048
    btb_sets: int = 4096
    btb_ways: int = 4
    mispredict_penalty: int = 8

    def __post_init__(self) -> None:
        for name in ("issue_width", "retire_width", "rob_entries", "lsq_entries"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        _power_of_two("branch_predictor_entries", self.branch_predictor_entries)
        _power_of_two("btb_sets", self.btb_sets)


@dataclass(frozen=True)
class PrefetchConfig:
    """Which prefetch generators are active and how aggressive they are."""

    nsp: bool = True
    sdp: bool = True
    software: bool = True
    stride: bool = False
    queue_entries: int = 64
    #: lines fetched per trigger.  The paper studies *aggressive* prefetching
    #: (Figure 2: prefetches are ~0.3-0.6x of demand traffic); degree 2
    #: reproduces that pressure on our shorter traces.  Ablations sweep it.
    degree: int = 2
    stride_table_entries: int = 256

    def __post_init__(self) -> None:
        if self.queue_entries < 1:
            raise ValueError("prefetch queue needs at least one entry")
        if self.degree < 1:
            raise ValueError("prefetch degree must be at least 1")

    @property
    def any_enabled(self) -> bool:
        return self.nsp or self.sdp or self.software or self.stride


@dataclass(frozen=True)
class FilterConfig:
    """The pollution filter: kind, history table geometry, thresholds."""

    kind: FilterKind = FilterKind.NONE
    table_entries: int = 4096
    counter_bits: int = 2
    initial_value: int = 2
    threshold: int = 2
    static_bad_fraction: float = 0.5
    adaptive_accuracy_floor: float = 0.5
    adaptive_window: int = 512

    def __post_init__(self) -> None:
        _power_of_two("table_entries", self.table_entries)
        if not 1 <= self.counter_bits <= 8:
            raise ValueError("counter_bits must be in [1, 8]")
        top = (1 << self.counter_bits) - 1
        if not 0 <= self.initial_value <= top:
            raise ValueError("initial_value outside counter range")
        if not 0 < self.threshold <= top:
            raise ValueError("threshold outside counter range")
        if not 0.0 <= self.static_bad_fraction <= 1.0:
            raise ValueError("static_bad_fraction must be a fraction")

    @property
    def table_bytes(self) -> int:
        """Storage cost of the history table (the paper quotes 1 KB at 4K×2b)."""
        return self.table_entries * self.counter_bits // 8


@dataclass(frozen=True)
class PrefetchBufferConfig:
    """Dedicated fully-associative prefetch buffer (Section 5.5)."""

    enabled: bool = False
    entries: int = 16

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("prefetch buffer needs at least one entry")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce one simulation run."""

    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    filter: FilterConfig = field(default_factory=FilterConfig)
    prefetch_buffer: PrefetchBufferConfig = field(default_factory=PrefetchBufferConfig)
    max_instructions: int | None = None
    #: Instructions executed before measurement starts.  Structures (caches,
    #: predictors, history table) warm up during this window; all reported
    #: statistics cover only the post-warmup region.  Stands in for the
    #: paper's 300M-instruction runs where cold-start effects vanish.
    warmup_instructions: int = 0
    #: Simulation engine tier: ``"pipeline"`` (timing-accurate, default),
    #: ``"interval"`` (closed-form timing), ``"vector"`` (batch
    #: functional replay — classification-accurate, no real timing; see
    #: :mod:`repro.core.vector`), or ``"kernel"`` (the vector semantics
    #: lowered to compiled flat-array kernels, bit-identical counters at
    #: sweep scale; see :mod:`repro.core.kernel`).  An explicit
    #: ``engine=`` argument to :class:`~repro.core.simulator.Simulator`
    #: overrides this field.
    engine: str = "pipeline"
    #: Opt-in runtime invariant checking (see :mod:`repro.sanitize`).
    #: Deliberately excluded from cache fingerprints: sanitized runs are
    #: bit-identical to unsanitized ones, so they share cached results.
    sanitize: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "SimulationConfig":
        """Check cross-field invariants; raise actionable errors, return self.

        The sub-configs validate their own fields at construction; this
        collects everything that spans fields or names external components
        (engine tier, vector-engine feature support).  The CLI calls it on
        the fully-derived config before spawning any worker so a bad
        config fails in the parent with one clear message.
        """
        problems = []
        if self.warmup_instructions < 0:
            problems.append("warmup must be non-negative")
        if self.max_instructions is not None and self.max_instructions <= self.warmup_instructions:
            problems.append(
                f"max_instructions ({self.max_instructions}) must exceed the "
                f"warmup window ({self.warmup_instructions})"
            )
        if not isinstance(self.engine, str) or self.engine not in KNOWN_ENGINES:
            problems.append(
                f"unknown engine {self.engine!r}: choose one of {', '.join(KNOWN_ENGINES)}"
            )
        if not isinstance(self.filter.kind, FilterKind):
            problems.append(
                f"filter kind must be a FilterKind, got {self.filter.kind!r} "
                f"(use FilterKind.from_name(...) to resolve names)"
            )
        if problems:
            raise ValueError("; ".join(problems))
        return self

    # ------------------------------------------------------------------
    # Paper-configuration constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_default(cls, filter_kind: FilterKind = FilterKind.NONE) -> "SimulationConfig":
        """The Table 1 machine: 8 KB direct-mapped L1, 3 ports, 1-cycle hit."""
        return cls(filter=FilterConfig(kind=filter_kind))

    @classmethod
    def paper_32kb(cls, filter_kind: FilterKind = FilterKind.NONE) -> "SimulationConfig":
        """Section 5.2.2: 32 KB L1 with a 4-cycle access latency."""
        base = cls.paper_default(filter_kind)
        l1 = CacheConfig(size_bytes=32 * 1024, line_bytes=32, assoc=1, latency=4, ports=3)
        return base.with_l1(l1)

    @classmethod
    def paper_16kb(cls, filter_kind: FilterKind = FilterKind.NONE) -> "SimulationConfig":
        """Section 5.2.1 ablation: a 16 KB L1 instead of 8 KB + history table."""
        base = cls.paper_default(filter_kind)
        l1 = CacheConfig(size_bytes=16 * 1024, line_bytes=32, assoc=1, latency=2, ports=3)
        return base.with_l1(l1)

    @classmethod
    def paper_ports(cls, ports: int, filter_kind: FilterKind = FilterKind.PA) -> "SimulationConfig":
        """Section 5.4 sweep: 3/4/5 universal L1 ports with latency 1/2/3."""
        latency = {3: 1, 4: 2, 5: 3}.get(ports)
        if latency is None:
            raise ValueError("the paper evaluates 3, 4, or 5 L1 ports")
        base = cls.paper_default(filter_kind)
        l1 = CacheConfig(size_bytes=8 * 1024, line_bytes=32, assoc=1, latency=latency, ports=ports)
        return base.with_l1(l1)

    # ------------------------------------------------------------------
    # Derivation helpers (frozen dataclasses, so all edits return copies)
    # ------------------------------------------------------------------
    def with_l1(self, l1: CacheConfig) -> "SimulationConfig":
        return replace(self, hierarchy=replace(self.hierarchy, l1=l1))

    def with_filter(self, **kwargs: Any) -> "SimulationConfig":
        return replace(self, filter=replace(self.filter, **kwargs))

    def with_prefetch(self, **kwargs: Any) -> "SimulationConfig":
        return replace(self, prefetch=replace(self.prefetch, **kwargs))

    def with_buffer(self, enabled: bool = True, entries: int = 16) -> "SimulationConfig":
        return replace(self, prefetch_buffer=PrefetchBufferConfig(enabled=enabled, entries=entries))

    def with_warmup(self, instructions: int) -> "SimulationConfig":
        return replace(self, warmup_instructions=instructions)

    def with_engine(self, engine: str) -> "SimulationConfig":
        return replace(self, engine=engine)

    def with_sanitize(self, enabled: bool = True) -> "SimulationConfig":
        return replace(self, sanitize=enabled)

    # ------------------------------------------------------------------
    # Plain-dict round trip (shared-FS work queue, job files)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The config as JSON-serialisable plain data (enums by value).

        Unlike :func:`repro.analysis.result_cache.config_fingerprint`
        this keeps every field (including ``sanitize``) — it is a full
        round trip for shipping configs through queue files, not a cache
        key.  :meth:`from_dict` inverts it exactly.
        """
        import dataclasses as _dc

        def canonical(obj: Any) -> Any:
            if isinstance(obj, enum.Enum):
                return obj.value
            if isinstance(obj, dict):
                return {str(k): canonical(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [canonical(v) for v in obj]
            return obj

        return canonical(_dc.asdict(self))

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output (validates on build)."""
        filter_fields = dict(data["filter"])
        filter_fields["kind"] = FilterKind(filter_fields["kind"])
        return cls(
            processor=ProcessorConfig(**data["processor"]),
            hierarchy=HierarchyConfig(
                l1=CacheConfig(**data["hierarchy"]["l1"]),
                l2=CacheConfig(**data["hierarchy"]["l2"]),
                memory_latency=data["hierarchy"]["memory_latency"],
                bus_bytes=data["hierarchy"]["bus_bytes"],
                mshr_entries=data["hierarchy"]["mshr_entries"],
            ),
            prefetch=PrefetchConfig(**data["prefetch"]),
            filter=FilterConfig(**filter_fields),
            prefetch_buffer=PrefetchBufferConfig(**data["prefetch_buffer"]),
            max_instructions=data.get("max_instructions"),
            warmup_instructions=data.get("warmup_instructions", 0),
            engine=data.get("engine", "pipeline"),
            sanitize=data.get("sanitize", False),
        )

    def describe(self) -> str:
        """Render the configuration as a Table 1-style text block."""
        p, h, f = self.processor, self.hierarchy, self.filter
        lines = [
            "Processor",
            f"  Issue/Retire      {p.issue_width} inst/cycle",
            f"  Reorder Buffer    {p.rob_entries} entries",
            f"  Load/Store Queue  {p.lsq_entries} entries",
            f"  Branch Predictor  Bimodal, {p.branch_predictor_entries} entries",
            f"  BTB               {p.btb_ways}-way, {p.btb_sets} sets",
            "Caches",
            f"  L1 D              {h.l1.size_bytes // 1024}KB, {h.l1.line_bytes}B line, "
            f"{'direct-mapped' if h.l1.ways == 1 else f'{h.l1.ways}-way'}, {h.l1.latency} cycle(s)",
            f"  L1 D ports        {h.l1.ports}",
            f"  L2                {h.l2.size_bytes // 1024}KB, {h.l2.line_bytes}B line, "
            f"{h.l2.ways}-way, {h.l2.latency} cycles",
            "Memory",
            f"  Latency           {h.memory_latency} core cycles",
            f"  Bus               {h.bus_bytes}-byte wide",
            "Prefetcher",
            f"  Queue Length      {self.prefetch.queue_entries} entries",
            "Pollution Filter",
            f"  Kind              {f.kind.value}",
            f"  History table     {f.table_bytes}B, {f.table_entries} entries",
        ]
        return "\n".join(lines)
