"""Index hash functions for direct-indexed hardware tables.

The paper's history table is "directly indexed" by either the prefetch line
address (PA scheme) or the triggering PC (PC scheme), through "a hash
function".  Real hardware uses cheap bit-mixing; we provide the three common
choices and a dispatcher so experiments can compare them:

* ``modulo``         — low bits only (what a naive direct index does),
* ``fold_xor``       — XOR-fold the upper bits into the index bits, the usual
                       hardware fix for power-of-two stride aliasing,
* ``multiplicative`` — Knuth's fixed-point golden-ratio multiply, strongest
                       mixing that is still a single multiply in hardware.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def fold_xor(value: int, index_bits: int) -> int:
    """XOR-fold a 64-bit value down to ``index_bits`` bits."""
    value &= _MASK64
    folded = 0
    while value:
        folded ^= value
        value >>= index_bits
    return folded & ((1 << index_bits) - 1)


def multiplicative_hash(value: int, index_bits: int) -> int:
    """Fibonacci hashing: multiply by the 64-bit golden ratio, take top bits."""
    return (((value & _MASK64) * _GOLDEN64) & _MASK64) >> (64 - index_bits)


def modulo_hash(value: int, index_bits: int) -> int:
    return value & ((1 << index_bits) - 1)


_HASHES: dict[str, Callable[[int, int], int]] = {
    "modulo": modulo_hash,
    "fold_xor": fold_xor,
    "multiplicative": multiplicative_hash,
}


def table_index(value: int, table_entries: int, scheme: str = "fold_xor") -> int:
    """Map ``value`` to an index in ``[0, table_entries)``.

    ``table_entries`` must be a power of two (checked by the caller's config).
    """
    bits = table_entries.bit_length() - 1
    if bits == 0:
        return 0
    try:
        fn = _HASHES[scheme]
    except KeyError:
        raise ValueError(f"unknown hash scheme {scheme!r}; choose from {sorted(_HASHES)}") from None
    return fn(value, bits)


def table_index_array(values: np.ndarray, table_entries: int, scheme: str = "fold_xor") -> np.ndarray:
    """Vectorised :func:`table_index`: map a whole array of keys at once.

    Element-for-element identical to the scalar function (the vector engine
    precomputes filter-table indices for entire trace chunks this way).
    Returns an ``int64`` array of indices in ``[0, table_entries)``.
    """
    bits = table_entries.bit_length() - 1
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if bits == 0:
        return np.zeros(len(v), dtype=np.int64)
    if scheme == "modulo":
        return (v & np.uint64(table_entries - 1)).astype(np.int64)
    if scheme == "multiplicative":
        return ((v * np.uint64(_GOLDEN64)) >> np.uint64(64 - bits)).astype(np.int64)
    if scheme != "fold_xor":
        raise ValueError(f"unknown hash scheme {scheme!r}; choose from {sorted(_HASHES)}")
    v = v.copy()
    out = np.zeros(len(v), dtype=np.uint64)
    shift = np.uint64(bits)
    while v.any():
        out ^= v
        v >>= shift
    return (out & np.uint64((1 << bits) - 1)).astype(np.int64)


def available_schemes() -> tuple[str, ...]:
    return tuple(sorted(_HASHES))
