#!/usr/bin/env python3
"""Workload atlas: the locality signature of every Table 2 benchmark.

Characterises each synthetic benchmark *from its trace alone* (no
simulation): memory-reference fraction, footprint, the hit rates an
ideal 8 KB / 512 KB LRU cache would achieve (reuse-distance analysis),
stride predictability, branch predictability, and software-prefetch
density.  This is the evidence that the generators reproduce the paper's
benchmark classes: compare the ideal-cache columns against Table 2's
measured miss rates and the stride column against which benchmarks the
paper calls prefetch-friendly.

Run:  python examples/workload_atlas.py [n_insts]
"""

import sys

from repro.trace.analysis import characterise
from repro.workloads import build_trace, get_workload, workload_names

COLUMNS = (
    ("mem%", "memory_fraction", "{:5.2f}"),
    ("fp KB", "footprint_kb", "{:7.0f}"),
    ("L1 hit*", "l1_sized_hit_rate", "{:7.2f}"),
    ("L2 hit*", "l2_sized_hit_rate", "{:7.2f}"),
    ("strided", "strided_load_fraction", "{:7.2f}"),
    ("pred.br", "predictable_branch_fraction", "{:7.2f}"),
    ("sw pf", "software_prefetches", "{:6.0f}"),
)


def main() -> None:
    n_insts = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    print(f"trace-level characterisation at {n_insts} instructions "
          "(*ideal fully-assoc LRU hit rate at 8KB/512KB)")
    header = f"{'benchmark':<10} " + " ".join(name.rjust(7) for name, _, _ in COLUMNS)
    print(header)
    print("-" * len(header))
    for name in workload_names():
        stats = characterise(build_trace(name, n_insts, seed=0))
        cells = " ".join(fmt.format(stats[key]).rjust(7) for _, key, fmt in COLUMNS)
        print(f"{name:<10} {cells}")
    print()
    print(f"{'benchmark':<10} {'paper L1 miss':>13} {'paper L2 miss':>13}  suite")
    for name in workload_names():
        info = get_workload(name).info
        print(f"{name:<10} {info.paper_l1_miss:13.3f} {info.paper_l2_miss:13.3f}  {info.suite}")


if __name__ == "__main__":
    main()
