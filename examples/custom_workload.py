#!/usr/bin/env python3
"""Bring your own workload: drive the simulator with a custom trace.

Demonstrates the library's extension surface:

  * compose a trace from the synthetic primitives (a database-style scan
    with an index side-structure) using :class:`TraceBuilder`,
  * run the compiler software-prefetch pass over it,
  * simulate under the adaptive filter — the paper's "advanced features"
    extension that only filters once prefetch accuracy degrades.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import FilterKind, SimulationConfig, Trace, TraceBuilder, run_simulation
from repro.trace.synth import strided_addresses, zipf_addresses
from repro.workloads import insert_software_prefetches
from repro.workloads.base import emit_access_block, mix_local_accesses

TABLE_BASE = 0x4000_0000
INDEX_BASE = 0x5000_0000
ROW_BYTES = 128
N_ROWS = 8192  # 1 MB table: larger than the L2
N_KEYS = 4096


def build_scan_trace(n_insts: int = 60_000, seed: int = 0) -> Trace:
    """A table scan with zipf-popular index probes — OLTP-flavoured."""
    rng = np.random.default_rng(seed)
    b = TraceBuilder("dbscan")
    row = 0
    while len(b) < n_insts:
        # Sequential scan over a chunk of rows (prefetch-friendly).
        scan = strided_addresses(TABLE_BASE + row * ROW_BYTES, 64, ROW_BYTES // 4)
        emit_access_block(
            b, rng, "scan", mix_local_accesses(rng, scan, 0.6),
            ops_per_access=3, branch_every=8, branch_taken_rate=0.97,
        )
        row = (row + 16) % N_ROWS
        # Index probes into a B-tree-ish structure (prefetch-hostile).
        probes = zipf_addresses(rng, INDEX_BASE, N_KEYS, 64, 64, s=1.2)
        emit_access_block(
            b, rng, "index", mix_local_accesses(rng, probes, 0.7),
            ops_per_access=2, branch_every=3, branch_taken_rate=0.85,
        )
    return insert_software_prefetches(b.build())


def main() -> None:
    trace = build_scan_trace()
    s = trace.summary()
    print(f"custom trace: {s.instructions} instructions, {s.memory_references} memory refs, "
          f"{s.sw_prefetches} software prefetches, {s.unique_pcs} static PCs")

    base = SimulationConfig.paper_default().with_warmup(20_000)
    print(f"\n{'filter':<10} {'IPC':>7} {'good':>6} {'bad':>6} {'filtered':>9}")
    for kind in (FilterKind.NONE, FilterKind.PA, FilterKind.ADAPTIVE):
        cfg = base.with_filter(kind=kind)
        from repro.core.simulator import Simulator

        r = Simulator(cfg).run(trace)
        t = r.prefetch
        print(f"{kind.value:<10} {r.ipc:7.3f} {t.good:6d} {t.bad:6d} {t.filtered:9d}")
    print("\nThe adaptive filter bypasses filtering while the prefetchers stay "
          "accurate on the scan, and engages on the polluting index probes.")


if __name__ == "__main__":
    main()
