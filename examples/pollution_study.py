#!/usr/bin/env python3
"""Pollution study: how aggressive prefetching hurts, and what filtering buys.

The scenario from the paper's introduction: a small, fast L1 (8 KB
direct-mapped) in front of aggressive prefetching.  For each benchmark
this script measures four machines —

  1. no prefetching at all,
  2. aggressive prefetching, no filter (the polluted baseline),
  3. aggressive prefetching + PA filter,
  4. the oracle (ideal elimination of bad prefetches, Section 3),

and prints the L1 miss rate and IPC of each, showing where pollution
bites (the no-prefetch machine beats the prefetching one) and how much of
the oracle's headroom the realisable filter captures.

Run:  python examples/pollution_study.py [benchmark ...]
"""

import sys

from repro import FilterKind, SimulationConfig, run_workload, workload_names

N_INSTS = 80_000
WARMUP = 30_000


def study(name: str) -> None:
    base = SimulationConfig.paper_default().with_warmup(WARMUP)
    machines = {
        "no prefetch": base.with_prefetch(nsp=False, sdp=False, software=False),
        "no filter": base,
        "PA filter": base.with_filter(kind=FilterKind.PA),
        "oracle": base.with_filter(kind=FilterKind.ORACLE),
    }
    print(f"\n=== {name} ===")
    print(f"{'machine':<12} {'IPC':>7} {'L1 miss':>8} {'good':>6} {'bad':>6}")
    rows = {}
    for label, cfg in machines.items():
        r = run_workload(name, cfg, n_insts=N_INSTS)
        rows[label] = r
        print(
            f"{label:<12} {r.ipc:7.3f} {r.l1_miss_rate:8.3f} "
            f"{r.prefetch.good:6d} {r.prefetch.bad:6d}"
        )
    polluted = rows["no filter"].ipc
    clean = rows["no prefetch"].ipc
    if polluted < clean:
        print(f"-> pollution: aggressive prefetching LOSES {100 * (1 - polluted / clean):.0f}% IPC")
    filt, orc = rows["PA filter"].ipc, rows["oracle"].ipc
    if orc > polluted:
        captured = 100 * (filt - polluted) / (orc - polluted)
        print(f"-> the PA filter captures {captured:.0f}% of the oracle's headroom")


def main() -> None:
    names = sys.argv[1:] or ["em3d", "mcf", "ijpeg"]
    for name in names:
        if name not in workload_names():
            raise SystemExit(f"unknown benchmark {name!r}; choose from {workload_names()}")
        study(name)


if __name__ == "__main__":
    main()
