#!/usr/bin/env python3
"""Design-space exploration: history-table size and L1 port count.

Reproduces the paper's two hardware-budget questions (Sections 5.3-5.4)
for a chosen benchmark:

  * How big does the filter's history table need to be?  (The paper
    settles on 4096 entries = 1 KB.)
  * How many L1 ports are worth their latency cost?  (The paper finds
    diminishing returns past 4.)

Run:  python examples/design_space.py [benchmark]
"""

import sys

from repro import SimulationConfig, FilterKind, run_workload, sweep_history_sizes, sweep_l1_ports

N_INSTS = 80_000
WARMUP = 30_000


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "wave5"
    base = SimulationConfig.paper_default(FilterKind.PA).with_warmup(WARMUP)

    print(f"history-table size sweep — {name} (PA filter)")
    print(f"{'entries':>8} {'bytes':>6} {'IPC':>7} {'good':>6} {'bad':>6}")
    for entries, r in sweep_history_sizes(name, base, n_insts=N_INSTS).items():
        print(
            f"{entries:>8} {entries // 4:>6} {r.ipc:7.3f} "
            f"{r.prefetch.good:6d} {r.prefetch.bad:6d}"
        )

    print()
    print(f"L1 port sweep — {name} (PA filter; latency 1/2/3 cycles at 3/4/5 ports)")
    print(f"{'ports':>6} {'IPC':>7} {'bad/good':>9}")
    for ports, r in sweep_l1_ports(name, n_insts=N_INSTS).items():
        ratio = r.prefetch.bad_good_ratio
        print(f"{ports:>6} {r.ipc:7.3f} {ratio:9.3f}")

    print()
    print("paper's conclusions: 4096 entries suffice (1KB); >4 ports not worth the latency")


if __name__ == "__main__":
    main()
