#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under the paper's three scenarios.

Builds the `em3d` trace (the pollution-heavy Olden benchmark), runs the
Table 1 machine with no filtering, the PA-based filter, and the PC-based
filter, and prints the numbers behind Figures 4-6.

Run:  python examples/quickstart.py
"""

from repro import FilterKind, SimulationConfig, run_workload

N_INSTS = 80_000
WARMUP = 30_000


def main() -> None:
    base = SimulationConfig.paper_default().with_warmup(WARMUP)
    print("Machine under test:")
    print(base.describe())
    print()

    header = f"{'filter':<8} {'IPC':>7} {'good':>7} {'bad':>7} {'filtered':>9} {'bad/good':>9}"
    print(header)
    print("-" * len(header))
    results = {}
    for kind in (FilterKind.NONE, FilterKind.PA, FilterKind.PC):
        cfg = base.with_filter(kind=kind)
        r = run_workload("em3d", cfg, n_insts=N_INSTS)
        results[kind] = r
        t = r.prefetch
        print(
            f"{kind.value:<8} {r.ipc:7.3f} {t.good:7d} {t.bad:7d} "
            f"{t.filtered:9d} {t.bad_good_ratio:9.3f}"
        )

    none, pa = results[FilterKind.NONE], results[FilterKind.PA]
    speedup = 100 * (pa.ipc / none.ipc - 1)
    bad_cut = 100 * (1 - pa.prefetch.bad / max(1, none.prefetch.bad))
    print()
    print(f"PA filter on em3d: {bad_cut:.0f}% of bad prefetches removed, IPC {speedup:+.1f}%")
    print("(paper, all-benchmark means at 8KB: ~97% bad removed, IPC +8.2%)")


if __name__ == "__main__":
    main()
