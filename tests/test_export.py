"""Tests for result export (JSON/CSV) and the extended CLI commands."""

import json

import pytest

from repro.analysis.export import (
    RESULT_FIELDS,
    counters_to_csv,
    result_to_dict,
    results_to_csv,
    results_to_json,
)
from repro.cli import main
from repro.common.config import SimulationConfig
from repro.core.simulator import run_simulation


@pytest.fixture(scope="module")
def result(request):
    from repro.workloads import build_trace

    trace = build_trace("fpppp", 6000, seed=2)
    return run_simulation(SimulationConfig.paper_default(), trace)


class TestResultToDict:
    def test_contains_all_fields(self, result):
        d = result_to_dict(result)
        for field in RESULT_FIELDS:
            assert field in d
        assert d["trace_name"] == "fpppp"
        assert d["prefetch_good"] == result.prefetch.good

    def test_per_source_keys(self, result):
        d = result_to_dict(result, include_sources=True)
        assert "nsp_issued" in d and "sdp_bad" in d and "software_good" in d

    def test_without_sources(self, result):
        d = result_to_dict(result, include_sources=False)
        assert "nsp_issued" not in d

    def test_infinity_mapped_to_none(self, result):
        # bad_good_ratio can be inf when good == 0; simulate via monkeypatch-free check
        d = result_to_dict(result)
        assert d["bad_good_ratio"] is None or isinstance(d["bad_good_ratio"], float)


class TestBatchExport:
    def test_json_roundtrip(self, result):
        data = json.loads(results_to_json([result, result]))
        assert len(data) == 2
        assert data[0]["cycles"] == result.cycles

    def test_csv_structure(self, result):
        text = results_to_csv([result])
        lines = text.splitlines()
        assert len(lines) == 2
        assert len(lines[0].split(",")) == len(lines[1].split(","))
        assert lines[0].startswith("trace_name,")

    def test_csv_empty(self):
        assert results_to_csv([]) == ""

    def test_counters_csv(self, result):
        text = counters_to_csv(result)
        assert text.startswith("counter,value")
        assert "mem.l1." in text


class TestNewCLICommands:
    def test_experiment_command(self, capsys):
        assert main(["experiment", "--id", "t1", "--insts", "4000"]) == 0
        out = capsys.readouterr().out
        assert "System configuration" in out

    def test_sweep_history(self, capsys):
        assert main(["sweep", "--workload", "fpppp", "--what", "history", "--insts", "5000"]) == 0
        assert "history-size sweep" in capsys.readouterr().out

    def test_export_json(self, capsys):
        assert main(["export", "--workload", "fpppp", "--format", "json", "--insts", "4000"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["trace_name"] == "fpppp"

    def test_export_to_file(self, tmp_path, capsys):
        out = tmp_path / "r.csv"
        assert main(["export", "--workload", "fpppp", "--insts", "4000", "--out", str(out)]) == 0
        assert out.read_text().startswith("trace_name,")
