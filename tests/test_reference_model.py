"""Differential testing: the numpy-backed Cache against a plain-Python
reference model under hypothesis-generated access sequences.

The reference model is deliberately naive (dict of sets, explicit LRU
lists) so its correctness is obvious by inspection; any divergence points
at the optimised implementation.
"""

from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.mem.cache import Cache, FillSource


class ReferenceCache:
    """Obviously-correct set-associative LRU cache."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        # per set: list of (line_addr, pib, rib) in LRU->MRU order
        self.sets: Dict[int, List[Tuple[int, bool, bool]]] = {}

    def _set(self, line: int) -> List[Tuple[int, bool, bool]]:
        return self.sets.setdefault(line % self.num_sets, [])

    def contains(self, line: int) -> bool:
        return any(entry[0] == line for entry in self._set(line))

    def access(self, line: int) -> bool:
        entries = self._set(line)
        for i, (addr, pib, rib) in enumerate(entries):
            if addr == line:
                entries.pop(i)
                entries.append((addr, pib, True if pib else rib))
                return True
        return False

    def fill(self, line: int, prefetch: bool) -> Optional[Tuple[int, bool, bool]]:
        entries = self._set(line)
        for i, (addr, pib, rib) in enumerate(entries):
            if addr == line:
                entries.pop(i)
                entries.append((addr, pib, rib))
                return None
        victim = None
        if len(entries) >= self.ways:
            victim = entries.pop(0)
        entries.append((line, prefetch, False))
        return victim


OPS = st.lists(
    st.tuples(
        st.integers(0, 80),     # line address
        st.booleans(),          # fill?
        st.booleans(),          # prefetch-sourced fill?
    ),
    max_size=400,
)


class TestCacheAgainstReference:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_hits_and_contents_match(self, ops):
        config = CacheConfig(size_bytes=1024, line_bytes=32, assoc=4)  # 8 sets x 4 ways
        cache = Cache(config, "dut")
        ref = ReferenceCache(config.num_sets, config.ways)
        for t, (line, is_fill, is_prefetch) in enumerate(ops):
            if is_fill:
                dut_victim = cache.fill(
                    line, t, FillSource.NSP if is_prefetch else FillSource.DEMAND
                )
                ref_victim = ref.fill(line, is_prefetch)
                assert (dut_victim is None) == (ref_victim is None)
                if dut_victim is not None:
                    assert dut_victim.line_addr == ref_victim[0]
                    assert dut_victim.pib == ref_victim[1]
                    assert dut_victim.rib == ref_victim[2]
            else:
                dut_hit, _ = cache.access(line, False, t)
                assert dut_hit == ref.access(line)
            assert cache.contains(line) == ref.contains(line)

    @given(OPS)
    @settings(max_examples=30, deadline=None)
    def test_direct_mapped_variant(self, ops):
        config = CacheConfig(size_bytes=256, line_bytes=32, assoc=1)  # 8 sets x 1 way
        cache = Cache(config, "dut")
        ref = ReferenceCache(config.num_sets, config.ways)
        for t, (line, is_fill, is_prefetch) in enumerate(ops):
            if is_fill:
                dv = cache.fill(line, t, FillSource.SDP if is_prefetch else FillSource.DEMAND)
                rv = ref.fill(line, is_prefetch)
                assert (dv is None) == (rv is None)
                if dv is not None:
                    assert (dv.line_addr, dv.pib, dv.rib) == rv
            else:
                hit, _ = cache.access(line, False, t)
                assert hit == ref.access(line)
