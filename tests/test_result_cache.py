"""Persistent result cache: keys, round-trips, invalidation, tolerance."""

import json
import os

import pytest

from repro.analysis.result_cache import (
    MODEL_VERSION,
    ResultCache,
    config_fingerprint,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
    run_key,
)
from repro.analysis.sweep import run_workload
from repro.common.config import FilterKind, SimulationConfig

N = 8_000


@pytest.fixture(scope="module")
def sample_result():
    cfg = SimulationConfig.paper_default(FilterKind.PA).with_warmup(2_000)
    return run_workload("em3d", cfg, N, 0)


class TestRunKey:
    def test_stable_across_equal_configs(self):
        a = SimulationConfig.paper_default(FilterKind.PA)
        b = SimulationConfig.paper_default(FilterKind.PA)
        assert a is not b
        assert run_key("em3d", a, N, 0) == run_key("em3d", b, N, 0)

    def test_sensitive_to_config_content(self):
        base = SimulationConfig.paper_default(FilterKind.PA)
        assert run_key("em3d", base, N, 0) != run_key(
            "em3d", base.with_filter(table_entries=8192), N, 0
        )

    def test_version_tag_invalidates(self):
        cfg = SimulationConfig.paper_default()
        assert run_key("em3d", cfg, N, 0) != run_key("em3d", cfg, N, 0, version="v-next")
        assert run_key("em3d", cfg, N, 0) == run_key("em3d", cfg, N, 0, version=MODEL_VERSION)

    def test_fingerprint_is_json_serialisable(self):
        fp = config_fingerprint(SimulationConfig.paper_32kb(FilterKind.PC))
        text = json.dumps(fp, sort_keys=True)
        assert "pc" in text  # enum reduced to its value


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, sample_result):
        restored = result_from_dict(result_to_dict(sample_result))
        assert restored.trace_name == sample_result.trace_name
        assert restored.filter_name == sample_result.filter_name
        assert restored.instructions == sample_result.instructions
        assert restored.cycles == sample_result.cycles
        assert restored.prefetch == sample_result.prefetch
        assert restored.per_source == sample_result.per_source
        assert restored.l1_demand_accesses == sample_result.l1_demand_accesses
        assert restored.l1_demand_misses == sample_result.l1_demand_misses
        assert restored.stats.flat() == sample_result.stats.flat()
        assert restored.ipc == pytest.approx(sample_result.ipc)
        assert restored.bad_good_ratio == pytest.approx(sample_result.bad_good_ratio)

    def test_serialised_form_is_plain_json(self, sample_result):
        text = json.dumps(result_to_dict(sample_result))
        assert json.loads(text)["trace_name"] == sample_result.trace_name


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        cache.put("abc123", sample_result)
        restored = cache.get("abc123")
        assert restored is not None
        assert restored.cycles == sample_result.cycles
        assert restored.stats.flat() == sample_result.stats.flat()
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_corrupt_file_tolerated_and_removed(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        cache.put("k", sample_result)
        path = tmp_path / "k.json"
        path.write_text("{ not json")
        assert cache.get("k") is None
        assert not path.exists()  # corrupt entry cleaned up

    def test_structurally_stale_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "old.json").write_text(json.dumps({"schema": "ancient"}))
        assert cache.get("old") is None

    def test_clear_and_len(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        cache.put("a", sample_result)
        cache.put("b", sample_result)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        cache = ResultCache()
        assert cache.directory == tmp_path / "envcache"

    def test_default_dir_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(default_cache_dir()).endswith(os.path.join(".cache", "repro"))


class TestHealthCounters:
    def test_quarantined_counter_tracks_corruption(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        cache.put("k", sample_result)
        (tmp_path / "k.json").write_text("\x00 not json")
        assert cache.get("k") is None
        assert cache.quarantined == 1
        assert cache.stats == {
            "hits": 0, "misses": 1, "quarantined": 1, "stale_tmp_removed": 0,
            "evicted": 0, "budget_bytes": 0, "pressure_skipped": 0,
        }

    def test_plain_miss_is_not_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.stats["quarantined"] == 0 and cache.stats["misses"] == 1

    def test_injected_corruption_is_observable(self, tmp_path, sample_result):
        """corrupt-cache fault -> garbled entry -> quarantined, not wedged."""
        from repro.common.faults import inject_faults

        cache = ResultCache(tmp_path)
        with inject_faults("corrupt-cache@cache"):
            cache.put("k", sample_result)
        fresh = ResultCache(tmp_path)
        assert fresh.get("k") is None
        assert fresh.quarantined == 1


class TestTmpFileHygiene:
    def test_tmp_paths_are_unique_within_a_process(self, tmp_path):
        from repro.common.diskio import tmp_path_for

        target = tmp_path / "k.json"
        a, b = tmp_path_for(target), tmp_path_for(target)
        assert a != b
        assert f".tmp.{os.getpid()}." in a.name and f".tmp.{os.getpid()}." in b.name

    def test_init_sweeps_only_stale_tmp_files(self, tmp_path, sample_result):
        old = tmp_path / "dead.json.tmp.999.0"
        old.write_text("orphan")
        os.utime(old, (1, 1))  # ancient mtime: clearly a dead writer's
        fresh = tmp_path / "live.json.tmp.888.0"
        fresh.write_text("in flight")

        cache = ResultCache(tmp_path)
        assert cache.stale_tmp_removed == 1
        assert not old.exists()
        assert fresh.exists()  # a live writer's file is left alone
        cache.put("k", sample_result)  # and the cache still works
        assert cache.get("k") is not None
