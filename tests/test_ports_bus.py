"""Unit tests for the L1 port arbiter and the bus model."""

import pytest

from repro.mem.bus import Bus, TransferKind
from repro.mem.ports import PortArbiter


class TestPortArbiter:
    def test_demand_takes_earliest_port(self):
        p = PortArbiter(2)
        assert p.acquire_demand(10) == 10
        assert p.acquire_demand(10) == 10
        assert p.acquire_demand(10) == 11  # both busy at 10

    def test_demand_wait_counted(self):
        p = PortArbiter(1)
        p.acquire_demand(0)
        p.acquire_demand(0)
        assert p.stats.get("demand_wait_cycles") == 1

    def test_prefetch_only_takes_idle_port(self):
        p = PortArbiter(1)
        p.acquire_demand(5)  # port busy until 6
        assert p.try_acquire_prefetch(5) is None
        assert p.try_acquire_prefetch(6) == 6

    def test_prefetch_denied_stat(self):
        p = PortArbiter(1)
        p.acquire_demand(5)
        p.try_acquire_prefetch(5)
        assert p.stats.get("prefetch_denied") == 1

    def test_earliest_free(self):
        p = PortArbiter(2)
        p.acquire_demand(3)
        assert p.earliest_free() == 0  # second port untouched

    def test_reset(self):
        p = PortArbiter(2)
        p.acquire_demand(100)
        p.reset()
        assert p.earliest_free() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PortArbiter(0)


class TestBus:
    def test_accounting(self):
        b = Bus(32, 64)
        b.transfer(TransferKind.DEMAND_FILL, 0)
        b.transfer(TransferKind.PREFETCH_FILL, 0)
        b.transfer(TransferKind.PREFETCH_FILL, 0)
        assert b.lines(TransferKind.DEMAND_FILL) == 1
        assert b.lines(TransferKind.PREFETCH_FILL) == 2
        assert b.total_lines == 3
        assert b.prefetch_fraction == pytest.approx(2 / 3)

    def test_occupancy_serialises(self):
        b = Bus(64, 64)  # 1 cycle per line
        t1 = b.transfer(TransferKind.DEMAND_FILL, 0)
        t2 = b.transfer(TransferKind.DEMAND_FILL, 0)
        assert t1 == 1
        assert t2 == 2  # queued behind the first
        assert b.stats.get("queued_cycles") == 1

    def test_wide_line_multi_cycle(self):
        b = Bus(128, 64)  # 2 cycles per line
        assert b.cycles_per_line == 2
        assert b.transfer(TransferKind.WRITEBACK, 0) == 2

    def test_occupancy_disabled(self):
        b = Bus(64, 64, model_occupancy=False)
        b.transfer(TransferKind.DEMAND_FILL, 0)
        t = b.transfer(TransferKind.DEMAND_FILL, 0)
        assert t == 1  # no queueing
        assert b.stats.get("queued_cycles") == 0

    def test_prefetch_fraction_empty(self):
        assert Bus(32, 64).prefetch_fraction == 0.0

    def test_reset(self):
        b = Bus(64, 64)
        b.transfer(TransferKind.DEMAND_FILL, 0)
        b.reset()
        assert b.total_lines == 0
        assert b.transfer(TransferKind.DEMAND_FILL, 0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Bus(0, 64)
