"""Resource-pressure guards: drain-and-exit beats dying mid-write.

The promises under test:

* :class:`PressureGuard` reports real disk/memory pressure and honours
  injected ``enospc@pressure`` / ``mem-pressure@pressure`` faults, so
  the whole pressure envelope is testable without filling a filesystem;
* a draining worker under pressure stops claiming and exits cleanly
  (``stats.stopped == "pressure"``) with everything it already
  published intact — and the CLI maps that to exit code 75 so a
  supervisor can tell "host problem" from "crash";
* :class:`ResultCache` and :class:`TraceStore` writes are *skipped and
  counted* under pressure instead of risking torn files.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.parallel import SimulationJob, execute_job
from repro.analysis.resilience import RetryPolicy
from repro.analysis.result_cache import ResultCache
from repro.analysis.worker import drain_queue
from repro.analysis.workqueue import FileQueue
from repro.common.config import FilterKind, SimulationConfig
from repro.common.diskio import (
    PressureGuard,
    current_rss_bytes,
    free_disk_bytes,
    parse_size,
)
from repro.common.faults import inject_faults
from repro.trace.store import TraceStore

N = 1_500

FAST = RetryPolicy(max_attempts=1, backoff_base=0.02, backoff_max=0.1, jitter=0.25)


def _jobs(n, workload="em3d"):
    cfg = SimulationConfig.paper_default(FilterKind.PA).with_warmup(N // 4)
    return [SimulationJob(workload, cfg, N, seed=i) for i in range(n)]


# ----------------------------------------------------------------------
# parse_size
# ----------------------------------------------------------------------
class TestParseSize:
    def test_plain_bytes_and_suffixes(self):
        assert parse_size("4096") == 4096
        assert parse_size("64k") == 64 * 1024
        assert parse_size("200M") == 200 * 1024**2
        assert parse_size("2g") == 2 * 1024**3

    @pytest.mark.parametrize("bad", ["10gb", "lots", "k", "-5m", "0"])
    def test_malformed_or_nonpositive_raises(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


# ----------------------------------------------------------------------
# PressureGuard: real measurements
# ----------------------------------------------------------------------
class TestGuard:
    def test_quiet_when_resources_are_fine(self, tmp_path):
        guard = PressureGuard(tmp_path, min_free_bytes=1, max_rss_bytes=None)
        assert guard.check() is None
        assert guard.checks == 1

    def test_enospc_when_the_floor_exceeds_the_disk(self, tmp_path):
        free = free_disk_bytes(tmp_path)
        assert free is not None and free > 0
        guard = PressureGuard(tmp_path, min_free_bytes=free * 1000, max_rss_bytes=None)
        reason = guard.check()
        assert reason is not None and reason.startswith("enospc")

    def test_mem_pressure_when_rss_exceeds_the_ceiling(self, tmp_path):
        assert current_rss_bytes() is not None  # /proc or ru_maxrss fallback
        guard = PressureGuard(tmp_path, min_free_bytes=1, max_rss_bytes=1)
        reason = guard.check()
        assert reason is not None and reason.startswith("mem-pressure")

    def test_missing_directory_measures_nearest_ancestor(self, tmp_path):
        guard = PressureGuard(tmp_path / "not" / "yet" / "created", min_free_bytes=1,
                              max_rss_bytes=None)
        assert guard.check() is None


# ----------------------------------------------------------------------
# PressureGuard: injected faults (the pressure fault site)
# ----------------------------------------------------------------------
class TestInjectedPressure:
    def test_enospc_fault_fills_the_disk(self, tmp_path):
        guard = PressureGuard(tmp_path, min_free_bytes=1, max_rss_bytes=None, key="victim")
        with inject_faults("enospc@pressure:match=victim"):
            reason = guard.check()
        assert reason is not None and reason.startswith("enospc")
        assert guard.check() is None  # plan gone, pressure gone

    def test_mem_pressure_fault_ignores_real_rss(self, tmp_path):
        guard = PressureGuard(tmp_path, min_free_bytes=1, max_rss_bytes=None, key="victim")
        with inject_faults("mem-pressure@pressure:match=victim"):
            reason = guard.check()
        assert reason is not None and reason.startswith("mem-pressure")

    def test_attempt_windows_open_and_close(self, tmp_path):
        guard = PressureGuard(tmp_path, min_free_bytes=1, max_rss_bytes=None, key="w")
        with inject_faults("enospc@pressure:attempts=1"):
            assert guard.check() is None  # check 0: window closed
            assert guard.check() is not None  # check 1: window open
            assert guard.check() is None  # check 2: closed again

    def test_match_scopes_the_fault_to_one_guard(self, tmp_path):
        hit = PressureGuard(tmp_path, min_free_bytes=1, max_rss_bytes=None, key="s2r0-ab")
        missed = PressureGuard(tmp_path, min_free_bytes=1, max_rss_bytes=None, key="s1r0-cd")
        with inject_faults("enospc@pressure:match=s2r0"):
            assert hit.check() is not None
            assert missed.check() is None


# ----------------------------------------------------------------------
# Store writes under pressure: skip and count, never tear
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def one_result():
    return execute_job(_jobs(1)[0])


def test_result_cache_skips_writes_under_pressure(tmp_path, one_result):
    cache = ResultCache(tmp_path / "cache")
    with inject_faults("enospc@pressure"):
        cache.put("deadbeef01", one_result)
    assert cache.stats["pressure_skipped"] == 1
    assert cache.get("deadbeef01") is None  # nothing half-written either
    cache.put("deadbeef01", one_result)  # pressure over: writes again
    assert cache.get("deadbeef01") is not None


def test_trace_store_skips_writes_under_pressure(tmp_path):
    store = TraceStore(tmp_path / "traces")
    with inject_faults("enospc@pressure"):
        trace = store.get_or_build("em3d", n_insts=N, seed=0)
    assert trace is not None  # the caller still gets its trace
    assert store.stats["pressure_skipped"] >= 1
    assert not list((tmp_path / "traces").glob("*.npz"))


# ----------------------------------------------------------------------
# Draining under pressure
# ----------------------------------------------------------------------
def test_drain_exits_cleanly_on_pressure_and_a_peer_finishes(tmp_path):
    jobs = _jobs(4)
    queue = FileQueue(tmp_path / "q", lease_ttl=5.0)
    queue.submit(jobs)
    guard = PressureGuard(queue.root, min_free_bytes=1, max_rss_bytes=None, key="q|w1")
    with inject_faults("enospc@pressure:match=w1,attempts=2"):
        stats = drain_queue(queue, worker="w1", batch=1, policy=FAST, poll=0.05, guard=guard)
    # two rounds ran (checks 0 and 1 passed); check 2 hit the window
    assert stats.stopped == "pressure"
    assert stats.executed == 2
    assert stats.pressure_checks == 3
    assert any(d.startswith("pressure-exit: enospc") for d in stats.degradations)
    # the exit was clean: published work intact, no lease left hanging
    assert queue.counts()["done"] == 2
    assert queue.outstanding() == (2, 0)
    # an unpressured peer (or the restarted worker) finishes the drain
    rescue = drain_queue(
        FileQueue(tmp_path / "q", lease_ttl=5.0), worker="w2", batch=2, policy=FAST, poll=0.05
    )
    assert rescue.stopped is None
    assert queue.counts()["done"] == 4


def test_worker_cli_maps_pressure_to_exit_75(tmp_path):
    queue = FileQueue(tmp_path / "q", lease_ttl=5.0)
    queue.submit(_jobs(2))
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_FAULTS"] = "enospc@pressure:match=pressed"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "worker", "--queue-dir", str(queue.root),
         "--name", "pressed", "--batch", "1", "--poll", "0.05"],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 75, proc.stdout + proc.stderr
    assert "pressure" in proc.stdout + proc.stderr
    assert queue.outstanding() == (2, 0)  # nothing claimed, nothing lost
