"""Broker chaos at process scale: kill -9 the broker mid-sweep, resume.

The acceptance scenario from the issue, end to end: a 40-job ``tcp``
sweep through a real ``repro-sim broker`` subprocess, with client-side
connection resets and stalls, a broker-side partition window, and one
SIGKILL of the broker while jobs are in flight.  The interrupted sweep
must degrade to honest unclaimed outcomes (nothing journaled), and one
journaled resume against a *restarted* broker on the same queue
directory must converge bit-identical to a clean serial run — with the
work finished before the kill collected from disk, not re-executed.

Set ``REPRO_CHAOS_ARTIFACT_DIR`` to copy the journal and queue
forensics out of the tmp dir (CI uploads them when the job fails).
"""

import os
import shutil
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.analysis.backend import TCPBackend
from repro.analysis.checkpoint import RunJournal
from repro.analysis.parallel import SimulationJob, run_jobs
from repro.analysis.resilience import RetryPolicy
from repro.common.config import FilterKind, SimulationConfig
from repro.common.faults import inject_faults

N = 1_200

FAST = RetryPolicy(max_attempts=2, backoff_base=0.02, backoff_max=0.1, jitter=0.25)
NET_FAST = RetryPolicy(max_attempts=5, backoff_base=0.02, backoff_max=0.1, jitter=0.25)


def _jobs():
    """40 distinct jobs: two workloads x two filters x table sizes."""
    sizes = (1024, 2048, 4096, 8192, 16384)
    jobs = []
    for workload in ("em3d", "mcf"):
        for kind in (FilterKind.PA, FilterKind.PC):
            cfg = SimulationConfig.paper_default(kind).with_warmup(N // 4)
            for i, size in enumerate(sizes * 2):
                jobs.append(SimulationJob(
                    workload, cfg.with_filter(table_entries=size), N, seed=i // 5,
                ))
    assert len(jobs) == 40
    return jobs


def _fingerprint(result):
    return (
        result.trace_name,
        result.filter_name,
        result.instructions,
        result.cycles,
        result.prefetch,
        result.per_source,
        tuple(sorted(result.stats.flat().items())),
    )


def _export_artifacts(queue_root: Path, journal_path: Path) -> None:
    """Copy forensics somewhere CI can upload them (no-op locally)."""
    dest = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
    if not dest:
        return
    dest_dir = Path(dest) / "broker"
    dest_dir.mkdir(parents=True, exist_ok=True)
    for sub in ("quarantine", "logs", "broker"):
        src = queue_root / sub
        if src.is_dir():
            shutil.copytree(src, dest_dir / sub, dirs_exist_ok=True)
    if journal_path.is_file():
        shutil.copy(journal_path, dest_dir / journal_path.name)


def _start_broker(queue_dir: Path, extra_env=None) -> subprocess.Popen:
    """Start ``repro-sim broker`` on a free port; return the live proc
    with ``.port`` set from its announcement line."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "broker",
         "--queue-dir", str(queue_dir), "--listen", "127.0.0.1:0",
         "--lease-ttl", "2.0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"broker died on startup (exit {proc.wait()})")
        if line.startswith("broker listening on "):
            proc.port = int(line.rsplit(":", 1)[1])
            return proc
    proc.kill()
    raise RuntimeError("broker never announced its port")


def _stop_broker(proc) -> None:
    if proc.poll() is None:
        proc.kill()
        proc.wait()
    proc.stdout.close()


def test_tcp_sweep_survives_broker_sigkill_and_resumes(tmp_path):
    jobs = _jobs()
    serial = [_fingerprint(r) for r in run_jobs(jobs, workers=1, policy=FAST)]

    journal = RunJournal(tmp_path / "journal.jsonl")
    queue_root = tmp_path / "queue"
    # broker-side chaos: its 30th request opens a 0.1s partition window
    # (every connection reset on sight until it heals)
    broker = _start_broker(queue_root, extra_env={
        "REPRO_FAULTS": "partition@network:match=broker|,attempts=30,seconds=0.1",
        "REPRO_FAULT_SEED": "7",
    })
    killed = threading.Event()

    def _kill_when_partially_done():
        # SIGKILL the broker once real work has landed but plenty is
        # still in flight — no shutdown handler runs, as in a crash
        done_dir = queue_root / "done"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and not killed.is_set():
            if done_dir.is_dir() and len(list(done_dir.glob("*.json"))) >= 8:
                os.kill(broker.pid, signal.SIGKILL)
                killed.set()
                return
            time.sleep(0.05)

    killer = threading.Thread(target=_kill_when_partially_done, daemon=True)
    # client-side chaos: every first attempt of claim/complete is reset
    # mid-call, and outstanding polls stall briefly — all must be
    # retried/replayed without duplicating anything
    client_plan = ";".join([
        "conn-reset@network:match=client|claim,attempts=0",
        "conn-reset@network:match=client|complete,attempts=0",
        "stall@network:match=client|outstanding,attempts=0,seconds=0.02",
    ])
    os.environ["REPRO_NET_RETRIES"] = "3"  # spawned workers give up fast
    try:
        with inject_faults(client_plan, seed=11):
            backend = TCPBackend(
                broker=f"127.0.0.1:{broker.port}", spawn=2, batch=2,
                poll=0.05, retry=NET_FAST,
            )
            killer.start()
            report = run_jobs(
                jobs, workers=1, journal=journal, policy=FAST,
                backend=backend, return_report=True,
            )
        killed.set()  # stop the killer if it somehow never fired
        killer.join(timeout=5.0)
        time.sleep(0.1)  # let the SIGKILLed broker become reapable
        assert broker.poll() is not None, "broker was not killed mid-sweep"

        # the interrupted sweep is honest: the broker died, so nothing
        # was collected, nothing journaled, everything resumable
        assert any("unreachable" in d or "unclaimed" in d for d in report.degradations)
        unclaimed = sum(1 for o in report.outcomes if o.unclaimed)
        assert unclaimed == 40
        assert len(journal.load()) == 0
        # the lossy link was ridden out while the broker lived
        assert report.transport["retried_calls"] > 0
        assert report.transport["reconnects"] > 0
        assert report.transport["replayed_ops"] > 0

        # work finished before the kill survived on the broker's disk
        done_before = {p.name: p.read_bytes() for p in (queue_root / "done").glob("*.json")}
        assert len(done_before) >= 8

        # restart the broker on the SAME queue directory, no chaos, and
        # resume: exactly the missing work runs, convergence is
        # bit-identical, and the journal records each job exactly once
        broker2 = _start_broker(queue_root)
        try:
            resumed_backend = TCPBackend(
                broker=f"127.0.0.1:{broker2.port}", spawn=2, batch=2,
                poll=0.05, retry=NET_FAST,
            )
            resumed = run_jobs(
                jobs, workers=1, journal=journal, policy=FAST,
                backend=resumed_backend, return_report=True,
            )
            assert [_fingerprint(o.result) for o in resumed.outcomes] == serial
            assert resumed.transport["broker_restarts"] == 1
            assert not any(o.from_journal for o in resumed.outcomes)
            entries = journal.load()
            assert len(entries) == 40  # exactly once, no duplicates
            # pre-kill results were collected, not re-executed: their
            # sealed records are byte-identical (a re-run would reseal
            # with fresh attempt timings)
            for name, payload in done_before.items():
                assert (queue_root / "done" / name).read_bytes() == payload
        finally:
            _stop_broker(broker2)
    finally:
        os.environ.pop("REPRO_NET_RETRIES", None)
        killed.set()
        _stop_broker(broker)
        _export_artifacts(queue_root, journal.path)
