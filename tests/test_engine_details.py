"""Focused tests for engine internals: drain throttles, backpressure,
interval engine, and extension-slot duck typing."""

import numpy as np
import pytest

from repro.common.config import SimulationConfig
from repro.core.interval import IntervalEngine, make_engine
from repro.core.pipeline import _DRAIN_BURST, _MSHR_DEMAND_RESERVE, OoOPipeline
from repro.core.simulator import Simulator
from repro.prefetch.markov import MarkovPrefetcher
from repro.trace.stream import TraceBuilder
from repro.workloads import build_trace


def streaming_store_trace(n_lines=3000):
    """A pure store stream — the pattern that exposed MSHR runaway."""
    b = TraceBuilder("stores")
    for i in range(n_lines):
        b.store("st", 0x800000 + i * 32)
        b.ops("op", 1)
    return b.build()


class TestStoreBackpressure:
    def test_store_stream_does_not_diverge(self):
        """Without backpressure, MSHR ready times compound into the billions
        and post-stream loads see astronomical latencies."""
        cfg = SimulationConfig.paper_default().with_prefetch(nsp=False, sdp=False, software=False)
        sim = Simulator(cfg)
        cycles = sim.engine.run(streaming_store_trace())
        # ~3000 serialized memory stores cannot take more than a few hundred
        # cycles each even fully serialised.
        assert cycles < 3000 * 400
        stalls = sim.hierarchy.mshr.stats.get("structural_stall_cycles")
        assert stalls < 10**8  # runaway produced ~10^10 before the fix

    def test_backpressure_flag_reaches_engine(self):
        cfg = SimulationConfig.paper_default().with_prefetch(nsp=False, sdp=False, software=False)
        sim = Simulator(cfg)
        sim.engine.run(streaming_store_trace(2000))
        assert sim.hierarchy.mshr.stats.get("structural_stall") > 0


class TestDrainThrottles:
    def test_constants_sane(self):
        assert 1 <= _DRAIN_BURST <= 16
        assert 0 <= _MSHR_DEMAND_RESERVE < 32

    def test_queue_drains_under_stalls(self):
        """Prefetches must actually issue on a miss-heavy trace (the drain
        starvation bug: ports looked perpetually booked in slot-space)."""
        trace = build_trace("em3d", 15000, seed=3)
        sim = Simulator(SimulationConfig.paper_default())
        r = sim.run(trace)
        assert r.prefetch.issued > 100
        # and the queue is not just dropping everything
        assert r.prefetch.dropped < r.prefetch.generated * 0.5


class TestIntervalEngine:
    def test_factory(self):
        cfg = SimulationConfig.paper_default()
        sim = Simulator(cfg, engine="interval")
        assert isinstance(sim.engine, IntervalEngine)

    def test_runs_and_conserves(self):
        trace = build_trace("gcc", 10000, seed=1)
        sim = Simulator(SimulationConfig.paper_default(), engine="interval")
        r = sim.run(trace)
        assert r.prefetch.issued == r.prefetch.good + r.prefetch.bad
        assert 0 < r.ipc <= 8

    def test_faster_than_pipeline_in_cycles_consistency(self):
        """Interval and pipeline engines agree on functional counts exactly
        when timing does not feed back (prefetch off)."""
        cfg = SimulationConfig.paper_default().with_prefetch(nsp=False, sdp=False, software=False)
        trace = build_trace("fpppp", 8000, seed=1, software_prefetch=False)
        rp = Simulator(cfg).run(trace)
        ri = Simulator(cfg, engine="interval").run(trace)
        assert rp.l1_demand_misses == ri.l1_demand_misses
        assert rp.l2_demand_misses == ri.l2_demand_misses

    def test_warmup_supported(self):
        cfg = SimulationConfig.paper_default().with_warmup(4000)
        trace = build_trace("gcc", 10000, seed=1)
        r = Simulator(cfg, engine="interval").run(trace)
        assert r.instructions == len(trace) - 4000


class TestExtensionSlot:
    def test_markov_installable(self):
        cfg = SimulationConfig.paper_default().with_prefetch(
            nsp=False, sdp=False, software=False, stride=True
        )
        sim = Simulator(cfg)
        sim.engine.set_extension_prefetcher(MarkovPrefetcher(entries=256))
        trace = build_trace("mcf", 10000, seed=0)
        r = sim.run(trace)
        from repro.mem.cache import FillSource

        assert r.per_source[FillSource.STRIDE].generated > 0

    def test_stride_address_duck_typing_flag(self):
        cfg = SimulationConfig.paper_default().with_prefetch(stride=True)
        sim = Simulator(cfg)
        assert sim.engine._stride_wants_address is True
        sim.engine.set_extension_prefetcher(MarkovPrefetcher())
        assert sim.engine._stride_wants_address is False

    def test_make_engine_rejects_unknown(self):
        cfg = SimulationConfig.paper_default()
        sim = Simulator(cfg)
        with pytest.raises(ValueError):
            make_engine("magic", cfg, sim.hierarchy, sim.filter, sim.classifier)


class TestLatencyHistogram:
    def test_buckets_cover_all_loads(self):
        from repro.trace.record import InstrClass

        trace = build_trace("em3d", 12000, seed=2)
        sim = Simulator(SimulationConfig.paper_default())
        sim.run(trace)
        lat = sim.stats["pipeline"]["load_latency"]
        total = sum(lat.get(k) for k in ("l1", "l2", "memory", "queued"))
        n_loads = int((trace.iclass == int(InstrClass.LOAD)).sum())
        assert total == n_loads

    def test_hot_trace_is_l1_dominated(self):
        b = TraceBuilder("hot")
        for _ in range(400):
            b.load("ld", 0x1000)
        sim = Simulator(SimulationConfig.paper_default())
        sim.run(b.build())
        lat = sim.stats["pipeline"]["load_latency"]
        # The first access misses to memory and the loads dispatched during
        # its fill merge into the pending MSHR entry (partial latencies);
        # everything after the fill is a pure L1 hit.
        assert lat.get("l1") >= 300
        assert lat.get("l1") + lat.get("l2") + lat.get("memory") + lat.get("queued") == 400

    def test_cold_trace_pays_memory(self):
        b = TraceBuilder("cold")
        for i in range(300):
            b.load("ld", 0x900000 + i * 4096)
            b.ops("op", 4)
        cfg = SimulationConfig.paper_default().with_prefetch(nsp=False, sdp=False, software=False)
        sim = Simulator(cfg)
        sim.run(b.build())
        lat = sim.stats["pipeline"]["load_latency"]
        assert lat.get("memory") + lat.get("queued") > 250
