"""TCP transport: broker + NetQueue protocol, retries, and fault chaos.

The broker is a thin network front over a :class:`FileQueue` — every
test here asserts either that the wire adds *nothing* semantically
(same claims, same records, same counts as touching the directory) or
that the one thing it does add — a lossy link — is ridden out by
retries and idempotent replay.  Faults use the ``network`` site with
``@network`` plans; kill-the-broker chaos at process scale lives in
``test_broker_chaos.py``.
"""

import os
import pickle
import time

import pytest

from repro.analysis.backend import TCPBackend
from repro.analysis.netqueue import (
    Broker,
    BrokerError,
    BrokerUnreachable,
    NetQueue,
    parse_broker_spec,
)
from repro.analysis.parallel import SimulationJob, run_jobs
from repro.analysis.resilience import RetryPolicy, execute_batch
from repro.analysis.worker import drain_queue
from repro.analysis.workqueue import FileQueue, validate_queue_dir
from repro.cli import main
from repro.common.config import FilterKind, SimulationConfig
from repro.common.faults import inject_faults

#: Small backoff so fault tests converge in milliseconds, with enough
#: attempts to outlive every transient plan used below.
FAST = RetryPolicy(max_attempts=6, backoff_base=0.02, backoff_max=0.1, jitter=0.25)


def _jobs(n, workload="em3d", n_insts=2_000):
    cfg = SimulationConfig.paper_default(FilterKind.PA)
    sizes = (1024, 2048, 4096, 8192, 16384)
    return [
        SimulationJob(workload, cfg.with_filter(table_entries=sizes[i % 5]), n_insts, seed=i // 5)
        for i in range(n)
    ]


@pytest.fixture
def broker(tmp_path):
    b = Broker(FileQueue(tmp_path / "q", lease_ttl=0.5), host="127.0.0.1", port=0)
    b.start()
    b.serve_in_thread()
    yield b
    b.stop()


def _client(broker, **kw):
    kw.setdefault("retry", FAST)
    nq = NetQueue("127.0.0.1", broker.port, **kw)
    nq.hello()
    return nq


# ----------------------------------------------------------------------
# Address / directory validation (the satellite)
# ----------------------------------------------------------------------
def test_parse_broker_spec_accepts_host_port():
    assert parse_broker_spec("127.0.0.1:7070") == ("127.0.0.1", 7070)
    assert parse_broker_spec("queue.internal:80") == ("queue.internal", 80)
    assert parse_broker_spec("[::1]:7070") == ("::1", 7070)


def test_parse_broker_spec_rejects_garbage_with_the_flag_name():
    for bad in ("7070", "host:", ":7070", "host:port", "host:99999", "host:0"):
        with pytest.raises(ValueError, match="--broker"):
            parse_broker_spec(bad)
    with pytest.raises(ValueError, match="--listen"):
        parse_broker_spec("nope", what="--listen")
    # a broker may ask the OS for a free port; clients may not
    assert parse_broker_spec("host:0", allow_port_zero=True) == ("host", 0)


def test_validate_queue_dir_accepts_existing_and_creatable(tmp_path):
    assert validate_queue_dir(tmp_path) == tmp_path
    assert validate_queue_dir(tmp_path / "new") == tmp_path / "new"


def test_validate_queue_dir_rejects_files_and_missing_parents(tmp_path):
    f = tmp_path / "a-file"
    f.write_text("x")
    with pytest.raises(ValueError, match="not a directory"):
        validate_queue_dir(f)
    with pytest.raises(ValueError, match="parent directory"):
        validate_queue_dir(tmp_path / "no" / "such" / "parent")
    with pytest.raises(ValueError, match="REPRO_QUEUE_DIR"):
        validate_queue_dir(f, what="REPRO_QUEUE_DIR")


@pytest.mark.skipif(os.geteuid() == 0, reason="root ignores permission bits")
def test_validate_queue_dir_rejects_unwritable(tmp_path):
    locked = tmp_path / "locked"
    locked.mkdir()
    locked.chmod(0o500)
    try:
        with pytest.raises(ValueError, match="not writable"):
            validate_queue_dir(locked)
    finally:
        locked.chmod(0o700)


# ----------------------------------------------------------------------
# Wire protocol adds nothing: queue semantics survive the hop
# ----------------------------------------------------------------------
def test_roundtrip_submit_claim_complete_collect(broker):
    nq = _client(broker)
    jobs = _jobs(4)
    assert nq.submit(jobs) == 4
    assert nq.submit(jobs) == 0  # content-keyed: resubmission is free
    claims = nq.claim("w0", 4)
    assert {c.key for c in claims} == {j.key() for j in jobs}
    for c in claims:
        nq.complete(c, {"ok": True, "result": {}, "attempts": []})
    assert nq.outstanding() == (0, 0)
    assert nq.counts()["done"] == 4
    assert all(nq.is_done(j.key()) for j in jobs)
    collected = dict(nq.collect_new(set()))
    assert set(collected) == {j.key() for j in jobs}
    # and the state is really on the broker's disk, not in the broker
    assert broker.queue.counts()["done"] == 4
    nq.close()


def test_claim_is_idempotent_by_redelivery(broker):
    """A lost claim *response* must not strand jobs: the broker answers
    a replayed claim with the caller's own live leases first."""
    nq = _client(broker)
    nq.submit(_jobs(3))
    first = nq.claim("w0", 3)
    replay = nq.claim("w0", 3)
    assert sorted(c.key for c in first) == sorted(c.key for c in replay)
    assert sorted(c.generation for c in replay) == [0, 0, 0]
    # another worker still sees nothing claimable — no double delivery
    assert nq.claim("w1", 3) == []
    nq.close()


def test_complete_is_idempotent_last_writer_wins(broker):
    nq = _client(broker)
    nq.submit(_jobs(1))
    (claim,) = nq.claim("w0", 1)
    nq.complete(claim, {"ok": True, "result": {"pass": 1}, "attempts": []})
    nq.complete(claim, {"ok": True, "result": {"pass": 2}, "attempts": []})
    records = dict(nq.collect_new(set()))
    assert len(records) == 1
    assert next(iter(records.values()))["result"] == {"pass": 2}
    nq.close()


def test_heartbeat_and_steal_over_the_wire(broker, tmp_path):
    nq = _client(broker)
    nq.submit(_jobs(2))
    victim = nq.claim("dead", 2)
    assert len(victim) == 2
    # the thief needs a full TTL of observed silence, same as shared-fs
    thief = _client(broker)
    assert thief.steal("thief", 2) == []
    time.sleep(0.7)
    stolen = thief.steal("thief", 2)
    assert len(stolen) == 2
    assert all(c.stolen and c.generation == 1 for c in stolen)
    nq.close()
    thief.close()


def test_worker_stats_roundtrip_over_the_wire(broker):
    nq = _client(broker)
    nq.write_stats("w0", {"worker": "w0", "executed": 7})
    stats = nq.read_stats()
    assert any(s.get("executed") == 7 for s in stats)
    nq.close()


def test_bad_op_is_an_error_not_a_retry(broker):
    nq = _client(broker)
    with pytest.raises(BrokerError, match="unknown op"):
        nq._call("no-such-op")
    assert nq.retried_calls == 0  # broker said no; retrying would spin
    nq.close()


def test_netqueue_sheds_socket_state_on_pickle(broker):
    nq = _client(broker)
    clone = pickle.loads(pickle.dumps(nq))
    clone.retry = FAST
    assert clone.counts()["done"] == 0  # reconnects lazily and works
    clone.close()
    nq.close()


def test_broker_refuses_to_pickle(broker):
    with pytest.raises(TypeError):
        pickle.dumps(broker)


def test_broker_restart_counter_persists(tmp_path):
    for expected in (0, 1, 2):
        b = Broker(FileQueue(tmp_path / "q", lease_ttl=0.5), port=0)
        assert b.restarts == expected
        b.start()
        b.serve_in_thread()
        nq = _client(b)
        assert nq.broker_restarts == expected
        nq.close()
        b.stop()


# ----------------------------------------------------------------------
# Drains: the tcp backend is bit-identical to serial
# ----------------------------------------------------------------------
def _fingerprints(results):
    return [(r.cycles, r.instructions, r.prefetch) for r in results]


def test_drain_over_tcp_matches_serial(broker):
    jobs = _jobs(6)
    serial = run_jobs(jobs, workers=1)
    backend = TCPBackend(broker=f"127.0.0.1:{broker.port}", spawn=0, batch=3, retry=FAST)
    report = execute_batch(jobs, backend=backend)
    assert _fingerprints(report.results) == _fingerprints(serial)
    assert report.degradations == []
    assert report.transport["broker_restarts"] == 0
    assert backend.last_transport == report.transport


def test_drain_queue_speaks_netqueue_directly(broker):
    nq = _client(broker)
    nq.submit(_jobs(4))
    stats = drain_queue(nq, worker="w0", batch=2, poll=0.05)
    assert stats.executed == 4 and stats.failed == 0
    assert stats.stopped is None
    assert nq.outstanding() == (0, 0)
    nq.close()


# ----------------------------------------------------------------------
# Chaos: the link is lossy, the protocol converges anyway
# ----------------------------------------------------------------------
def test_client_conn_reset_is_retried_to_convergence(broker):
    with inject_faults("conn-reset@network:match=client|,attempts=0", seed=3):
        nq = _client(broker)
        jobs = _jobs(4)
        assert nq.submit(jobs) == 4
        claims = nq.claim("w0", 4)
        assert len(claims) == 4
        for c in claims:
            nq.complete(c, {"ok": True, "result": {}, "attempts": []})
        assert nq.counts()["done"] == 4
        assert nq.retried_calls > 0 and nq.reconnects > 0
        assert nq.replayed_ops > 0  # submit/complete replays were counted
        nq.close()


def test_partial_write_is_replayed_without_duplicates(broker):
    with inject_faults("partial-write@network:match=client|submit,attempts=0", seed=5):
        nq = _client(broker)
        assert nq.submit(_jobs(3)) == 3
        assert nq.replayed_ops >= 1
        nq.close()
    # the truncated frame did not half-land: exactly 3 job files
    assert broker.queue.counts()["jobs"] == 3


def test_broker_stall_is_bounded_by_call_timeout(broker):
    # every counts request stalls longer than the call timeout: the
    # client must turn the stall into retries and give up in bounded
    # time instead of hanging for the stall duration
    policy = RetryPolicy(max_attempts=2, backoff_base=0.02, backoff_max=0.05, jitter=0.1)
    with inject_faults("stall@network:match=broker|counts,seconds=30", seed=1):
        nq = _client(broker, retry=policy, call_timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(BrokerUnreachable):
            nq.counts()
        assert time.monotonic() - t0 < 5.0
        nq.close()


def test_partition_heals_within_the_retry_budget(broker):
    # broker request numbering is global and starts at 1; request 2 is
    # the first post-hello call, which opens a 0.15s partition window
    with inject_faults("partition@network:match=broker|,attempts=2,seconds=0.15", seed=9):
        nq = _client(broker, retry=RetryPolicy(
            max_attempts=6, backoff_base=0.05, backoff_max=0.2, jitter=0.25))
        assert nq.counts()["done"] == 0
        assert nq.reconnects > 0
        nq.close()


def test_dead_broker_raises_unreachable(tmp_path):
    b = Broker(FileQueue(tmp_path / "q", lease_ttl=0.5), port=0)
    b.start()
    port = b.port
    b.serve_in_thread()
    b.stop()
    nq = NetQueue("127.0.0.1", port, retry=RetryPolicy(
        max_attempts=2, backoff_base=0.02, backoff_max=0.05, jitter=0.1))
    with pytest.raises(BrokerUnreachable, match="unreachable after 2 attempt"):
        nq.hello()


def test_drain_stops_as_disconnected_when_broker_dies(broker):
    nq = _client(broker)
    nq.submit(_jobs(2))
    broker.stop()
    nq.retry = RetryPolicy(max_attempts=2, backoff_base=0.02, backoff_max=0.05, jitter=0.1)
    stats = drain_queue(nq, worker="w0", batch=2, poll=0.05)
    assert stats.stopped == "disconnected"
    assert stats.executed == 0
    assert any("unreachable" in d for d in stats.degradations)
    nq.close()


# ----------------------------------------------------------------------
# CLI validation: wrong invocations die with one configuration error
# ----------------------------------------------------------------------
def test_worker_cli_requires_exactly_one_queue_source(tmp_path, capsys):
    assert main(["worker"]) == 2
    assert "exactly one queue" in capsys.readouterr().err
    assert main([
        "worker", "--queue-dir", str(tmp_path / "q"), "--broker", "127.0.0.1:1",
    ]) == 2


def test_worker_cli_rejects_bad_queue_dir(tmp_path, capsys):
    f = tmp_path / "a-file"
    f.write_text("x")
    assert main(["worker", "--queue-dir", str(f)]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_worker_cli_exits_75_when_broker_absent(capsys):
    # port 1 is privileged and unbound: connect fails fast, and the
    # worker must exit with the restartable code, not crash
    os.environ["REPRO_NET_RETRIES"] = "2"
    try:
        assert main(["worker", "--broker", "127.0.0.1:1"]) == 75
    finally:
        del os.environ["REPRO_NET_RETRIES"]
    assert "unreachable" in capsys.readouterr().err


def test_sweep_cli_rejects_broker_flag_misuse(capsys):
    base = ["sweep", "--workload", "fpppp", "--what", "history", "--insts", "2000"]
    assert main(base + ["--broker", "127.0.0.1:1"]) == 2
    assert main(base + ["--backend", "tcp"]) == 2  # no broker anywhere
    assert main(base + [
        "--backend", "tcp", "--broker", "127.0.0.1:1", "--queue-dir", "/tmp/q",
    ]) == 2
    err = capsys.readouterr().err
    assert "--backend tcp" in err


def test_broker_cli_rejects_bad_listen_spec(tmp_path, capsys):
    assert main([
        "broker", "--queue-dir", str(tmp_path / "q"), "--listen", "nope",
    ]) == 2
    assert "--listen" in capsys.readouterr().err
