"""Unit and behavioural tests for the OoO pipeline engine."""

import numpy as np
import pytest

from repro.common.config import FilterKind, SimulationConfig
from repro.core.simulator import Simulator
from repro.trace.stream import TraceBuilder
from repro.workloads import build_trace


def run_trace(trace, config=None, **kwargs):
    cfg = config if config is not None else SimulationConfig.paper_default()
    sim = Simulator(cfg, **kwargs)
    return sim, sim.run(trace)


def alu_trace(n=800):
    b = TraceBuilder("alu")
    b.ops("block", 16)
    t1 = b.build()
    reps = -(-n // len(t1))
    from repro.trace.stream import Trace

    return Trace.concat([t1] * reps, "alu")


class TestThroughputLimits:
    def test_alu_ipc_near_issue_width(self):
        _, r = run_trace(alu_trace(1600))
        assert r.ipc > 5.0  # 8-wide machine on pure ALU work

    def test_narrow_machine_is_slower(self):
        from dataclasses import replace

        cfg = SimulationConfig.paper_default()
        narrow = replace(
            cfg, processor=replace(cfg.processor, issue_width=2, retire_width=2)
        )
        _, wide = run_trace(alu_trace(1600), cfg)
        _, slim = run_trace(alu_trace(1600), narrow)
        assert slim.ipc < wide.ipc / 2.5

    def test_cycles_positive_even_for_tiny_trace(self):
        b = TraceBuilder("t")
        b.ops("x", 1)
        _, r = run_trace(b.build())
        assert r.cycles >= 1


class TestMemoryBehaviour:
    def test_repeated_line_hits_l1(self):
        b = TraceBuilder("t")
        for i in range(200):
            b.load("ld", 0x1000)  # same line forever
        _, r = run_trace(b.build())
        assert r.l1_miss_rate < 0.02

    def test_streaming_misses_once_per_line(self):
        b = TraceBuilder("t")
        for i in range(400):
            b.load("ld", 0x100000 + i * 8)
        cfg = SimulationConfig.paper_default().with_prefetch(
            nsp=False, sdp=False, software=False
        )
        _, r = run_trace(b.build(), cfg)
        assert r.l1_miss_rate == pytest.approx(0.25, abs=0.02)

    def test_misses_cost_cycles(self):
        hot = TraceBuilder("hot")
        cold = TraceBuilder("cold")
        for i in range(300):
            hot.load("ld", 0x1000)
            cold.load("ld", 0x100000 + i * 4096)  # every access a miss
        cfg = SimulationConfig.paper_default().with_prefetch(
            nsp=False, sdp=False, software=False
        )
        _, rh = run_trace(hot.build(), cfg)
        _, rc = run_trace(cold.build(), cfg)
        assert rc.ipc < rh.ipc / 3

    def test_branch_mispredicts_cost_cycles(self):
        rng = np.random.default_rng(0)
        good = TraceBuilder("good")
        evil = TraceBuilder("evil")
        outcomes = rng.random(500) < 0.5
        for i in range(500):
            good.branch("br", True)
            evil.branch("br", bool(outcomes[i]))
            good.ops("op", 3)
            evil.ops("op", 3)
        _, rg = run_trace(good.build())
        _, re_ = run_trace(evil.build())
        assert re_.ipc < rg.ipc


class TestPrefetchControlPath:
    def test_nsp_prefetches_issue_on_stream(self, ijpeg_trace):
        sim, r = run_trace(ijpeg_trace)
        assert r.prefetch.issued > 0
        assert r.l1_prefetch_fills == r.prefetch.issued

    def test_filter_reduces_issue_count(self, em3d_trace):
        _, r_none = run_trace(em3d_trace)
        cfg = SimulationConfig.paper_default().with_filter(kind=FilterKind.PC)
        _, r_pc = run_trace(em3d_trace, cfg)
        assert r_pc.prefetch.filtered > 0
        assert r_pc.prefetch.issued < r_none.prefetch.issued

    def test_duplicate_squashing_happens(self, ijpeg_trace):
        _, r = run_trace(ijpeg_trace)
        assert r.prefetch.squashed > 0

    def test_disabled_prefetchers_generate_nothing(self, em3d_trace):
        cfg = SimulationConfig.paper_default().with_prefetch(
            nsp=False, sdp=False, software=False
        )
        _, r = run_trace(em3d_trace, cfg)
        assert r.prefetch.generated == 0
        assert r.l1_prefetch_fills == 0

    def test_conservation_after_run(self, em3d_trace):
        sim, r = run_trace(em3d_trace)
        # check_conservation already ran inside run(); re-check explicitly
        sim.classifier.check_conservation()
        assert r.prefetch.issued == r.prefetch.good + r.prefetch.bad


class TestDeterminism:
    def test_same_trace_same_result(self, em3d_trace):
        _, a = run_trace(em3d_trace)
        _, b = run_trace(em3d_trace)
        assert a.cycles == b.cycles
        assert a.prefetch.good == b.prefetch.good
        assert a.stats.snapshot() == b.stats.snapshot()


class TestWarmup:
    def test_warmup_excludes_cold_start(self):
        trace = build_trace("fpppp", 30000, seed=3)
        cold = SimulationConfig.paper_default().with_prefetch(
            nsp=False, sdp=False, software=False
        )
        warm = cold.with_warmup(15000)
        _, rc = run_trace(trace, cold)
        _, rw = run_trace(trace, warm)
        assert rw.instructions < rc.instructions
        assert rw.l2_miss_rate < rc.l2_miss_rate  # compulsory misses excluded

    def test_warmup_zero_is_identity(self, em3d_trace):
        base = SimulationConfig.paper_default()
        _, a = run_trace(em3d_trace, base)
        _, b = run_trace(em3d_trace, base.with_warmup(0))
        assert a.cycles == b.cycles and a.instructions == b.instructions

    def test_max_instructions_truncates(self, em3d_trace):
        cfg = SimulationConfig.paper_default()
        from dataclasses import replace

        _, r = run_trace(em3d_trace, replace(cfg, max_instructions=2000))
        assert r.instructions == 2000
