"""Parallel run engine: determinism, equivalence with serial, fallback."""

import os

import pytest

import repro.analysis.parallel as parallel_mod
from repro.analysis.experiments import ExperimentSuite
from repro.analysis.parallel import SimulationJob, default_workers, run_jobs
from repro.analysis.result_cache import ResultCache
from repro.common.config import FilterKind, SimulationConfig

N = 8_000
WARM = 2_000


def _cfg(kind=FilterKind.NONE):
    return SimulationConfig.paper_default(kind).with_warmup(WARM)


def _fingerprint(result):
    return (
        result.trace_name,
        result.filter_name,
        result.instructions,
        result.cycles,
        result.prefetch,
        result.per_source,
        result.l1_demand_accesses,
        result.l1_demand_misses,
        result.l2_demand_accesses,
        result.l2_demand_misses,
        result.l1_prefetch_fills,
        result.prefetch_line_traffic,
        result.demand_line_traffic,
        tuple(sorted(result.stats.flat().items())),
    )


class TestSimulationJob:
    def test_key_is_stable(self):
        a = SimulationJob("em3d", _cfg(), N, 0)
        b = SimulationJob("em3d", _cfg(), N, 0)
        assert a.key() == b.key()

    def test_key_differentiates_every_field(self):
        base = SimulationJob("em3d", _cfg(), N, 0)
        variants = [
            SimulationJob("mcf", _cfg(), N, 0),
            SimulationJob("em3d", _cfg(FilterKind.PA), N, 0),
            SimulationJob("em3d", _cfg(), N + 1, 0),
            SimulationJob("em3d", _cfg(), N, 1),
            SimulationJob("em3d", _cfg(), N, 0, software_prefetch=False),
            SimulationJob("em3d", _cfg(), N, 0, engine="interval"),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1


class TestRunJobs:
    def test_parallel_identical_to_serial(self):
        """Two workloads x three filter kinds: same results either way."""
        jobs = [
            SimulationJob(workload, _cfg(kind), N, 0)
            for workload in ("em3d", "mcf")
            for kind in (FilterKind.NONE, FilterKind.PA, FilterKind.PC)
        ]
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=3)
        assert len(serial) == len(parallel) == len(jobs)
        for job, a, b in zip(jobs, serial, parallel):
            assert a.trace_name == job.workload
            assert _fingerprint(a) == _fingerprint(b)

    def test_empty_batch(self):
        assert run_jobs([], workers=4) == []

    def test_single_job_stays_serial(self, monkeypatch):
        def boom(*a, **k):  # the pool must never be constructed
            raise AssertionError("pool constructed for a single job")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        [r] = run_jobs([SimulationJob("gzip", _cfg(), N, 0)], workers=8)
        assert r.cycles > 0

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("no fork for you")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", BrokenPool)
        jobs = [SimulationJob("gzip", _cfg(k), N, 0) for k in (FilterKind.NONE, FilterKind.PA)]
        results = run_jobs(jobs, workers=4)
        reference = run_jobs(jobs, workers=1)
        for a, b in zip(results, reference):
            assert _fingerprint(a) == _fingerprint(b)

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == min(3, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert default_workers() == (os.cpu_count() or 1)

    def test_default_workers_rejects_nonpositive(self, monkeypatch):
        for bad in ("0", "-2"):
            monkeypatch.setenv("REPRO_WORKERS", bad)
            with pytest.raises(ValueError, match="positive"):
                default_workers()

    def test_run_jobs_rejects_nonpositive_workers(self):
        job = SimulationJob("gzip", _cfg(), n_insts=N, seed=0)
        with pytest.raises(ValueError, match="positive"):
            run_jobs([job], workers=0)
        with pytest.raises(ValueError, match="positive"):
            run_jobs([job], workers=-1)

    def test_run_jobs_clamps_workers_to_cpu_count(self, monkeypatch):
        """An oversized explicit count must not spawn beyond the CPUs."""
        seen = {}
        real_pool = parallel_mod.ProcessPoolExecutor

        class SpyPool(real_pool):
            def __init__(self, max_workers=None, **kwargs):
                seen["max_workers"] = max_workers
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", SpyPool)
        jobs = [SimulationJob("gzip", _cfg(), n_insts=N, seed=s) for s in range(3)]
        run_jobs(jobs, workers=512)
        if "max_workers" in seen:  # pool path reached (more than one CPU)
            assert seen["max_workers"] <= (os.cpu_count() or 1)

    def test_nested_run_jobs_stays_serial(self, monkeypatch):
        """Inside a pool worker, run_jobs must not fork another pool."""
        monkeypatch.setenv("REPRO_POOL_WORKER", "1")

        def boom(*a, **k):  # pragma: no cover - must never run
            raise AssertionError("nested run_jobs created a process pool")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", boom)
        jobs = [SimulationJob("gzip", _cfg(), n_insts=N, seed=s) for s in range(3)]
        results = run_jobs(jobs, workers=4)
        assert all(r is not None for r in results)


class TestSuiteCaching:
    def test_warm_cache_runs_zero_simulations(self, tmp_path, monkeypatch):
        """A second suite over a warm disk cache must produce identical
        tables without invoking the simulator at all."""
        first = ExperimentSuite(N, WARM, seed=0, workers=1, cache=ResultCache(tmp_path))
        table_cold = first.run_experiment("f1").table.render()

        calls = []
        real = parallel_mod.execute_job

        def spy(job):
            calls.append(job)
            return real(job)

        monkeypatch.setattr(parallel_mod, "execute_job", spy)
        second = ExperimentSuite(N, WARM, seed=0, workers=1, cache=ResultCache(tmp_path))
        table_warm = second.run_experiment("f1").table.render()

        assert table_warm == table_cold
        assert calls == []  # every run came from disk

    def test_memo_key_shares_runs_across_equal_configs(self):
        suite = ExperimentSuite(N, WARM, seed=0)
        cfg_a = SimulationConfig.paper_default(FilterKind.PA).with_warmup(WARM)
        cfg_b = SimulationConfig.paper_default(FilterKind.PA).with_warmup(WARM)
        suite.run("em3d", cfg_a)
        before = len(suite._runs)
        suite.run("em3d", cfg_b)  # distinct object, same content hash
        assert len(suite._runs) == before

    def test_suite_results_identical_with_and_without_workers(self):
        serial = ExperimentSuite(N, WARM, seed=0, workers=1)
        threaded = ExperimentSuite(N, WARM, seed=0, workers=2)
        assert (
            serial.run_experiment("f2").table.render()
            == threaded.run_experiment("f2").table.render()
        )


class TestSweepWiring:
    def test_compare_filters_parallel_matches_serial(self):
        from repro.analysis.sweep import compare_filters

        cfg = _cfg()
        serial = compare_filters("gcc", cfg, n_insts=N, workers=1)
        parallel = compare_filters("gcc", cfg, n_insts=N, workers=2)
        assert serial.keys() == parallel.keys()
        for kind in serial:
            assert _fingerprint(serial[kind]) == _fingerprint(parallel[kind])

    def test_sweep_results_keyed_in_submission_order(self):
        from repro.analysis.sweep import sweep_history_sizes

        cfg = _cfg(FilterKind.PA)
        out = sweep_history_sizes("em3d", cfg, entries=(1024, 4096), n_insts=N, workers=2)
        assert list(out) == [1024, 4096]
        for size, result in out.items():
            assert result.cycles > 0


@pytest.mark.parametrize("engine", ["pipeline", "interval"])
def test_engines_run_through_jobs(engine):
    [r] = run_jobs([SimulationJob("wave5", _cfg(), N, 0, engine=engine)], workers=1)
    assert r.cycles > 0 and r.instructions > 0
