"""Distributed smoke: two real worker processes drain a 200+ job sweep.

This is the end-to-end distributed story in one test module: a parent
submits a large sweep to a shared-filesystem queue, two independent
``repro-sim worker`` processes (separate interpreters, no shared state
beyond the queue directory) drain it cooperatively, and the merged
done-records feed a :class:`RunJournal` that a subsequent in-process
``run_jobs`` accepts wholesale — with spot-checked jobs bit-identical
to direct serial execution.

CI runs this module as its own "distributed" job; it also rides along
in the tier-1 suite because it only needs ``python`` and a tmpdir.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.checkpoint import RunJournal
from repro.analysis.parallel import SimulationJob, run_jobs
from repro.analysis.result_cache import result_from_dict
from repro.analysis.workqueue import FileQueue
from repro.common.config import FilterKind, SimulationConfig

N = 600  # tiny per-job workloads: the point is job *count*, not length

SIZES = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)
BITS = (2, 3, 4, 5, 6)
KINDS = (FilterKind.PA, FilterKind.PC)
WORKLOADS = ("em3d", "mcf")


def _sweep_jobs(n):
    """``n`` distinct-key jobs over only TWO traces (one per workload).

    All the variation lives in filter geometry, so workers can amortize
    trace acquisition across nearly every job in a claimed batch.
    """
    jobs = []
    for i in range(n):
        workload = WORKLOADS[i % len(WORKLOADS)]
        kind = KINDS[(i // len(WORKLOADS)) % len(KINDS)]
        cfg = SimulationConfig.paper_default(kind).with_warmup(N // 4)
        cfg = cfg.with_filter(
            table_entries=SIZES[(i // (len(WORKLOADS) * len(KINDS))) % len(SIZES)],
            counter_bits=BITS[(i // (len(WORKLOADS) * len(KINDS) * len(SIZES))) % len(BITS)],
        )
        jobs.append(SimulationJob(workload, cfg, N, seed=0))
    assert len({j.key() for j in jobs}) == n
    return jobs


def _fingerprint(result):
    return (
        result.trace_name,
        result.filter_name,
        result.instructions,
        result.cycles,
        result.prefetch,
        result.per_source,
        tuple(sorted(result.stats.flat().items())),
    )


def _spawn_worker(queue_dir, name):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_BACKEND", None)
    cmd = [
        sys.executable, "-m", "repro.cli", "worker",
        "--queue-dir", str(queue_dir),
        "--name", name,
        "--batch", "16",
        "--lease-ttl", "10.0",
        "--poll", "0.1",
    ]
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )


def test_two_workers_drain_a_200_job_sweep_and_the_journal_verifies(tmp_path):
    jobs = _sweep_jobs(200)
    queue = FileQueue(tmp_path / "queue", lease_ttl=10.0)
    assert queue.submit(jobs) == 200

    procs = [_spawn_worker(queue.root, f"smoke{i}") for i in range(2)]
    outputs = []
    try:
        for proc in procs:
            out, _ = proc.communicate(timeout=600)
            outputs.append(out)
            assert proc.returncode == 0, out
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    # the queue is fully drained, nothing quarantined, nothing leaked
    assert queue.outstanding() == (0, 0)
    counts = queue.counts()
    assert counts["done"] == 200 and counts["quarantined"] == 0

    # both processes did real work and each trace was acquired frugally
    stats = {s["worker"]: s for s in queue.read_stats()}
    assert set(stats) == {"smoke0", "smoke1"}
    executed = {w: s["executed"] for w, s in stats.items()}
    assert sum(executed.values()) == 200
    assert all(s["failed"] == 0 for s in stats.values())
    total_reuses = sum(s["trace_reuses"] for s in stats.values())
    total_groups = sum(s["groups"] for s in stats.values())
    assert total_reuses == 200 - total_groups
    assert total_reuses > 100  # amortization actually happened

    # merge the done-records into a journal, as a coordinating parent would
    journal = RunJournal(tmp_path / "merged.jsonl")
    merged = 0
    for key, record in queue.collect_new(set()):
        assert record["ok"], record
        journal.record_success(key, result_from_dict(record["result"]))
        merged += 1
    assert merged == 200

    # the merged journal satisfies the whole sweep without re-running
    report = run_jobs(jobs, workers=1, journal=journal, return_report=True)
    assert len(report.outcomes) == 200
    assert all(o.ok and o.from_journal for o in report.outcomes)

    # spot-check: queue-computed results are bit-identical to direct runs
    sample = jobs[::23]
    direct = run_jobs(sample, workers=1)
    by_key = {o.key: o.result for o in report.outcomes}
    for job, expected in zip(sample, direct):
        assert _fingerprint(by_key[job.key()]) == _fingerprint(expected)
