"""Unit tests for the workload generators and the software-prefetch pass."""

import numpy as np
import pytest

from repro.trace.record import LOAD, SW_PREFETCH, InstrClass
from repro.workloads import (
    build_trace,
    count_inserted,
    get_workload,
    insert_software_prefetches,
    workload_names,
)
from repro.workloads.base import mix_local_accesses
from repro.trace.stream import TraceBuilder


TABLE2_ORDER = ["bh", "em3d", "perimeter", "ijpeg", "fpppp", "gcc", "wave5", "gap", "gzip", "mcf"]


class TestRegistry:
    def test_table2_order(self):
        assert workload_names() == TABLE2_ORDER

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("linpack")

    def test_infos_carry_paper_rates(self):
        for name in workload_names():
            info = get_workload(name).info
            assert 0 < info.paper_l1_miss < 1
            assert 0 <= info.paper_l2_miss < 1
            assert info.suite in ("olden", "spec95", "spec2000")


@pytest.mark.parametrize("name", TABLE2_ORDER)
class TestEveryWorkload:
    def test_meets_budget(self, name):
        t = get_workload(name).generate(5000, seed=1)
        assert 5000 <= len(t) <= 5000 * 1.5

    def test_deterministic(self, name):
        a = get_workload(name).generate(4000, seed=5)
        b = get_workload(name).generate(4000, seed=5)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.pc, b.pc)

    def test_seed_changes_trace(self, name):
        a = get_workload(name).generate(4000, seed=1)
        b = get_workload(name).generate(4000, seed=2)
        n = min(len(a), len(b))
        assert not np.array_equal(a.addr[:n], b.addr[:n])

    def test_realistic_mix(self, name):
        s = get_workload(name).generate(8000, seed=0).summary()
        mem_frac = s.memory_references / s.instructions
        assert 0.1 < mem_frac < 0.7, f"{name}: memory fraction {mem_frac}"
        assert s.branches > 0
        assert s.unique_pcs >= 10


class TestLocalMixer:
    def test_fraction_approximate(self):
        rng = np.random.default_rng(0)
        cold = np.arange(100, dtype=np.uint64) * 4096 + (1 << 30)
        mixed = mix_local_accesses(rng, cold, 0.8)
        hot = (mixed >= 0x7F80_0000).sum()
        assert abs(hot / len(mixed) - 0.8) < 0.05

    def test_preserves_cold_order(self):
        rng = np.random.default_rng(0)
        cold = np.array([10**6, 2 * 10**6, 3 * 10**6], dtype=np.uint64)
        mixed = mix_local_accesses(rng, cold, 0.5)
        kept = [a for a in mixed if a < 0x7F80_0000]
        assert kept == list(cold)

    def test_zero_fraction_identity(self):
        rng = np.random.default_rng(0)
        cold = np.array([8, 16], dtype=np.uint64)
        assert np.array_equal(mix_local_accesses(rng, cold, 0.0), cold)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mix_local_accesses(rng, np.array([8], dtype=np.uint64), 1.0)


class TestSoftwarePrefetchPass:
    def _strided_trace(self, n=40, stride=64):
        b = TraceBuilder("t")
        for i in range(n):
            b.load("loop.ld", 0x10000 + i * stride)
            b.ops("loop.op", 1)
        return b.build()

    def test_inserts_on_stable_stride(self):
        t = insert_software_prefetches(self._strided_trace(), lookahead_lines=4)
        assert count_inserted(t) > 0

    def test_prefetch_targets_ahead_of_stream(self):
        t = insert_software_prefetches(self._strided_trace(stride=64), lookahead_lines=4)
        sw = t.addr[t.iclass == int(SW_PREFETCH)]
        loads = t.addr[t.iclass == int(LOAD)]
        assert sw.min() > loads.min()  # always forward for a positive stride

    def test_one_prefetch_per_line_per_pc(self):
        # stride 8: four loads share a 32B line -> at most one prefetch each 4.
        t = insert_software_prefetches(self._strided_trace(n=64, stride=8))
        assert count_inserted(t) <= 64 // 4 + 1

    def test_pointer_chase_gets_none(self):
        rng = np.random.default_rng(0)
        b = TraceBuilder("p")
        for a in rng.integers(1, 1 << 20, 100):
            b.load("chase.ld", int(a) * 8)
        t = insert_software_prefetches(b.build())
        assert count_inserted(t) == 0

    def test_original_records_preserved_in_order(self):
        base = self._strided_trace()
        t = insert_software_prefetches(base)
        kept = t.addr[t.iclass != int(SW_PREFETCH)]
        assert np.array_equal(kept, base.addr)

    def test_sw_pcs_distinct_from_load_pcs(self):
        t = insert_software_prefetches(self._strided_trace())
        sw_pcs = set(t.pc[t.iclass == int(SW_PREFETCH)].tolist())
        other_pcs = set(t.pc[t.iclass != int(SW_PREFETCH)].tolist())
        assert sw_pcs and not (sw_pcs & other_pcs)

    def test_negative_stride_supported(self):
        b = TraceBuilder("r")
        for i in range(40):
            b.load("rev.ld", 0x100000 - i * 64)
        t = insert_software_prefetches(b.build())
        assert count_inserted(t) > 0
        sw = t.addr[t.iclass == int(SW_PREFETCH)].astype(np.int64)
        assert sw.max() < 0x100000

    def test_validation(self):
        with pytest.raises(ValueError):
            insert_software_prefetches(self._strided_trace(), lookahead_lines=0)
        with pytest.raises(ValueError):
            insert_software_prefetches(self._strided_trace(), confidence=0)


class TestBuildTrace:
    def test_includes_sw_prefetches_by_default(self):
        t = build_trace("ijpeg", 8000, seed=0)
        assert count_inserted(t) > 0

    def test_can_disable(self):
        t = build_trace("ijpeg", 8000, seed=0, software_prefetch=False)
        assert count_inserted(t) == 0

    def test_pointer_benchmarks_get_few(self):
        mcf = build_trace("mcf", 10000, seed=0)
        ijpeg = build_trace("ijpeg", 10000, seed=0)
        assert count_inserted(mcf) < count_inserted(ijpeg)
