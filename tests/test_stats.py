"""Unit tests for the hierarchical statistics registry."""

from repro.common.stats import StatGroup, Stats


class TestStatGroup:
    def test_bump_creates_and_accumulates(self):
        g = StatGroup("g")
        g.bump("x")
        g.bump("x", 2.5)
        assert g.get("x") == 3.5

    def test_get_default(self):
        assert StatGroup("g").get("missing") == 0
        assert StatGroup("g").get("missing", 7) == 7

    def test_children_created_on_demand(self):
        g = StatGroup("root")
        g["l1"].bump("miss")
        g["l1"].bump("miss")
        g["l2"].bump("miss", 5)
        assert g["l1"].get("miss") == 2
        assert g["l2"].get("miss") == 5
        assert g["l1"] is g["l1"]  # stable identity

    def test_flat_namespacing(self):
        g = StatGroup("mem")
        g.bump("total")
        g["l1"]["ports"].bump("wait", 3)
        flat = g.flat()
        assert flat["mem.total"] == 1
        assert flat["mem.l1.ports.wait"] == 3

    def test_total_sums_descendants(self):
        g = StatGroup("root")
        g.bump("miss", 1)
        g["a"].bump("miss", 2)
        g["a"]["b"].bump("miss", 4)
        assert g.total("miss") == 7

    def test_reset_recursive(self):
        g = StatGroup("root")
        g.bump("x")
        g["c"].bump("y")
        g.reset()
        assert g.get("x") == 0
        assert g["c"].get("y") == 0

    def test_set_overwrites(self):
        g = StatGroup("g")
        g.bump("x", 10)
        g.set("x", 3)
        assert g.get("x") == 3


class TestStats:
    def test_snapshot_delta(self):
        s = Stats()
        s["l1"].bump("miss", 5)
        before = s.snapshot()
        s["l1"].bump("miss", 2)
        s["l2"].bump("hit", 1)
        delta = Stats.delta(before, s.snapshot())
        assert delta["l1.miss"] == 2
        assert delta["l2.hit"] == 1

    def test_delta_handles_missing_keys(self):
        assert Stats.delta({"a": 1}, {"b": 2}) == {"a": -1, "b": 2}

    def test_csv_export_sorted(self):
        s = Stats()
        s["b"].bump("x", 1)
        s["a"].bump("y", 2)
        lines = s.to_csv().splitlines()
        assert lines[0] == "counter,value"
        assert lines[1].startswith("a.y")
